"""Setup shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in offline
environments whose setuptools predates PEP 660 editable-wheel support.
"""
from setuptools import setup

setup()

#!/usr/bin/env python
"""Fail on broken relative links in markdown files.

Usage:  python scripts/check_links.py README.md docs/*.md

Checks every inline markdown link ``[text](target)``:

* ``http(s)://`` / ``mailto:`` targets are skipped (no network in CI);
* pure-anchor targets (``#section``) are checked against the same
  file's headings;
* relative paths must exist on disk (resolved against the file's
  directory); a ``path#anchor`` target additionally checks the anchor
  against the target markdown file's headings.

Exit status is the number of broken links (0 = all good).
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import List, Set

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug (lowercase, spaces to dashes,
    punctuation dropped)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\s-]", "", slug, flags=re.UNICODE)
    return re.sub(r"\s+", "-", slug)


def anchors_of(path: pathlib.Path) -> Set[str]:
    text = path.read_text(encoding="utf-8")
    return {github_anchor(h) for h in HEADING_RE.findall(CODE_FENCE_RE.sub("", text))}


def check_file(path: pathlib.Path) -> List[str]:
    errors: List[str] = []
    text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if target[1:] not in anchors_of(path):
                errors.append(f"{path}: broken anchor {target!r}")
            continue
        rel, _, anchor = target.partition("#")
        dest = (path.parent / rel).resolve()
        if not dest.exists():
            errors.append(f"{path}: broken link {target!r} (no {dest})")
            continue
        if anchor and dest.suffix == ".md" and github_anchor(anchor) not in anchors_of(dest):
            errors.append(f"{path}: broken anchor {target!r} (not a heading in {rel})")
    return errors


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    errors: List[str] = []
    for name in argv:
        path = pathlib.Path(name)
        if not path.exists():
            errors.append(f"{name}: file not found")
            continue
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print(f"link check ok: {len(argv)} file(s)")
    return min(len(errors), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python
"""CDN update push with FUSE fate-sharing (§4.1's suggested application).

An origin replicates documents onto replica sets; each document's
replicas and origin share fate through one FUSE group.  A replica that
becomes unreachable fails the group: every other replica instantly stops
serving the (possibly stale) document, and the origin re-replicates onto
a fresh replica set — no per-document heartbeats required.

Run:  python examples/cdn_replication.py
"""

from repro import FuseWorld
from repro.apps.cdn import CdnOrigin, CdnReplica


def main() -> None:
    print("Building a 40-node deployment...")
    world = FuseWorld(n_nodes=40, seed=11)
    world.bootstrap()

    origin_node = 0
    replica_nodes = [5, 12, 19, 26, 33]
    replicas = {nid: CdnReplica(world.fuse(nid)) for nid in replica_nodes}

    lost_docs = []
    origin = CdnOrigin(world.fuse(origin_node), on_replicas_lost=lost_docs.append)

    print(f"placing 'index.html' on replicas {replica_nodes[:3]}...")
    origin.place("index.html", "v1: hello", replica_nodes[:3])
    world.run_for_minutes(1)
    for nid in replica_nodes[:3]:
        print(f"  replica {nid} serves: {replicas[nid].get('index.html')!r}")

    print("\npushing update v2...")
    origin.push_update("index.html", "v2: hello, world")
    world.run_for_minutes(1)
    print(f"  replica {replica_nodes[0]} serves: {replicas[replica_nodes[0]].get('index.html')!r}")

    victim = replica_nodes[1]
    print(f"\ndisconnecting replica {victim} (it would silently serve stale content)...")
    world.disconnect(victim)
    world.run_for_minutes(10)
    print(f"  origin notified of replica-set loss: {lost_docs}")
    for nid in replica_nodes[:3]:
        if nid == victim:
            continue
        print(f"  replica {nid} now serves: {replicas[nid].get('index.html')!r} "
              "(fate-shared invalidation)")

    fresh = [replica_nodes[0], replica_nodes[3], replica_nodes[4]]
    print(f"\nre-replicating onto {fresh}...")
    origin.place("index.html", "v2: hello, world", fresh)
    world.run_for_minutes(1)
    for nid in fresh:
        print(f"  replica {nid} serves: {replicas[nid].get('index.html')!r}")
    print(f"\nlive documents at origin: {origin.live_documents()}")


if __name__ == "__main__":
    main()

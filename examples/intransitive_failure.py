#!/usr/bin/env python
"""Intransitive connectivity failures: where FUSE beats membership lists.

The paper's §2 argument, demonstrated end to end.  A can reach B, B can
reach C, but A cannot reach C (a router/firewall misconfiguration).  A
SWIM-style membership service sees both A and C as alive — indirect
probes through B succeed — so an application waiting on the A<->C path
just blocks.  FUSE lets the application declare *that operation* failed:
A signals its group with C, every member is notified, and A's other
groups (via healthy paths) keep working.

Run:  python examples/intransitive_failure.py
"""

from repro import FuseWorld
from repro.apps.membership import SwimConfig, SwimMember


def main() -> None:
    print("Building a 30-node deployment...")
    world = FuseWorld(n_nodes=30, seed=5)
    world.bootstrap()

    a, b, c = 2, 9, 17

    # A SWIM membership service runs alongside FUSE on the same nodes.
    swim_cfg = SwimConfig(protocol_period_ms=5_000.0, probe_timeout_ms=2_000.0)
    swim = {nid: SwimMember(world.host(nid), world.node_ids, swim_cfg) for nid in world.node_ids}
    for member in swim.values():
        member.start()

    # Two FUSE groups at A: one spanning the doomed A-C path, one healthy.
    fid_ac, _, _ = world.create_group_sync(a, [c])
    fid_ab, _, _ = world.create_group_sync(a, [b])
    print(f"group A-C: {fid_ac}")
    print(f"group A-B: {fid_ab}")

    print(f"\ninjecting intransitive failure: {a} <-/-> {c} (both still reach {b})...")
    world.net.faults.block_pair(a, c)
    world.run_for_minutes(10)

    print("\nSWIM's verdict after 10 minutes:")
    print(f"  node {a} thinks {c} is alive: {swim[a].is_alive(c)}  (indirect probes mask the break)")
    print(f"  node {c} thinks {a} is alive: {swim[c].is_alive(a)}")
    print("  -> a membership list cannot express 'this pair is broken'.")

    print(f"\nFUSE's verdict so far: group A-C still live at A: {fid_ac in world.fuse(a).groups}")
    print("  (FUSE monitors overlay links, not every application path — §3.4)")

    print(f"\nnode {a} tries to send to {c}, times out, and calls SignalFailure (fail-on-send):")
    world.fuse(a).signal_failure(fid_ac)
    world.run_for_minutes(2)
    print(f"  node {c} notified of A-C failure: {fid_ac in world.fuse(c).notifications}")
    print(f"  node {a} notified of A-C failure: {fid_ac in world.fuse(a).notifications}")
    print(f"  healthy group A-B unaffected:     {fid_ab in world.fuse(a).groups}")
    print("\nThe failure was scoped to the broken operation — no node was "
          "declared dead, and no healthy state was torn down.")


if __name__ == "__main__":
    main()

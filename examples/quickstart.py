#!/usr/bin/env python
"""Quickstart: create a FUSE group, watch it fail, exactly once, everywhere.

Builds a 50-node simulated wide-area deployment (SkipNet overlay over a
Mercator-like topology), creates a FUSE group, and demonstrates the three
API calls from the paper's Fig 1:

* CreateGroup            -> FuseService.create_group
* RegisterFailureHandler -> FuseService.register_failure_handler
* SignalFailure          -> FuseService.signal_failure

Run:  python examples/quickstart.py
"""

from repro import FuseWorld


def main() -> None:
    print("Building a 50-node deployment (overlay join takes simulated seconds)...")
    world = FuseWorld(n_nodes=50, seed=42)
    world.bootstrap()
    print(f"  overlay members: {world.overlay.member_count}")
    print(f"  avg overlay neighbors per node: {world.overlay.average_neighbor_count():.1f}")

    # --- CreateGroup: node 0 is the root; 3 other members ---------------
    members = [7, 21, 33]
    fid, status, latency = world.create_group_sync(root=0, members=members)
    print(f"\nCreateGroup(root=0, members={members})")
    print(f"  -> {status} in {latency:.0f} ms (an RPC to the furthest member)")
    print(f"  -> FUSE ID: {fid}")

    # --- RegisterFailureHandler on every member -------------------------
    def make_handler(node: int):
        def handler(fuse_id: str) -> None:
            print(f"  [t={world.now / 1000.0:7.2f}s] node {node}: failure handler fired for {fuse_id}")

        return handler

    for node in [0] + members:
        world.fuse(node).register_failure_handler(fid, make_handler(node))

    # --- SignalFailure: the application declares the group failed -------
    print("\nnode 21 calls SignalFailure (e.g. it noticed a misconfigured peer):")
    world.fuse(21).signal_failure(fid)
    world.run_for_minutes(1)

    # --- Exactly-once, no orphans ----------------------------------------
    leftover = sum(1 for n in world.node_ids if fid in world.fuse(n).groups)
    print(f"\nremaining state for {fid} anywhere: {leftover} nodes (orphan-free teardown)")

    # --- Registering against a failed group fires immediately ------------
    print("registering a handler for the already-failed group:")
    world.fuse(7).register_failure_handler(fid, lambda f: print(f"  immediate callback for {f}"))
    world.run_for(100)

    # --- A second group survives unrelated failures ----------------------
    fid2, status, _ = world.create_group_sync(root=0, members=[7, 21])
    world.net.disconnect_host(45)  # unrelated node
    world.run_for_minutes(5)
    alive = fid2 in world.fuse(0).groups
    print(f"\nunrelated node 45 disconnected; group {fid2[:24]}... still live: {alive}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Partition-and-heal, built with the declarative scenario engine.

The paper's §3.5 failure model includes network partitions: FUSE must
notify every live member of every group the cut passes through, while
groups wholly inside one side keep running.  This example composes that
timeline from scenario primitives instead of writing a bespoke driver:

* a ``GroupWorkload`` track creates 10 groups up front;
* a ``Partition`` track splits the hosts 60/40 four minutes in and
  heals the cut three minutes later;
* phases give the timeline its shape (warmup -> partition -> healed).

The same scenario expressed as TOML lives next to this file as
``scenario_creeping_loss.toml`` shows for the link-loss track; see
docs/SCENARIOS.md for the full DSL.

Run:  python examples/scenario_partition_heal.py
"""

from repro.scenarios import Phase, Scenario, execute, run_scenario
from repro.scenarios.tracks import GroupWorkload, Partition


def main() -> None:
    scenario = Scenario(
        name="example-partition-heal",
        description="60/40 partition through live FUSE groups, then heal.",
        n_nodes=40,
        seed=13,
        phases=(
            Phase("warmup", 2.0),
            Phase("partition", 6.0, measure=True),
            Phase("healed", 3.0),
        ),
        tracks=(
            GroupWorkload(n_groups=10, group_size=4),
            Partition(phase="partition", fractions=(0.6, 0.4), heal_after_minutes=3.0),
        ),
    )

    print(f"running scenario {scenario.name!r} "
          f"({scenario.n_nodes} nodes, {scenario.total_minutes:g} simulated minutes)...")
    m = execute(scenario)

    print(f"\n  groups created:            {m['groups_created']}")
    print(f"  groups spanning the cut:   {m['partition_spanning_groups']}")
    print(f"  notifications delivered:   {m['notifications_delivered']}"
          f" / {m['notifications_expected']} expected")
    print(f"  spurious notifications:    {m['spurious_groups']}"
          "  (groups inside one side must survive)")
    if m["latency_min"]:
        worst = max(m["latency_min"])
        print(f"  worst notification delay:  {worst:.1f} simulated minutes after the cut")

    print("\nThe same scenario through the trial engine, two seeds in parallel:")
    result = run_scenario(scenario, jobs=2, seeds=[13, 14])
    print(result.format_table())


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""SV-tree event delivery (the paper's §4 motivating application).

Subscribers join per-topic multicast trees built over the overlay; each
content-forwarding link is fate-shared with the overlay route it bypasses
via one FUSE group.  When a node crashes, FUSE notifications garbage
collect every piece of distributed tree state that depended on it, and
subscribers transparently re-attach — the paper's "garbage collect with
FUSE, then retry" design pattern.

Run:  python examples/event_delivery.py
"""

from repro import FuseWorld
from repro.apps.svtree import SVTreeService
from repro.apps.svtree.service import topic_root_name


def main() -> None:
    print("Building a 60-node deployment...")
    world = FuseWorld(n_nodes=60, seed=7)
    world.bootstrap()
    services = {nid: SVTreeService(world.fuse(nid)) for nid in world.node_ids}

    topic = "stock-ticker"
    subscribers = [3, 11, 24, 37, 45, 52]
    received = []

    print(f"subscribing nodes {subscribers} to '{topic}'...")
    for nid in subscribers:
        services[nid].subscribe(
            topic, lambda _t, ev, nid=nid: received.append((nid, ev))
        )
    world.run_for_minutes(1)

    sizes = [s for svc in services.values() for s in svc.group_sizes]
    print(f"  {len(sizes)} FUSE groups guard the tree links")
    if sizes:
        print(f"  group sizes: mean {sum(sizes) / len(sizes):.1f}, max {max(sizes)} "
              "(paper: mean 2.9, max 13 at full scale)")

    print("\npublishing 'MSFT 27.50' from node 0:")
    services[0].publish(topic, "MSFT 27.50")
    world.run_for_minutes(1)
    got = sorted(nid for nid, ev in received if ev == "MSFT 27.50")
    print(f"  delivered to {got}")

    # Crash the topic root: the strongest failure for a multicast tree.
    root_name = world.overlay.overlay_route(
        world.overlay_node(subscribers[0]).name, topic_root_name(topic)
    )[-1]
    root_id = next(n for n in world.node_ids if world.overlay_node(n).name == root_name)
    print(f"\ncrashing the tree root (node {root_id})...")
    world.crash(root_id)
    print("  waiting for FUSE notifications + re-subscription (simulated minutes)...")
    world.run_for_minutes(12)

    received.clear()
    services[1].publish(topic, "MSFT 28.10")
    world.run_for_minutes(3)
    got = sorted(nid for nid, ev in received if ev == "MSFT 28.10")
    expected = [s for s in subscribers if s != root_id]
    print(f"  after recovery, delivered to {got} (expected {expected})")

    # Voluntary leave reuses the failure path (§4).
    leaver = got[0]
    print(f"\nnode {leaver} unsubscribes (explicitly signalling its link groups):")
    services[leaver].unsubscribe(topic)
    world.run_for_minutes(2)
    received.clear()
    services[1].publish(topic, "MSFT 29.99")
    world.run_for_minutes(2)
    got = sorted(nid for nid, ev in received if ev == "MSFT 29.99")
    print(f"  delivered to {got} (node {leaver} no longer receives)")


if __name__ == "__main__":
    main()

"""Calibration tests for the synthetic Mercator-like topology.

These assert the distribution *shapes* the paper's evaluation relies on:
median RTT around 130 ms with a heavy T3 tail (Fig 6), and router-level
routes with a median around 15 hops (Fig 11's loss compounding).
"""

import pytest

from repro.net import MercatorConfig, Network, build_mercator_topology
from repro.net.topology import LinkKind
from repro.sim import Simulator
from repro.sim.metrics import percentile


@pytest.fixture(scope="module")
def default_world():
    sim = Simulator(seed=1)
    topo, hosts = build_mercator_topology(MercatorConfig(), sim.rng.stream("topology"))
    net = Network(sim, topo)
    rng = sim.rng.stream("pairs")
    routes = []
    for _ in range(600):
        a, b = rng.sample(hosts, 2)
        routes.append(net.routes.route(a, b))
    return topo, routes


class TestMercatorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MercatorConfig(n_hosts=0)
        with pytest.raises(ValueError):
            MercatorConfig(n_as=1)
        with pytest.raises(ValueError):
            MercatorConfig(routers_per_as=0)
        with pytest.raises(ValueError):
            MercatorConfig(t3_fraction=1.5)

    def test_scaled_for_hosts(self):
        small = MercatorConfig.scaled_for_hosts(50)
        large = MercatorConfig.scaled_for_hosts(16_000)
        assert small.n_hosts == 50
        assert large.n_as > small.n_as
        assert large.n_as <= 512


class TestGeneratedTopology:
    def test_all_hosts_attached(self, default_world):
        topo, _routes = default_world
        assert len(list(topo.hosts())) == MercatorConfig().n_hosts

    def test_router_count(self, default_world):
        topo, _routes = default_world
        cfg = MercatorConfig()
        assert topo.router_count == cfg.n_as * cfg.routers_per_as

    def test_connected(self, default_world):
        """Every sampled pair found a route (Dijkstra raised for none)."""
        _topo, routes = default_world
        assert len(routes) == 600

    def test_link_kind_mix(self, default_world):
        topo, _routes = default_world
        kinds = [link.kind for link in topo.links()]
        n_t3 = sum(1 for k in kinds if k is LinkKind.T3)
        n_oc3 = sum(1 for k in kinds if k is LinkKind.OC3)
        assert n_t3 >= 1
        assert n_oc3 > n_t3  # OC3 dominates, as in the paper's 97/3 mix

    def test_median_rtt_shape(self, default_world):
        """Paper: 130 ms median RTT.  Accept the low hundreds."""
        _topo, routes = default_world
        rtts = [2.0 * r.latency_ms for r in routes]
        assert 90.0 <= percentile(rtts, 50) <= 250.0

    def test_heavy_tail_exists(self, default_world):
        """Paths crossing T3 links form a heavy tail (paper Fig 6)."""
        _topo, routes = default_world
        rtts = [2.0 * r.latency_ms for r in routes]
        assert percentile(rtts, 95) > 3.0 * percentile(rtts, 50)

    def test_route_hops_shape(self, default_world):
        """Paper: routes of 2-43 hops with median 15."""
        _topo, routes = default_world
        hops = [r.hop_count for r in routes]
        assert 8 <= percentile(hops, 50) <= 22
        assert min(hops) >= 2
        assert max(hops) <= 50

    def test_determinism(self):
        def build(seed):
            sim = Simulator(seed=seed)
            topo, _ = build_mercator_topology(
                MercatorConfig(n_hosts=50, n_as=8), sim.rng.stream("topology")
            )
            return sorted(
                (link.a, link.b, round(link.latency_ms, 6)) for link in topo.links()
            )

        assert build(3) == build(3)
        assert build(3) != build(4)

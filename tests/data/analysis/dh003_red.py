"""RED fixture for DH003: set iteration order escaping into sinks."""


def schedule_all(sim, pending):
    ready = {node for node in pending if node is not None}
    for node in ready:  # set-comprehension local, scheduler sink
        sim.schedule_soon(node)


def fanout(net, peer_list):
    peers = set(peer_list)
    for peer in peers:  # set() local, transport sink
        net.send(peer, "ping")


def snapshot(items):
    live = set(items)
    return list(live)  # list() materializes hash order


def chain(a, b):
    merged = set(a) | set(b)
    return [x for x in merged]  # list comprehension materializes order


class DirtyTracker:
    def __init__(self):
        self._dirty = set()

    def mark(self, node):
        self._dirty.add(node)

    def flush(self, ledger):
        for node in self._dirty:  # set-typed self attribute, ledger sink
            ledger.record_notification(node)

"""GREEN fixture for DH005: None defaults, built inside."""


def collect(item, acc=None):
    if acc is None:
        acc = []
    acc.append(item)
    return acc


def register(name, registry=None):
    registry = dict(registry or {})
    registry[name] = True
    return registry

"""GREEN fixture for DH004: the sanctioned shapes."""


class StableKey:
    __slots__ = ("name", "serial")

    def __init__(self, name, serial):
        self.name = name
        self.serial = serial

    def __hash__(self):
        return hash((self.name, self.serial))  # exempt inside __hash__

    def __eq__(self, other):
        return (
            isinstance(other, StableKey)
            and (self.name, self.serial) == (other.name, other.serial)
        )


def order(records):
    # Stable tuple sort key instead of an address.
    return sorted(records, key=lambda r: (r.when, r.serial))

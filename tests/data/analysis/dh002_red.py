"""RED fixture for DH002: wall-clock / entropy reads."""

import os
import secrets
import time
import uuid
from datetime import datetime
from time import perf_counter


def stamp():
    return time.time()  # direct wall read


def elapsed(start):
    return perf_counter() - start  # aliased import the old regex missed


def token():
    return uuid.uuid4()  # entropy-backed id


def nonce():
    return os.urandom(8)  # OS entropy


def secret_key():
    return secrets.token_hex(16)  # OS entropy


def today():
    return datetime.now()  # wall clock via datetime

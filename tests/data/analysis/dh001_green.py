"""GREEN fixture for DH001: seeded construction and stream parameters."""

import random

import numpy as np


def seeded_generator(seed):
    return random.Random(seed)


def seeded_numpy(seed):
    return np.random.default_rng(seed)


def draw(rng: random.Random) -> float:
    # Methods on an *instance* are fine — only the module-level
    # functions ride the process-global generator.
    return rng.random()

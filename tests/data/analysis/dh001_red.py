"""RED fixture for DH001: module-level / unseeded RNG.

Never imported — only parsed by the analyzer tests.  Every function
below must produce exactly one DH001 finding.
"""

import random

import numpy as np
from random import choice


def jitter_ms():
    return random.random() * 5.0  # module-level shared generator


def pick(options):
    return choice(options)  # from-import of a module-level function


def unseeded_generator():
    return random.Random()  # no seed: OS entropy at construction


def noise(n):
    return np.random.rand(n)  # numpy's process-global RandomState


def unseeded_numpy():
    return np.random.default_rng()  # no seed: OS entropy

"""RED fixture for DH005: mutable default arguments."""


def collect(item, acc=[]):  # shared list across every call
    acc.append(item)
    return acc


def register(name, registry={}):  # shared dict across every call
    registry[name] = True
    return registry


def tag(value, seen=set()):  # shared set across every call
    seen.add(value)
    return value in seen

"""GREEN fixture for DH002: time through the clock seam only."""


def now_ms(clock):
    return clock.now  # a ClockBase: simulated or wall-anchored


def deadline(clock, timeout_ms):
    return clock.now + timeout_ms


def report_elapsed(wall_seconds_fn, started):
    # Elapsed reporting routes through the sanctioned helper, passed in.
    return wall_seconds_fn() - started

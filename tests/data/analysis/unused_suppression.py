"""Fixture: an allow comment on a clean line must fail the audit."""


def clean():
    return 1  # repro: allow[DH001] nothing hazardous here


def also_clean():
    return 2  # repro: allow[DH999] no rule has this id

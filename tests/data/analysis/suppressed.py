"""Fixture: both suppression placements silence a real DH001 finding."""

import random


def jitter_same_line():
    return random.random()  # repro: allow[DH001] fixture: same-line suppression


def jitter_comment_above():
    # repro: allow[DH001] fixture: comment-above suppression
    return random.random()

"""GREEN fixture for DH003: sorted escapes, order-free reductions."""


def schedule_all(sim, pending):
    ready = {node for node in pending if node is not None}
    for node in sorted(ready):  # sorted(): replayable order
        sim.schedule_soon(node)


def census(items):
    live = set(items)
    return len(live)  # order-free reduction


def contains(universe, node):
    members = set(universe)
    return node in members  # membership test: no order escapes


def drain(queues, sim):
    # Plain dict iteration: insertion-ordered in CPython, deterministic
    # for a deterministically-built dict (strict_dict_order audits this).
    for name, queue in queues.items():
        sim.schedule_soon(queue)


class DirtyTracker:
    def __init__(self):
        self._dirty = set()

    def flush(self, ledger):
        for node in sorted(self._dirty):
            ledger.record_notification(node)

"""RED fixture for DH006: post-fork global mutation.

Named ``engine/parallel.py`` so the default worker-module pattern
matches it.  Never imported.
"""

CACHE = {}
TOTAL = 0


def run_trial_worker(spec):
    global TOTAL  # rebinds module state post-fork
    TOTAL = TOTAL + 1
    CACHE[spec] = TOTAL  # writes through a module-level name
    return TOTAL


def warm_cache(results):
    CACHE.update(results)  # mutator call on a module-level name

"""GREEN fixture for DH006: worker state stays local / on results.

Named ``engine/windows.py`` so the worker-module pattern matches — the
rule must evaluate this file and stay silent.
"""

WINDOW_EPS = 1e-9  # module-level constants are fine: read, never written


def run_trial_worker(spec):
    cache = {}
    cache[spec] = 1  # local binding shadows nothing, mutates nothing shared
    totals = dict(cache)
    totals.update(cache)
    return totals

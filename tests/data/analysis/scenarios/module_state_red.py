"""RED fixture for DH005 module-level state.

Lives under a ``scenarios/`` directory so the default config's
track-module pattern applies to it.
"""

runs_seen = []  # shared by all replicas in-process, reset across forks

_cache = {}  # same hazard, "private" spelling


def on_phase_start(ctx, phase):
    runs_seen.append(phase.name)
    _cache[phase.name] = ctx

"""GREEN fixture for DH005 module-level state in a track module."""

#: Build-once registry: ALL_CAPS marks it constant by repo convention.
TRACK_KINDS = {"steady": object, "churn": object}

PHASES = ("warmup", "steady")


def on_phase_start(ctx, phase):
    # Per-run state belongs on the scenario context, not the module.
    ctx.scratch.setdefault("phases_seen", []).append(phase.name)

"""RED fixture for DH004: id()/hash() in keys and ordering."""


def index(objs):
    table = {}
    for obj in objs:
        table[id(obj)] = obj  # subscript key from an address
    return table


def order(objs):
    return sorted(objs, key=lambda o: id(o))  # address-ordered sort


def bucket(name, n_buckets):
    return hash(name) % n_buckets  # PYTHONHASHSEED-salted placement


def lookup(cache, track):
    return cache.get(id(track))  # keyed container method

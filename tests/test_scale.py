"""Paper-scale behaviour: lazy routing bounds, sharded-sweep determinism,
and route-cache invalidation across shard processes.

These tests pin the properties the scale rework (O(n)-ish bootstrap,
lazy per-tree routing, sharded scenario sweeps) must keep:

* bootstrap never precomputes routes for host pairs that never
  communicated — the route table stays bounded by actual traffic;
* a sharded sweep (``--jobs 2``) archives byte-identical JSON to a
  serial run, shard for shard;
* ``Topology.generation`` bumps invalidate lazily-built route caches the
  same way in the parent process and in a forked shard;
* the scipy-accelerated Dijkstra and the pure-Python fallback produce
  identical trees (when scipy is available to compare).
"""

from __future__ import annotations

import json
import multiprocessing
import random

import pytest

from repro.net.mercator import MercatorConfig, build_mercator_topology
from repro.net.routing import RouteTable
from repro.scenarios.runner import apply_overrides, run_scenario_sweep
from repro.scenarios.timeline import Phase, Scenario
from repro.scenarios.tracks import GroupWorkload
from repro.world import FuseWorld


class TestLazyRouting:
    def test_bootstrap_does_not_precompute_silent_pairs(self):
        """Route state after bootstrap is bounded by pairs that actually
        communicated, not by n^2 — the core of the lazy-routing design."""
        world = FuseWorld(n_nodes=500, seed=3)
        world.bootstrap()
        n = len(world.node_ids)
        routes = world.net.routes.cached_route_count
        trees = world.net.routes.cached_tree_count
        assert routes > 0
        # Every node talks to its overlay neighbors (leaf set 16 + ring
        # pointers) plus join-time traffic; a generous per-node budget is
        # still vastly below the n*(n-1) all-pairs table.
        assert routes <= n * 60
        assert routes < n * (n - 1) / 10
        # Trees exist only for routers that originated traffic.
        assert trees <= world.topology.router_count

    def test_auto_bootstrap_joins_everyone(self):
        """The compressed join schedule (> 400 nodes) still yields a
        fully-joined overlay."""
        world = FuseWorld(n_nodes=500, seed=3)
        assert world.default_join_spacing_ms() < 200.0
        world.bootstrap()
        assert world.overlay.member_count == 500

    def test_classic_worlds_keep_200ms_schedule(self):
        world = FuseWorld(n_nodes=30, seed=3)
        assert world.default_join_spacing_ms() == 200.0


def _sweep_scenario() -> Scenario:
    return Scenario(
        name="scale-sweep-test",
        n_nodes=1000,
        seed=7,
        phases=(Phase("warmup", 0.5), Phase("measure", 0.5, measure=True)),
        tracks=(GroupWorkload(n_groups=4, group_size=4),),
    )


def _archive_lines(jobs: int) -> list:
    lines = []

    def sink(trial):
        lines.append(
            json.dumps(trial.to_json_dict(include_timing=False), sort_keys=True)
        )

    run_scenario_sweep(
        _sweep_scenario(),
        {"n_nodes": [1000]},
        jobs=jobs,
        seeds=(7, 8),
        on_result=sink,
        keep_results=False,
    )
    return lines


class TestShardedSweep:
    def test_serial_vs_jobs2_byte_identical(self):
        """A 1,000-node sweep archived serially and with --jobs 2 must
        produce byte-identical JSON lines, in the same order."""
        serial = _archive_lines(jobs=1)
        parallel = _archive_lines(jobs=2)
        assert len(serial) == 2
        assert serial == parallel

    def test_apply_overrides_n_nodes_and_track_fields(self):
        scenario = _sweep_scenario()
        varied = apply_overrides(
            scenario, {"n_nodes": 48, "tracks.0.n_groups": 9}
        )
        assert varied.n_nodes == 48
        assert varied.tracks[0].n_groups == 9
        # The original is untouched (tracks are replaced, not mutated).
        assert scenario.n_nodes == 1000
        assert scenario.tracks[0].n_groups == 4

    def test_apply_overrides_rejects_unknown_axes(self):
        scenario = _sweep_scenario()
        with pytest.raises(ValueError):
            apply_overrides(scenario, {"bogus": 1})
        # Seeds replicate via --seeds; a seed "axis" would be silently
        # shadowed by the engine's per-trial seed derivation.
        with pytest.raises(ValueError):
            apply_overrides(scenario, {"seed": 1})
        with pytest.raises(ValueError):
            apply_overrides(scenario, {"tracks.5.n_groups": 1})
        with pytest.raises(ValueError):
            apply_overrides(scenario, {"tracks.0.bogus_field": 1})


def _shard_probe(topology, route, queue):
    """Runs in a forked shard: flip loss, check the lazily-built route
    cache refreshes through the generation counter."""
    before = route.current_loss()
    generation_before = topology.generation
    topology.set_uniform_loss(0.02)
    after = route.current_loss()
    queue.put(
        {
            "before": before,
            "after": after,
            "generation_bumped": topology.generation > generation_before,
        }
    )


class TestGenerationAcrossShards:
    @pytest.fixture
    def topo_and_table(self):
        config = MercatorConfig(n_hosts=20, n_as=4)
        topo, hosts = build_mercator_topology(config, random.Random(5))
        return topo, RouteTable(topo), hosts

    def test_generation_bump_invalidates_parent(self, topo_and_table):
        topo, table, hosts = topo_and_table
        route = table.route(hosts[0], hosts[7])
        assert route.current_loss() == 0.0
        topo.set_link_loss(route.core[0], 0.05)
        assert route.current_loss() > 0.0
        assert route.loss_static == 0.0  # build-time snapshot untouched

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_generation_bump_invalidates_forked_shard(self, topo_and_table):
        """A shard inheriting a warm route cache via fork must see its
        *own* loss mutations through the generation counter, and the
        parent's cache must stay untouched by the shard's mutation."""
        topo, table, hosts = topo_and_table
        route = table.route(hosts[0], hosts[7])
        assert route.current_loss() == 0.0  # warm the cache pre-fork

        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        proc = ctx.Process(target=_shard_probe, args=(topo, route, queue))
        proc.start()
        shard = queue.get(timeout=30)
        proc.join(timeout=30)

        assert shard["before"] == 0.0
        assert shard["after"] > 0.0
        assert shard["generation_bumped"]
        # Parent process: cache still valid, still lossless...
        assert route.current_loss() == 0.0
        # ...and the parent's own mutation invalidates identically.
        topo.set_uniform_loss(0.01)
        assert route.current_loss() > 0.0


class TestDijkstraImplementations:
    def test_scipy_and_python_trees_agree(self):
        """The accelerated and fallback Dijkstra must materialize the
        same routes (unique shortest paths on generated topologies)."""
        import repro.net.routing as routing

        if routing._csr_matrix is None:
            pytest.skip("scipy not available; only the fallback exists")
        config = MercatorConfig(n_hosts=60, n_as=8)
        topo, hosts = build_mercator_topology(config, random.Random(11))
        fast = RouteTable(topo)
        slow = RouteTable(topo)
        slow._adjacency_snapshot()
        slow._csr = None  # force the pure-Python path
        rng = random.Random(13)
        for _ in range(80):
            a, b = rng.sample(hosts, 2)
            route_fast = fast.route(a, b)
            route_slow = slow.route(a, b)
            assert route_fast.latency_ms == route_slow.latency_ms
            assert [l.endpoints() for l in route_fast.links] == [
                l.endpoints() for l in route_slow.links
            ]

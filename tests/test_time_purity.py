"""Simulated-time purity lint: no stray wall-clock reads in src/repro.

The determinism story — byte-identical event streams for a fixed seed,
the cross-mode determinism matrix, the parallel window protocol — rests
on exactly one rule: protocol and harness code measures time through the
clock seam (:class:`repro.net.backends.base.ClockBase`), never the wall.

Since PR 10 this test is a thin wrapper over rule **DH002** of the
static analyzer (:mod:`repro.analysis`) instead of a regex walker of its
own: same sanctioned-module list (:attr:`AnalysisConfig.wallclock_modules`
— the live backend package, where :class:`WallClock` and the asyncio
kernel live by design), one shared implementation, and the AST form also
catches aliased imports (``from time import perf_counter``) and
``uuid``/``secrets``/``os.urandom`` entropy reads the regex missed.

Adding a wall-clock read anywhere else should hurt; route it through
``repro.net.backends.wallclock.wall_seconds`` / ``perf_seconds`` or a
``ClockBase`` instead.
"""

from __future__ import annotations

import dataclasses
import pathlib

from repro.analysis import DEFAULT_CONFIG, analyze_paths
from repro.analysis.rules.dh002_wallclock import WallClockRule

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: The only package allowed to touch the wall clock or the real loop —
#: read from the shared analyzer config, not duplicated here.
ALLOWED_PREFIXES = DEFAULT_CONFIG.wallclock_modules

DH002_ONLY = dataclasses.replace(DEFAULT_CONFIG, rules=("DH002",))


def test_source_tree_exists():
    assert SRC.is_dir(), f"source tree not found at {SRC}"


def test_no_wall_clock_outside_backends():
    result = analyze_paths([SRC], config=DH002_ONLY, root=SRC.parent.parent)
    offenders = [f.render() for f in result.findings]
    assert not offenders, (
        "wall-clock usage outside net/backends/ (route through "
        "repro.net.backends.wallclock or a ClockBase):\n" + "\n".join(offenders)
    )


def test_backends_package_is_the_sanctioned_home():
    """The allowlist must keep pointing at real code — if the backend
    package moves, the lint must move with it, not rot into a no-op."""
    assert ALLOWED_PREFIXES == ("net/backends/",)
    assert (SRC / "net" / "backends" / "wallclock.py").is_file()
    # Run DH002 with the sanction list emptied: the backend package
    # itself must light up, proving the rule still sees real wall reads.
    unsanctioned = dataclasses.replace(
        DH002_ONLY, wallclock_modules=("nowhere/does-not-exist/",)
    )
    result = analyze_paths(
        [SRC / "net" / "backends"], config=unsanctioned, root=SRC.parent.parent
    )
    hits = [f for f in result.findings if f.rule == WallClockRule.rule_id]
    assert hits, "expected the backend package itself to use wall time"

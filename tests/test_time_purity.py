"""Simulated-time purity lint: no stray wall-clock reads in src/repro.

The determinism story — byte-identical event streams for a fixed seed,
the cross-mode determinism matrix, the parallel window protocol — rests
on exactly one rule: protocol and harness code measures time through the
clock seam (:class:`repro.net.backends.base.ClockBase`), never the wall.
This test greps the source tree for the three ways wall time leaks in
(``time.time()``, ``time.monotonic()``, ``asyncio.sleep``) and fails on
any hit outside the sanctioned home: the live backend package
(``net/backends/``), which is where the wall-clock :class:`WallClock`
and the asyncio kernel live by design.

Adding a wall-clock read anywhere else should hurt; route it through
``repro.net.backends.wallclock.wall_seconds`` (CLI elapsed-time
reporting) or a ``ClockBase`` instead.
"""

from __future__ import annotations

import pathlib
import re

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: The only package allowed to touch the wall clock or the real loop.
ALLOWED_PREFIXES = ("net/backends/",)

FORBIDDEN = re.compile(r"time\.time\(\)|time\.monotonic\(\)|asyncio\.sleep")


def _is_allowed(rel: str) -> bool:
    return any(rel.startswith(prefix) for prefix in ALLOWED_PREFIXES)


def test_source_tree_exists():
    assert SRC.is_dir(), f"source tree not found at {SRC}"


def test_no_wall_clock_outside_backends():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        if _is_allowed(rel):
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if FORBIDDEN.search(line):
                offenders.append(f"{rel}:{lineno}: {line.strip()}")
    assert not offenders, (
        "wall-clock usage outside net/backends/ (route through "
        "repro.net.backends.wallclock or a ClockBase):\n" + "\n".join(offenders)
    )


def test_backends_package_is_the_sanctioned_home():
    """The allowlist must keep pointing at real code — if the backend
    package moves, the lint must move with it, not rot into a no-op."""
    assert (SRC / "net" / "backends" / "wallclock.py").is_file()
    hits = [
        path
        for path in (SRC / "net" / "backends").rglob("*.py")
        if FORBIDDEN.search(path.read_text())
    ]
    assert hits, "expected the backend package itself to use wall time"

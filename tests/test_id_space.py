"""Tests for SkipNet identifier spaces and ring-interval math."""

import pytest

from repro.overlay.id_space import (
    clockwise_between,
    name_distance_clockwise,
    numeric_id_for,
    shared_prefix_length,
)


class TestNumericId:
    def test_deterministic(self):
        assert numeric_id_for("alice") == numeric_id_for("alice")

    def test_different_names_differ(self):
        assert numeric_id_for("alice") != numeric_id_for("bob")

    def test_digit_range(self):
        digits = numeric_id_for("x", base=8, digits=32)
        assert len(digits) == 32
        assert all(0 <= d < 8 for d in digits)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            numeric_id_for("x", base=1)
        with pytest.raises(ValueError):
            numeric_id_for("x", digits=0)

    def test_roughly_uniform_first_digit(self):
        counts = [0] * 8
        for i in range(4000):
            counts[numeric_id_for(f"node-{i}")[0]] += 1
        assert min(counts) > 300  # expected 500 each

    def test_shared_prefix_length(self):
        assert shared_prefix_length([1, 2, 3], [1, 2, 4]) == 2
        assert shared_prefix_length([1], [2]) == 0
        assert shared_prefix_length([5, 5], [5, 5]) == 2


class TestClockwiseBetween:
    def test_simple_interval(self):
        assert clockwise_between("a", "b", "c")
        assert not clockwise_between("a", "d", "c")

    def test_endpoint_inclusion(self):
        # (a, b]: b included, a excluded.
        assert clockwise_between("a", "c", "c")
        assert not clockwise_between("a", "a", "c")

    def test_wraparound(self):
        assert clockwise_between("x", "z", "b")
        assert clockwise_between("x", "a", "b")
        assert not clockwise_between("x", "m", "b")

    def test_degenerate_interval(self):
        assert clockwise_between("a", "a", "a")
        assert not clockwise_between("a", "b", "a")


class TestNameDistance:
    def test_distance(self):
        ring = ["a", "b", "c", "d"]
        assert name_distance_clockwise("a", "c", ring) == 2
        assert name_distance_clockwise("c", "a", ring) == 2
        assert name_distance_clockwise("d", "a", ring) == 1

    def test_non_member_rejected(self):
        with pytest.raises(ValueError):
            name_distance_clockwise("a", "z", ["a", "b"])

"""Failure-driven notification tests: crashes, disconnects, partitions,
intransitive failures (§3.3-§3.5, Fig 9's scenario)."""

import pytest

from repro import FuseWorld
from repro.net import MercatorConfig


def minutes(ms: float) -> float:
    return ms / 60_000.0


class TestMemberCrash:
    def test_all_live_members_notified_on_disconnect(self, small_world):
        fid, status, _ = small_world.create_group_sync(0, [5, 9, 13])
        assert status == "ok"
        small_world.disconnect(9)
        small_world.run_for_minutes(8)
        for m in (0, 5, 13):
            assert fid in small_world.fuse(m).notifications
        # The disconnected node hears it from its own side too (§3.3).
        assert fid in small_world.fuse(9).notifications

    def test_notification_within_bounded_time(self, small_world):
        """Fig 9: ping timeout + repair timeout dominate; everything lands
        within a few minutes."""
        fid, _, _ = small_world.create_group_sync(0, [5, 9, 13])
        times = small_world.ledger.notification_times(fid)
        t0 = small_world.now
        small_world.disconnect(9)
        small_world.run_for_minutes(10)
        times = {m: t for m, t in times.items() if m in (0, 5, 13)}
        assert set(times) == {0, 5, 13}
        for m, t in times.items():
            assert minutes(t - t0) < 6.0, f"member {m} took too long"

    def test_crash_of_process_also_detected(self, small_world):
        fid, _, _ = small_world.create_group_sync(0, [5, 9])
        small_world.crash(9)
        small_world.run_for_minutes(8)
        assert fid in small_world.fuse(0).notifications
        assert fid in small_world.fuse(5).notifications

    def test_root_crash_detected_by_members(self, small_world):
        fid, _, _ = small_world.create_group_sync(0, [5, 9, 13])
        small_world.crash(0)
        small_world.run_for_minutes(8)
        for m in (5, 9, 13):
            assert fid in small_world.fuse(m).notifications

    def test_unrelated_groups_survive_member_crash(self, small_world):
        fid_a, _, _ = small_world.create_group_sync(0, [5, 9])
        fid_b, _, _ = small_world.create_group_sync(2, [6, 14])
        small_world.disconnect(9)
        small_world.run_for_minutes(8)
        assert fid_a in small_world.fuse(0).notifications
        assert fid_b in small_world.fuse(2).groups  # unaffected group lives


class TestPartition:
    def test_both_sides_notified(self):
        world = FuseWorld(n_nodes=20, seed=13, mercator=MercatorConfig(n_hosts=20, n_as=6))
        world.bootstrap()
        fid, status, _ = world.create_group_sync(0, [5, 10, 15])
        assert status == "ok"
        side_a = [n for n in world.node_ids if n < 10]
        side_b = [n for n in world.node_ids if n >= 10]
        world.net.faults.partition([side_a, side_b])
        world.run_for_minutes(10)
        for m in (0, 5, 10, 15):
            assert fid in world.fuse(m).notifications, f"member {m} missed notification"


class TestIntransitiveConnectivity:
    def test_application_signal_reaches_everyone(self, small_world):
        """§3.4 fail-on-send: A and B cannot talk directly; FUSE may not
        notice, but when A signals, every live member hears."""
        fid, status, _ = small_world.create_group_sync(0, [5, 9])
        assert status == "ok"
        small_world.net.faults.block_pair(5, 9)
        small_world.run_for_minutes(2)
        # FUSE itself may see nothing wrong (the pair may share no overlay
        # link); the application notices on send and signals.
        small_world.fuse(5).signal_failure(fid)
        small_world.run_for_minutes(3)
        for m in (0, 5, 9):
            assert fid in small_world.fuse(m).notifications


class TestDelegateFailures:
    def test_delegate_crash_is_not_a_false_positive(self):
        """§7.6: delegate failures trigger repair, never notification."""
        world = FuseWorld(n_nodes=30, seed=21, mercator=MercatorConfig(n_hosts=30, n_as=10))
        world.bootstrap()
        # Find a group whose member-root overlay route has a delegate.
        fid = None
        delegate = None
        for member in world.node_ids[1:]:
            path = world.overlay.overlay_route(
                world.overlay_node(member).name, world.overlay_node(0).name
            )
            if len(path) > 2:
                fid, status, _ = world.create_group_sync(0, [member])
                assert status == "ok"
                delegate_name = path[1]
                delegate = next(
                    nid
                    for nid in world.node_ids
                    if world.overlay_node(nid).name == delegate_name
                )
                break
        assert fid is not None and delegate is not None, "no multi-hop route found"
        world.run_for(5_000)
        world.crash(delegate)
        world.run_for_minutes(10)
        assert fid not in world.fuse(0).notifications, "delegate crash caused false positive"
        members_with_state = [
            nid for nid in world.node_ids if fid in world.fuse(nid).groups
        ]
        assert 0 in members_with_state


class TestExactlyOnce:
    @pytest.mark.parametrize("failure", ["signal", "disconnect"])
    def test_handler_never_fires_twice(self, small_world, failure):
        fid, _, _ = small_world.create_group_sync(0, [5, 9, 13])
        counts = {m: 0 for m in (0, 5, 13)}

        def make_handler(m):
            def handler(_f):
                counts[m] += 1

            return handler

        for m in counts:
            small_world.fuse(m).register_failure_handler(fid, make_handler(m))
        if failure == "signal":
            small_world.fuse(5).signal_failure(fid)
        else:
            small_world.disconnect(9)
        small_world.run_for_minutes(12)
        assert all(c == 1 for c in counts.values()), counts


class TestNoOrphanedState:
    def test_group_state_vanishes_everywhere_after_failure(self, small_world):
        fids = []
        for root, members in [(0, [5, 9]), (2, [6, 10, 14]), (3, [7])]:
            fid, status, _ = small_world.create_group_sync(root, members)
            assert status == "ok"
            fids.append(fid)
        small_world.disconnect(9)
        small_world.fuse(3).signal_failure(fids[2])
        small_world.run_for_minutes(12)
        for fid in (fids[0], fids[2]):
            for nid in small_world.node_ids:
                assert fid not in small_world.fuse(nid).groups, (fid, nid)

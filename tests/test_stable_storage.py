"""Tests for the §3.6 stable-storage alternative implementation."""

from repro import FuseConfig, FuseWorld
from repro.net import MercatorConfig


def build_world(stable=True, seed=41, n=24):
    world = FuseWorld(
        n_nodes=n,
        seed=seed,
        mercator=MercatorConfig(n_hosts=n, n_as=8),
        fuse_config=FuseConfig(stable_storage=stable),
    )
    world.bootstrap()
    return world


class TestStableStorage:
    def test_brief_crash_is_masked(self):
        """A member that crashes and recovers quickly re-installs its
        groups from stable storage; the group survives."""
        world = build_world(stable=True)
        fid, status, _ = world.create_group_sync(0, [5, 9])
        assert status == "ok"
        world.run_for(5_000)
        world.crash(9)
        world.run_for(2_000)
        world.restart(9)
        world.run_for_minutes(12)
        # The recovered member reconciled: the group is alive everywhere.
        assert fid in world.fuse(9).groups
        assert fid in world.fuse(0).groups
        assert fid not in world.fuse(0).notifications

    def test_without_stable_storage_same_crash_fails_group(self):
        """Control: the identical schedule without stable storage hardens
        into notifications (the volatile-state behaviour)."""
        world = build_world(stable=False)
        fid, status, _ = world.create_group_sync(0, [5, 9])
        assert status == "ok"
        world.run_for(5_000)
        world.crash(9)
        world.run_for(2_000)
        world.restart(9)
        world.run_for_minutes(12)
        assert fid in world.fuse(0).notifications

    def test_root_crash_recovery_rebuilds_tree(self):
        world = build_world(stable=True, seed=43)
        fid, status, _ = world.create_group_sync(0, [5, 9])
        assert status == "ok"
        world.run_for(5_000)
        world.crash(0)
        world.run_for(2_000)
        world.restart(0)
        world.run_for_minutes(12)
        assert fid in world.fuse(0).groups
        assert fid in world.fuse(5).groups

    def test_failed_group_not_resurrected(self):
        """Stable storage must not bring back a group that was signalled
        while the node was down — or after it failed normally."""
        world = build_world(stable=True, seed=44)
        fid, status, _ = world.create_group_sync(0, [5, 9])
        assert status == "ok"
        world.fuse(5).signal_failure(fid)
        world.run_for_minutes(2)
        assert fid in world.fuse(9).notifications
        world.crash(9)
        world.run_for(1_000)
        world.restart(9)
        world.run_for_minutes(5)
        assert fid not in world.fuse(9).groups

    def test_long_outage_still_notifies_survivors(self):
        """Stable storage masks brief crashes only: during a long outage
        the survivors' timers fire first, and the recovered node's repair
        attempt reconciles it to the failure."""
        world = build_world(stable=True, seed=45)
        fid, status, _ = world.create_group_sync(0, [5, 9])
        assert status == "ok"
        world.run_for(5_000)
        world.crash(9)
        world.run_for_minutes(10)  # far beyond detection + repair timeouts
        assert fid in world.fuse(0).notifications
        assert fid in world.fuse(5).notifications
        world.restart(9)
        world.run_for_minutes(8)
        # The recovered node's resurrected state reconciles to failed.
        assert fid not in world.fuse(9).groups

    def test_mixed_deployment_compatible(self):
        """Nodes with and without stable storage co-exist (§3.6)."""
        world = FuseWorld(
            n_nodes=16,
            seed=46,
            mercator=MercatorConfig(n_hosts=16, n_as=6),
            fuse_config=FuseConfig(stable_storage=False),
        )
        # Flip half the nodes to stable storage after construction.
        for nid in world.node_ids[::2]:
            world.fuse(nid).config = FuseConfig(stable_storage=True)
        world.bootstrap()
        fid, status, _ = world.create_group_sync(0, [3, 6])
        assert status == "ok"
        world.fuse(3).signal_failure(fid)
        world.run_for_minutes(3)
        for m in (0, 3, 6):
            assert fid in world.fuse(m).notifications

"""Tests for the declarative scenario engine.

Covers the timeline model and spec loading, the built-in catalogue, the
composition of FaultInjector semantics with scenario tracks (heal
ordering, crash-during-partition), and the engine contract: the same
scenario spec + seed yields identical metrics serially and under
``--jobs 2``.
"""

import json

import pytest

from repro.net import FaultInjector
from repro.scenarios import (
    BUILTIN,
    Phase,
    Scenario,
    Track,
    catalogue,
    execute,
    run_scenario,
    scenario_from_dict,
)
from repro.scenarios.spec import SpecError
from repro.scenarios.tracks import (
    CrashRecoverWave,
    DisconnectWave,
    GroupWorkload,
    LinkLossRamp,
    Partition,
    PoissonChurn,
    resolve_nodes,
)


class TestSelectors:
    def test_forms(self):
        ids = list(range(10, 20))
        assert resolve_nodes("all", ids) == ids
        assert resolve_nodes("first:3", ids) == [10, 11, 12]
        assert resolve_nodes("last:2", ids) == [18, 19]
        assert resolve_nodes("slice:2:5", ids) == [12, 13, 14]
        assert resolve_nodes([11, 15], ids) == [11, 15]

    def test_bad_selector_rejected(self):
        with pytest.raises(ValueError):
            resolve_nodes("half", [1, 2])
        with pytest.raises(ValueError):
            resolve_nodes("first:x", [1, 2])


class TestModelValidation:
    def test_duplicate_phase_names_rejected(self):
        with pytest.raises(ValueError):
            Scenario("s", 10, (Phase("a", 1.0), Phase("a", 2.0)))

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            Scenario("s", 10, ())

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Phase("a", -1.0)

    def test_group_workload_validation(self):
        with pytest.raises(ValueError):
            GroupWorkload(n_groups=1, group_size=1)
        with pytest.raises(ValueError):
            GroupWorkload(n_groups=1, group_size=3, rate_per_minute=2.0)

    def test_partition_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            Partition(phase="p", fractions=(0.5, 0.4))


class TestFaultComposition:
    """FaultInjector semantics under the orderings scenario tracks create."""

    def test_crash_during_partition_survives_heal(self):
        faults = FaultInjector()
        faults.partition([[1, 2], [3, 4]])
        faults.crash(1)
        assert not faults.can_communicate(1, 2)  # crashed beats same-side
        faults.heal_partition()
        assert not faults.can_communicate(1, 2)  # heal does not resurrect
        faults.recover(1)
        assert faults.can_communicate(1, 2)
        assert faults.can_communicate(1, 3)

    def test_blocked_pair_independent_of_partition_lifecycle(self):
        faults = FaultInjector()
        faults.block_pair(1, 3)
        faults.partition([[1, 3], [2]])
        assert not faults.can_communicate(1, 3)  # blocked even same-side
        faults.heal_partition()
        assert not faults.can_communicate(1, 3)  # heal leaves the pair cut
        faults.unblock_pair(1, 3)
        assert faults.can_communicate(1, 3)

    def test_disconnect_during_partition_then_heal(self):
        faults = FaultInjector()
        faults.partition([[1, 2], [3]])
        faults.disconnect(2)
        faults.heal_partition()
        assert not faults.can_communicate(2, 3)
        faults.reconnect(2)
        assert faults.can_communicate(2, 3)


class _HealProbe(Track):
    """Asserts the partition healed before the named phase starts."""

    def __init__(self, phase_name):
        self.phase_name = phase_name

    def on_phase_start(self, ctx, phase):
        if phase.name == self.phase_name:
            faults = ctx.world.net.faults
            first, last = ctx.world.node_ids[0], ctx.world.node_ids[-1]
            ctx.extra["healed_at_phase_start"] = int(
                faults.can_communicate(first, last)
            )


class TestScenarioFaultTracks:
    def _partition_scenario(self, heal_after):
        return Scenario(
            name="t-partition",
            n_nodes=14,
            seed=3,
            phases=(
                Phase("warmup", 1.5),
                Phase("partition", 4.0),
                Phase("healed", 1.0),
            ),
            tracks=(
                GroupWorkload(n_groups=4, group_size=4),
                Partition(phase="partition", fractions=(0.5, 0.5), heal_after_minutes=heal_after),
                _HealProbe("healed"),
            ),
        )

    def test_partition_heal_mid_phase(self):
        m = execute(self._partition_scenario(heal_after=2.0))
        assert m["healed_at_phase_start"] == 1
        # Spanning groups were declared doomed; surviving same-side groups
        # must not be notified.
        assert m["groups_affected"] == m["partition_spanning_groups"]
        assert m["spurious_groups"] == 0
        assert m["groups_notified"] <= m["groups_affected"]

    def test_partition_heals_at_phase_end_by_default(self):
        m = execute(self._partition_scenario(heal_after=None))
        assert m["healed_at_phase_start"] == 1

    def test_crash_wave_during_partition(self):
        """Crash-during-partition: both fault kinds compose; the crashed
        node stays dead after the heal and its groups are notified."""
        class _DisconnectProbe(Track):
            def on_phase_start(self, ctx, phase):
                if phase.name == "after":
                    faults = ctx.world.net.faults
                    ctx.extra["still_disconnected"] = sum(
                        1 for n in ctx.world.node_ids if faults.is_disconnected(n)
                    )

        scenario = Scenario(
            name="t-crash-in-partition",
            n_nodes=14,
            seed=5,
            phases=(Phase("warmup", 1.5), Phase("trouble", 5.0), Phase("after", 1.0)),
            tracks=(
                GroupWorkload(n_groups=5, group_size=3),
                Partition(phase="trouble", fractions=(0.5, 0.5), heal_after_minutes=2.0),
                DisconnectWave(count=2, phase="trouble"),
                _DisconnectProbe(),
            ),
        )
        m = execute(scenario)
        assert m["still_disconnected"] == 2  # heal does not reconnect victims
        assert m["groups_affected"] >= m["partition_spanning_groups"]
        assert m["final_alive"] == 14  # disconnect != crash: processes live

    def test_healed_disconnect_rejoins_overlay(self):
        """Regression: healing a disconnect must rejoin evicted nodes to
        the overlay, not leave reachable-but-invisible zombies."""

        class _MembershipProbe(Track):
            def on_phase_end(self, ctx, phase):
                ctx.extra[f"members_after_{phase.name}"] = ctx.world.overlay.member_count

        scenario = Scenario(
            name="t-heal-rejoin",
            n_nodes=14,
            seed=7,
            phases=(Phase("warmup", 1.0), Phase("outage", 5.0), Phase("recovered", 6.0)),
            tracks=(
                DisconnectWave(count=3, phase="outage", reconnect_after_minutes=4.0),
                _MembershipProbe(),
            ),
        )
        m = execute(scenario)
        assert m["members_after_outage"] <= 14  # eviction may have happened
        assert m["members_after_recovered"] == 14  # heal rejoined everyone

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            GroupWorkload(n_groups=2, group_size=3, rate_per_minute=0.0, phase="p")
        from repro.scenarios.tracks import SvtreeTraffic

        with pytest.raises(ValueError):
            SvtreeTraffic(n_topics=1, subscribers_per_topic=2, phase="p", publish_per_minute=0)

    def test_disconnect_wave_contiguous_block(self):
        scenario = Scenario(
            name="t-rack",
            n_nodes=12,
            seed=2,
            phases=(Phase("warmup", 1.0), Phase("fail", 4.0)),
            tracks=(
                GroupWorkload(n_groups=4, group_size=3),
                DisconnectWave(count=3, phase="fail", contiguous=True),
            ),
        )
        m = execute(scenario)
        assert m["notifications_delivered"] == m["notifications_expected"]

    def test_link_loss_ramp_applies_and_restores(self):
        class _LossProbe(Track):
            def on_phase_end(self, ctx, phase):
                link = next(iter(ctx.world.topology.links()))
                ctx.extra[f"loss_after_{phase.name}"] = link.loss

        scenario = Scenario(
            name="t-loss",
            n_nodes=8,
            seed=1,
            phases=(Phase("lossy", 2.0), Phase("clean", 0.5)),
            tracks=(
                # Probe first: phase-end hooks run in track order, and the
                # ramp's restore must not race ahead of the reading.
                _LossProbe(),
                LinkLossRamp(phase="lossy", end_loss=0.016, steps=2, restore_loss=0.0),
            ),
        )
        m = execute(scenario)
        assert m["loss_after_lossy"] == pytest.approx(0.016)
        assert m["loss_after_clean"] == 0.0
        assert m["final_link_loss"] == 0.016


class TestChurnTracks:
    def test_poisson_churn_holds_population_near_half(self):
        scenario = Scenario(
            name="t-churn",
            n_nodes=20,
            seed=4,
            phases=(Phase("churn", 20.0),),
            tracks=(
                PoissonChurn(
                    nodes="last:10",
                    half_life_minutes=4.0,
                    phase="churn",
                    pre_kill_alternate=True,
                ),
            ),
        )
        m = execute(scenario)
        # 10 stable + ~5 of 10 churners alive; generous band.
        assert 11 <= m["final_alive"] <= 19

    def test_crash_recover_wave_rejoins_everyone(self):
        scenario = Scenario(
            name="t-wave",
            n_nodes=12,
            seed=6,
            phases=(Phase("down", 1.0), Phase("flash", 6.0)),
            tracks=(
                CrashRecoverWave(count=4, nodes="last:4", recover_phase="flash", spacing_ms=50.0),
            ),
        )
        m = execute(scenario)
        assert m["final_alive"] == 12
        assert m["wave_size"] == 4

    def test_rate_based_group_creation(self):
        scenario = Scenario(
            name="t-rate",
            n_nodes=12,
            seed=8,
            phases=(Phase("create", 4.0), Phase("drain", 1.0)),
            tracks=(
                GroupWorkload(n_groups=3, group_size=3, rate_per_minute=1.0, phase="create"),
            ),
        )
        m = execute(scenario)
        assert m["groups_created"] + m["groups_failed"] == 3


class TestDeterminism:
    def test_execute_is_pure(self):
        scenario = BUILTIN["partition-heal"](True)
        assert execute(scenario, seed=123) == execute(scenario, seed=123)

    def test_serial_matches_jobs2(self):
        """Same scenario spec + seeds: identical metrics serial vs --jobs 2."""
        scenario = BUILTIN["correlated-rack-failure"](True)
        serial = run_scenario(scenario, jobs=1, seeds=[1, 2])
        parallel = run_scenario(scenario, jobs=2, seeds=[1, 2])
        assert serial.result_set.to_json(include_timing=False) == parallel.result_set.to_json(
            include_timing=False
        )
        assert serial.format_table() == parallel.format_table()

    def test_tracks_hold_no_per_run_state(self):
        """Reusing one Scenario object across seeds must not leak state
        between runs (tracks keep per-run state on the context)."""
        scenario = BUILTIN["flash-churn"](True)
        first = execute(scenario, seed=9)
        second = execute(scenario, seed=9)
        assert first == second


class TestBuiltinCatalogue:
    def test_at_least_six_builtins(self):
        assert len(BUILTIN) >= 6

    def test_factories_produce_valid_scenarios(self):
        for name, factory in BUILTIN.items():
            for quick in (False, True):
                scenario = factory(quick)
                assert scenario.n_nodes > 0
                assert scenario.phases
                assert scenario.description or name.startswith("paper-")

    def test_catalogue_rows(self):
        rows = catalogue()
        assert len(rows) == len(BUILTIN)
        assert all(desc for _name, desc in rows)


SPEC_DICT = {
    "scenario": {"name": "spec-test", "n_nodes": 12, "seed": 21},
    "phase": [
        {"name": "warmup", "minutes": 1.0},
        {"name": "fail", "minutes": 3.0, "measure": True},
    ],
    "track": [
        {"kind": "groups", "n_groups": 3, "group_size": 3},
        {"kind": "disconnect-wave", "count": 2, "phase": "fail"},
    ],
}


class TestSpecLoading:
    def test_from_dict(self):
        scenario = scenario_from_dict(SPEC_DICT)
        assert scenario.name == "spec-test"
        assert [p.name for p in scenario.phases] == ["warmup", "fail"]
        assert len(scenario.tracks) == 2

    def test_json_file_round_trip(self, tmp_path):
        from repro.scenarios import load

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SPEC_DICT))
        scenario = load(path)
        m = execute(scenario)
        assert m["groups_affected"] >= 1
        assert m["notifications_delivered"] == m["notifications_expected"]

    def test_toml_file(self, tmp_path):
        pytest.importorskip("tomllib")
        from repro.scenarios import load

        path = tmp_path / "spec.toml"
        path.write_text(
            """
[scenario]
name = "toml-test"
n_nodes = 10
seed = 2

[[phase]]
name = "warmup"
minutes = 1.0

[[phase]]
name = "split"
minutes = 3.0

[[track]]
kind = "groups"
n_groups = 2
group_size = 3

[[track]]
kind = "partition"
phase = "split"
fractions = [0.5, 0.5]
heal_after_minutes = 1.0
"""
        )
        scenario = load(path)
        assert scenario.name == "toml-test"
        assert scenario.tracks[1].fractions == (0.5, 0.5)
        # Spec-loaded and dict-loaded scenarios run like Python-built ones.
        m = execute(scenario)
        assert m["groups_created"] == 2

    def test_spec_determinism_matches_python(self):
        """The same timeline expressed as a spec and as Python yields
        identical metrics for the same seed."""
        python_scenario = Scenario(
            name="spec-test",
            n_nodes=12,
            seed=21,
            phases=(Phase("warmup", 1.0), Phase("fail", 3.0, measure=True)),
            tracks=(
                GroupWorkload(n_groups=3, group_size=3),
                DisconnectWave(count=2, phase="fail"),
            ),
        )
        assert execute(scenario_from_dict(SPEC_DICT)) == execute(python_scenario)

    def test_errors(self):
        with pytest.raises(SpecError):
            scenario_from_dict({})
        with pytest.raises(SpecError):
            scenario_from_dict({"scenario": {"name": "x", "n_nodes": 5}})  # no phases
        bad_kind = json.loads(json.dumps(SPEC_DICT))
        bad_kind["track"][0]["kind"] = "nope"
        with pytest.raises(SpecError, match="unknown track kind"):
            scenario_from_dict(bad_kind)
        bad_field = json.loads(json.dumps(SPEC_DICT))
        bad_field["track"][0]["n_gruops"] = 3
        with pytest.raises(SpecError, match="no field"):
            scenario_from_dict(bad_field)


class TestExperimentDelegation:
    """churn.py / crash_notification.py are thin wrappers over scenarios."""

    def test_crash_notification_runs_through_scenarios(self):
        from repro.experiments import crash_notification as cn

        config = cn.CrashConfig(n_nodes=20, n_groups=6, n_disconnected=2, observe_minutes=6.0)
        result = cn.run(config)
        assert result.groups_created == 6
        assert result.notifications_delivered == result.notifications_expected
        assert "Fig 9" in result.format_table()

    def test_churn_runs_through_scenarios(self):
        from repro.experiments import churn

        config = churn.ChurnConfig(
            n_stable=10, n_churning=10, n_groups=3, group_size=4, window_minutes=3.0
        )
        result = churn.run(config)
        assert result.groups_created == 3
        assert result.false_positives == 0
        assert result.stable_msgs_per_sec > 0
        assert "Fig 10" in result.format_table()

    def test_sweep_shapes_unchanged(self):
        """The engine-facing sweep decomposition (and thus derived seeds)
        survived the delegation refactor."""
        from repro.experiments import churn, crash_notification

        assert churn.sweep(churn.ChurnConfig()).expand(churn.EXPERIMENT)[0].params == {
            "scenario": "stable"
        }
        assert len(churn.sweep(churn.ChurnConfig()).expand(churn.EXPERIMENT)) == 3
        assert (
            len(
                crash_notification.sweep(
                    crash_notification.CrashConfig(), seeds=[1, 2]
                ).expand(crash_notification.EXPERIMENT)
            )
            == 2
        )

"""Liveness-lane proofs: byte identity, ejection, fallback parity.

The lane plane (``repro.sim.lanes``) is a pure performance layer: with
lanes on, off, or forced to the pure-Python backend, every observable —
dispatch trace, counters, notification times, scenario measurements —
must be byte-identical.  These tests pin that contract:

* the golden dispatch trace matches the committed fixture with lanes
  *off* and with the pure-Python backend (the default-on path is covered
  by ``tests/test_hotpath_determinism.py``, against the same fixture, so
  the three modes are pairwise identical by transitivity);
* every builtin scenario reproduces its committed ``[expect]`` fixture
  with lanes off (lanes-on is covered by ``tests/test_api_identity.py``);
* heterogeneity ejects lanes before the next lane step: a link fault, a
  loss change (``Topology.generation``), and a crash mid-window each
  return their nodes to the scalar path;
* the compressed flash-crowd bootstrap joins *every* node (the
  15,996/16,000 gap regression, fixed by the first-sweep floor).
"""

import json
import pathlib

import pytest

from repro.scenarios import BUILTIN
from repro.sim.lanes import LanePlane, resolve_lanes_mode
from repro.world import FuseWorld

from golden_scenario import run_golden_scenario
from tests.make_api_fixtures import OUT_DIR, scenario_json

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_dispatch.json"

GOLDEN_KEYS = (
    "trace_records",
    "trace_sha256",
    "events_dispatched",
    "final_time_ms",
    "counters",
    "group_status",
    "notifications",
)


def _golden_fixture():
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenTraceIdentity:
    """Lanes off and the pure-Python lane backend reproduce the same
    golden dispatch trace as the committed (lanes-on-verified) fixture."""

    @pytest.mark.parametrize("mode", ["off", "py"])
    def test_golden_trace_mode(self, mode, monkeypatch):
        monkeypatch.setenv("REPRO_LIVENESS_LANES", mode)
        want = _golden_fixture()
        got = run_golden_scenario(seed=want["seed"])
        for key in GOLDEN_KEYS:
            assert got[key] == want[key], f"{key} diverged with lanes={mode}"


class TestScenarioIdentityLanesOff:
    """All builtin scenarios match their committed fixtures with lanes
    off (test_api_identity covers the default lanes-on path)."""

    @pytest.mark.parametrize("name", sorted(BUILTIN))
    def test_builtin_scenario_lanes_off(self, name, monkeypatch):
        monkeypatch.setenv("REPRO_LIVENESS_LANES", "off")
        fixture = (OUT_DIR / f"scenario_{name}.json").read_text()
        assert scenario_json(name) == fixture


class TestFallbackParity:
    """The pure-Python lane backend is gated exactly like scipy in
    net/routing.py: same results, numpy merely optional."""

    def test_scenario_pure_python_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_LIVENESS_LANES", "py")
        fixture = (OUT_DIR / "scenario_steady.json").read_text()
        assert scenario_json("steady") == fixture

    def test_forced_python_backend_reports_python(self):
        world = FuseWorld(n_nodes=12, seed=3, liveness_lanes="py")
        assert world.sim.lane_plane is not None
        assert world.sim.lane_plane.backend == "python"

    def test_mode_resolution(self, monkeypatch):
        assert resolve_lanes_mode(True) == "on"
        assert resolve_lanes_mode(False) == "off"
        assert resolve_lanes_mode("py") == "py"
        monkeypatch.setenv("REPRO_LIVENESS_LANES", "0")
        assert resolve_lanes_mode() == "off"
        monkeypatch.setenv("REPRO_LIVENESS_LANES", "fallback")
        assert resolve_lanes_mode() == "py"
        monkeypatch.delenv("REPRO_LIVENESS_LANES")
        assert resolve_lanes_mode() == "on"
        with pytest.raises(ValueError):
            resolve_lanes_mode("bogus")

    def test_lanes_off_world_has_no_plane(self):
        world = FuseWorld(n_nodes=12, seed=3, liveness_lanes="off")
        assert world.sim.lane_plane is None
        assert world.overlay.lane_plane is None


def _laned_world(n=20, seed=5):
    """A settled world where every node has been absorbed into a lane."""
    world = FuseWorld(n_nodes=n, seed=seed, liveness_lanes=True)
    world.bootstrap()
    # Every first sweep fires within one ping period; the sweep absorbs.
    world.run_for_minutes(1.5)
    plane = world.sim.lane_plane
    assert plane is not None
    assert plane.lane_count == n, "every idle node should be laned"
    return world, plane


class TestLaneEjection:
    def test_link_fault_flushes_before_next_lane_step(self):
        world, plane = _laned_world()
        flushes = plane.flushes
        a, b = world.node_ids[0], world.node_ids[1]
        world.net.faults.block_pair(a, b)
        # Nothing is ejected until the next micro-event would dispatch...
        assert plane.lane_count == 20
        # ...but the advance window containing the next lane step flushes
        # before dispatching a single micro-event with the stale fault
        # snapshot (invalidation is checked at every advance() entry).
        world.run_for_minutes(1.0)
        assert plane.flushes == flushes + 1
        # Nodes re-form lanes at their next sweep with fresh snapshots.
        world.run_for_minutes(1.5)
        assert plane.lane_count > 0

    def test_loss_change_flushes_before_next_lane_step(self):
        world, plane = _laned_world()
        flushes = plane.flushes
        gen_before = world.topology.generation
        world.topology.set_uniform_loss(0.05)
        assert world.topology.generation != gen_before
        world.run_for_minutes(1.0)
        assert plane.flushes == flushes + 1

    def test_crash_ejects_synchronously(self):
        world, plane = _laned_world()
        victim = world.node_ids[4]
        node = world.overlay_node(victim)
        assert plane.is_laned(node)
        ejects = plane.ejects
        world.crash(victim)
        # The crash listener tears the node down, which must eject it
        # from the plane immediately — not at the next advance window.
        assert not plane.is_laned(node)
        assert plane.ejects > ejects
        # The crashed node's timers were materialized and then cancelled
        # by the teardown, exactly like the scalar path.
        assert node._sweep_timer is None or not node._sweep_timer.active
        assert not node._outstanding_pings

    def test_table_change_ejects(self):
        world, plane = _laned_world()
        # A leave triggers table pushes to the departed node's neighbors;
        # each push ejects that node from its lane.
        ejects = plane.ejects
        world.overlay_node(world.node_ids[7]).leave()
        assert plane.ejects > ejects

    def test_ejected_state_is_scalar_equivalent(self):
        """After a flush, materialized timers keep working: suspicion of
        a crashed neighbor still fires through the scalar path."""
        world, plane = _laned_world()
        victim = world.node_ids[2]
        world.crash(victim)
        world.run_for_minutes(3.0)
        # Some neighbor must have suspected the victim and reported it.
        assert world.overlay.member_count < 20


class TestCompressedBootstrapJoinsEveryNode:
    """Satellite regression for the 16k flash-crowd gap: in the
    compressed join regime the first-sweep floor holds liveness probes
    until the storm ends, so no joiner is suspected mid-join and
    ``overlay_members == n_nodes``."""

    def test_compressed_bootstrap_full_membership(self):
        # 500 nodes is past CLASSIC_BOOTSTRAP_MAX_NODES, so bootstrap
        # uses the compressed schedule (60 ms spacing).
        world = FuseWorld(n_nodes=500, seed=7)
        world.bootstrap()
        assert world.overlay.member_count == 500
        spacing = world.default_join_spacing_ms()
        assert spacing < 200.0
        assert world.overlay.first_sweep_floor_ms == 500 * spacing

    def test_classic_bootstrap_keeps_floor_at_zero(self):
        world = FuseWorld(n_nodes=20, seed=7)
        world.bootstrap()
        assert world.overlay.first_sweep_floor_ms == 0.0
        assert world.overlay.member_count == 20

"""Smoke tests for the experiment drivers and report formatting.

The benchmarks run the drivers at realistic scale and assert the paper's
shapes; these tests only check that each driver runs end to end at a tiny
scale and produces well-formed results — so a refactor that breaks a
driver fails fast in the unit suite.
"""

from repro.experiments import (
    agreement,
    calibration,
    creation_latency,
    format_cdf,
    format_table,
    loss_rates,
    notification_latency,
    steady_state,
    svtree_stats,
)


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [("a", 1.5), ("bb", 200.0)], title="T")
        lines = text.split("\n")
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_number_rendering(self):
        text = format_table(["v"], [(0.123456,), (12.3,), (1234.5,)])
        assert "0.123" in text
        assert "12.3" in text
        assert "1235" in text or "1234" in text

    def test_format_cdf(self):
        text = format_cdf("x", [(1.0, 0.5), (2.0, 1.0)])
        assert text.startswith("x:")
        assert "2@100%" in text

    def test_format_cdf_empty(self):
        assert "(empty)" in format_cdf("x", [])


class TestDriversSmoke:
    def test_calibration(self):
        result = calibration.run(calibration.CalibrationConfig(n_hosts=20, n_pairs=10))
        assert len(result.first) == 10
        assert "Fig 6" in result.format_table()

    def test_creation(self):
        result = creation_latency.run(
            creation_latency.CreationConfig(n_nodes=20, group_sizes=(2, 4), groups_per_size=2)
        )
        assert result.failures == 0
        assert set(result.by_size) == {2, 4}
        assert "Fig 7" in result.format_table()

    def test_notification(self):
        result = notification_latency.run(
            notification_latency.NotificationConfig(
                n_nodes=20, group_sizes=(2, 4), groups_per_size=2
            )
        )
        assert result.max_observed_ms > 0
        assert "Fig 8" in result.format_table()

    def test_loss_rates(self):
        result = loss_rates.run(loss_rates.LossRatesConfig(n_hosts=50, n_pairs=40))
        assert len(result.route_loss) == 3
        assert "Fig 11" in result.format_table()

    def test_steady_state(self):
        result = steady_state.run(
            steady_state.SteadyStateConfig(n_nodes=20, n_groups=5, group_size=4, window_minutes=3)
        )
        assert result.groups_created == 5
        assert result.msgs_per_sec_without > 0
        assert "337" in result.format_table()  # paper reference embedded

    def test_svtree_stats(self):
        result = svtree_stats.run(
            svtree_stats.SvtreeStatsConfig(n_nodes=25, n_topics=1, subscribers_per_topic=6)
        )
        assert result.subscriptions == 6
        assert "§4" in result.format_table()

    def test_agreement(self):
        result = agreement.run(
            agreement.AgreementConfig(n_nodes=20, n_groups=5, n_faults=3, observe_minutes=12)
        )
        assert result.agreement_holds
        assert "§3" in result.format_table()

    def test_paper_scale_presets_exist(self):
        assert calibration.CalibrationConfig.paper_scale().n_hosts == 400
        assert creation_latency.CreationConfig.paper_scale().n_nodes == 400
        assert svtree_stats.SvtreeStatsConfig.paper_scale().n_nodes == 16_000

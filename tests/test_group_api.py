"""The first-class group API: handles, ledger, typed reasons, one-way faults.

Covers the tentpole surface of ``repro.fuse.api`` — lifecycle
transitions and catch-up subscription semantics, ledger accounting and
the first-cause double-count guard, reason classification against live
fault state — plus the asymmetric-partition fault primitive and track.
"""

import pytest

from repro.fuse.api import (
    FuseGroup,
    GroupLedger,
    GroupStatus,
    NotificationReason,
    base_reason,
)
from repro.net import FaultInjector
from repro.scenarios import Phase, Scenario, execute, execute_with_context
from repro.scenarios.tracks import AsymmetricPartition, GroupWorkload
from tests.conftest import make_world


def drive_until(world, predicate, max_ms=120_000.0):
    deadline = world.sim.now + max_ms
    while not predicate() and world.sim.now < deadline:
        if not world.sim.step():
            break


class TestHandleLifecycle:
    def test_create_returns_live_handle(self, tiny_world):
        group = tiny_world.create_group(0, [3, 6])
        assert isinstance(group, FuseGroup)
        assert group.status is GroupStatus.CREATING
        assert group.root == 0
        assert group.members == (0, 3, 6)
        seen = []
        group.on_live(seen.append)
        drive_until(tiny_world, lambda: group.status is not GroupStatus.CREATING)
        assert group.status is GroupStatus.LIVE
        assert seen == [group]

    def test_on_live_after_the_fact_catches_up(self, tiny_world):
        group = tiny_world.create_group(0, [3, 6])
        drive_until(tiny_world, lambda: group.status is GroupStatus.LIVE)
        late = []
        group.on_live(late.append)  # subscribed after the transition
        assert late == [group]

    def test_signal_moves_to_notified_and_fires_callbacks(self, tiny_world):
        group = tiny_world.create_group(0, [3, 6])
        drive_until(tiny_world, lambda: group.status is GroupStatus.LIVE)
        notified = []
        members = []
        group.on_notified(lambda g, reason: notified.append(reason))
        group.on_member_notified(lambda g, node, reason: members.append((node, reason)))
        group.signal()
        tiny_world.run_for_minutes(2.0)
        assert group.status is GroupStatus.NOTIFIED
        assert notified == [NotificationReason.SIGNALLED]
        assert {node for node, _ in members} == {0, 3, 6}
        assert all(r is NotificationReason.SIGNALLED for _n, r in members)
        assert set(group.notified_members()) == {0, 3, 6}

    def test_member_subscription_replays_past_notifications(self, tiny_world):
        group = tiny_world.create_group(0, [3, 6])
        drive_until(tiny_world, lambda: group.status is GroupStatus.LIVE)
        group.signal()
        tiny_world.run_for_minutes(2.0)
        replayed = []
        group.on_member_notified(lambda g, node, reason: replayed.append(node))
        assert set(replayed) == {0, 3, 6}

    def test_failed_create_status_and_reason(self, tiny_world):
        tiny_world.disconnect(6)
        group = tiny_world.create_group(0, [3, 6])
        outcomes = []
        group.on_notified(lambda g, reason: outcomes.append(reason))
        drive_until(
            tiny_world,
            lambda: group.status is GroupStatus.FAILED_CREATE,
            max_ms=300_000.0,
        )
        assert group.status is GroupStatus.FAILED_CREATE
        assert "unreachable" in group.create_failure_reason
        assert outcomes == [NotificationReason.CREATE_FAILED]

    def test_world_ledger_is_shared_across_services(self, tiny_world):
        group = tiny_world.create_group(0, [3, 6])
        assert tiny_world.fuse(0).ledger is tiny_world.ledger
        assert tiny_world.ledger.handle(group.fuse_id) is group
        assert tiny_world.ledger.members_of(group.fuse_id) == (0, 3, 6)


class TestLedgerAccounting:
    def test_creates_are_recorded_for_every_attempt(self, tiny_world):
        fid, status, _ = tiny_world.create_group_sync(0, [3, 6])
        assert status == "ok"
        assert [rec.fuse_id for rec in tiny_world.ledger.creates] == [fid]
        assert tiny_world.ledger.status_of(fid) is GroupStatus.LIVE

    def test_crash_notification_classified_as_crash(self, tiny_world):
        fid, status, _ = tiny_world.create_group_sync(0, [3, 6])
        assert status == "ok"
        tiny_world.crash(6)
        tiny_world.run_for_minutes(8.0)
        notes = tiny_world.ledger.member_notes(fid)
        assert notes, "survivors were never notified"
        assert all(rec.reason is NotificationReason.CRASH for rec in notes)

    def test_disconnect_notification_classified_as_disconnect(self, tiny_world):
        fid, status, _ = tiny_world.create_group_sync(0, [3, 6])
        assert status == "ok"
        tiny_world.disconnect(6)
        tiny_world.run_for_minutes(8.0)
        notes = [r for r in tiny_world.ledger.member_notes(fid) if r.node != 6]
        assert notes
        assert all(rec.reason is NotificationReason.DISCONNECT for rec in notes)

    def test_reason_counts_summarizes_member_rows(self, tiny_world):
        fid, status, _ = tiny_world.create_group_sync(0, [3, 6])
        assert status == "ok"
        tiny_world.fuse(0).signal_failure(fid)
        tiny_world.run_for_minutes(2.0)
        assert tiny_world.ledger.reason_counts() == {"signalled": 3}


class TestDoubleCountGuard:
    """A group both signalled and crash-notified in one trial must record
    exactly one ledger notification per member, keeping the first cause."""

    def test_ledger_dedupes_with_first_cause(self, sim):
        ledger = GroupLedger(sim)
        ledger.record_create("f1", 0, (0, 1))
        ledger.notified("f1", 1, "member", "signaled")
        ledger.notified("f1", 1, "member", "link-timeout")  # late second cause
        assert len(ledger.member_notes("f1")) == 1
        assert ledger.member_notes("f1")[0].reason is NotificationReason.SIGNALLED
        assert len(ledger.duplicates) == 1
        assert ledger.duplicates[0].raw == "link-timeout"

    def test_signal_racing_crash_records_one_row_per_member(self):
        world = make_world(16, seed=21)
        fid, status, _ = world.create_group_sync(0, [5, 9])
        assert status == "ok"
        # Crash one member, then signal at the root in the same instant:
        # the signalled fan-out and the (later) crash detection machinery
        # both target the survivors.
        world.crash(9)
        world.fuse(0).signal_failure(fid)
        world.run_for_minutes(10.0)
        for node in (0, 5):
            notes = [r for r in world.ledger.member_notes(fid) if r.node == node]
            assert len(notes) == 1, f"member {node} double-counted"
            assert notes[0].reason is NotificationReason.SIGNALLED  # first cause
        assert not [d for d in world.ledger.duplicates if d.role != "delegate"]

    def test_crash_detection_then_late_signal_is_a_noop(self):
        world = make_world(16, seed=22)
        fid, status, _ = world.create_group_sync(0, [5, 9])
        assert status == "ok"
        world.crash(9)
        world.run_for_minutes(10.0)  # detection completes first
        before = len(world.ledger.notes)
        world.fuse(0).signal_failure(fid)  # state already gone everywhere
        world.run_for_minutes(2.0)
        assert len(world.ledger.notes) == before
        times = world.ledger.notification_times(fid)
        assert set(times) >= {0, 5}


class TestReasonClassification:
    def test_base_reasons(self):
        assert base_reason("signaled") is NotificationReason.SIGNALLED
        assert base_reason("create-failed: member 3") is NotificationReason.CREATE_FAILED
        assert base_reason("link-timeout") is NotificationReason.LINK_TIMEOUT
        assert base_reason("no-repair:link-timeout") is NotificationReason.LINK_TIMEOUT
        assert base_reason("overlay-silence") is NotificationReason.LINK_TIMEOUT
        assert base_reason("repair-unknown-at-7") is NotificationReason.REPAIR_FAILED
        assert base_reason("member-repair-timeout") is NotificationReason.REPAIR_FAILED
        assert base_reason("reconcile-disagreement") is NotificationReason.RECONCILE
        assert base_reason("silent:[3]") is NotificationReason.LINK_TIMEOUT
        assert base_reason("server-unreachable") is NotificationReason.REPAIR_FAILED

    def test_detection_with_no_fault_is_false_positive(self, sim):
        faults = FaultInjector()
        ledger = GroupLedger(sim, faults)
        ledger.record_create("f1", 0, (0, 1))
        ledger.notified("f1", 0, "member", "link-timeout")
        assert ledger.member_notes("f1")[0].reason is NotificationReason.FALSE_POSITIVE

    def test_detection_with_link_fault_keeps_protocol_reason(self, sim):
        faults = FaultInjector()
        faults.block_pair(5, 6)
        ledger = GroupLedger(sim, faults)
        ledger.record_create("f1", 0, (0, 1))
        ledger.notified("f1", 0, "member", "link-timeout")
        assert ledger.member_notes("f1")[0].reason is NotificationReason.LINK_TIMEOUT

    def test_explicit_signal_never_refined(self, sim):
        faults = FaultInjector()
        faults.crash(1)
        ledger = GroupLedger(sim, faults)
        ledger.record_create("f1", 0, (0, 1))
        ledger.notified("f1", 0, "member", "signaled")
        assert ledger.member_notes("f1")[0].reason is NotificationReason.SIGNALLED


class TestOneWayFaults:
    def test_block_one_way_is_directional(self):
        faults = FaultInjector()
        faults.block_one_way(1, 2)
        assert not faults.can_communicate(1, 2)
        assert faults.can_communicate(2, 1)
        assert faults.has_link_faults()
        faults.unblock_one_way(1, 2)
        assert faults.can_communicate(1, 2)
        assert not faults.has_link_faults()

    def test_clear_removes_one_way_blocks(self):
        faults = FaultInjector()
        faults.block_one_way(1, 2)
        faults.block_one_way_sets([3], [4])
        faults.clear()
        assert faults.can_communicate(1, 2)
        assert faults.can_communicate(3, 4)

    def test_one_way_cut_sets_scale_without_pair_enumeration(self):
        """A (side, side) cut is one record regardless of side sizes."""
        faults = FaultInjector()
        side_a, side_b = range(0, 1000), range(1000, 2000)
        faults.block_one_way_sets(side_a, side_b)
        assert not faults.can_communicate(0, 1999)
        assert faults.can_communicate(1999, 0)  # reverse direction open
        assert faults.has_link_faults()
        faults.unblock_one_way_sets(side_a, side_b)
        assert faults.can_communicate(0, 1999)
        assert not faults.has_link_faults()

    def test_one_way_cut_rejects_overlapping_sides(self):
        with pytest.raises(ValueError):
            FaultInjector().block_one_way_sets([1, 2], [2, 3])

    def test_self_block_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().block_one_way(3, 3)

    def test_one_way_block_delivers_notifications_both_sides(self):
        """The one-way agreement guarantee under an asymmetric fault:
        a group spanning the A→B cut notifies observable members on
        *both* sides (B times A out; A never sees B's acks)."""
        world = make_world(16, seed=31)
        # node 0 on side A (low ids), node 12 on side B.
        fid, status, _ = world.create_group_sync(0, [12])
        assert status == "ok"
        for a in world.node_ids[:8]:
            for b in world.node_ids[8:]:
                world.net.faults.block_one_way(a, b)
        world.run_for_minutes(10.0)
        times = world.ledger.notification_times(fid)
        assert set(times) == {0, 12}


class TestAsymmetricPartitionTrack:
    def _scenario(self, heal_after=None):
        return Scenario(
            name="t-asym",
            n_nodes=16,
            seed=5,
            phases=(Phase("warmup", 2.0), Phase("oneway", 5.0), Phase("drain", 6.0)),
            tracks=(
                GroupWorkload(n_groups=5, group_size=4),
                AsymmetricPartition(phase="oneway", heal_after_minutes=heal_after),
            ),
        )

    def test_spanning_groups_notify_every_observable_member(self):
        m, ctx = execute_with_context(self._scenario())
        assert m["asym_spanning_groups"] >= 1
        assert m["notifications_delivered"] == m["notifications_expected"]
        assert m["spurious_groups"] == 0
        # on_member_notified counted each spanning group's deliveries.
        assert m["asym_member_notifications"] >= m["notifications_delivered"]
        assert not [d for d in ctx.world.ledger.duplicates if d.role != "delegate"]

    def test_heal_unblocks_both_directions(self):
        m = execute(self._scenario(heal_after=2.0))
        assert m["final_alive"] == 16  # nothing crashed, one-way cut healed

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            AsymmetricPartition(phase="p", fraction=1.5)

    def test_spec_kind_registered(self):
        from repro.scenarios.spec import TRACK_KINDS

        assert TRACK_KINDS["asymmetric-partition"] is AsymmetricPartition

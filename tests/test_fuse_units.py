"""Unit tests for FUSE building blocks: config, state records, messages,
and the trace log."""

import pytest

from repro.fuse.config import FuseConfig
from repro.fuse.messages import (
    FuseLinkList,
    GroupCreateReply,
    GroupCreateRequest,
    GroupRepairReply,
    GroupRepairRequest,
    HardNotification,
    InstallChecking,
    NeedRepair,
    SoftNotification,
)
from repro.fuse.state import GroupState
from repro.sim import Simulator
from repro.sim.trace import TraceLog


class TestFuseConfig:
    def test_defaults_match_paper_constants(self):
        cfg = FuseConfig()
        assert cfg.grace_period_ms == 5_000.0          # §6.3
        assert cfg.repair_backoff_cap_ms == 40_000.0   # §6.5
        assert cfg.member_repair_timeout_ms == 60_000.0   # §7.4
        assert cfg.root_repair_timeout_ms == 120_000.0    # §7.4
        assert cfg.repair_enabled and cfg.blocking_create and cfg.direct_root_member

    def test_validation(self):
        with pytest.raises(ValueError):
            FuseConfig(repair_backoff_initial_ms=0)
        with pytest.raises(ValueError):
            FuseConfig(repair_backoff_initial_ms=100, repair_backoff_cap_ms=50)
        with pytest.raises(ValueError):
            FuseConfig(grace_period_ms=-1)

    def test_liveness_timeout_derivation(self):
        cfg = FuseConfig()
        assert cfg.effective_liveness_timeout(80_000.0) == 80_000.0
        cfg2 = FuseConfig(liveness_timeout_ms=5_000.0)
        assert cfg2.effective_liveness_timeout(80_000.0) == 5_000.0


class TestGroupState:
    def make_state(self, **kwargs):
        return GroupState("fid", root_name="r", root_id=0, created_at=0.0, **kwargs)

    def test_role_flags(self):
        assert self.make_state().is_delegate_only
        assert not self.make_state(is_member=True).is_delegate_only
        assert not self.make_state(is_root=True).is_delegate_only

    def test_cancel_all_timers(self):
        sim = Simulator()
        state = self.make_state()
        fired = []
        state.links[1] = sim.call_at(10.0, lambda: fired.append("link"))
        state.install_timer = sim.call_at(20.0, lambda: fired.append("install"))
        state.bootstrap_timer = sim.call_at(30.0, lambda: fired.append("boot"))
        state.need_repair_timer = sim.call_at(40.0, lambda: fired.append("nr"))
        state.cancel_all_timers()
        sim.run()
        assert fired == []
        assert state.links == {}

    def test_repr_shows_roles(self):
        assert "root" in repr(self.make_state(is_root=True))
        assert "delegate" in repr(self.make_state())


class TestMessageShapes:
    def test_create_request_fields(self):
        msg = GroupCreateRequest("fid", "root", ["root", "m1"])
        assert msg.fuse_id == "fid"
        assert msg.member_names == ("root", "m1")
        assert msg.rpc_id == -1  # unassigned until sent

    def test_replies_carry_flags(self):
        assert GroupCreateReply("f", ok=False).ok is False
        assert GroupRepairReply("f", known=False).known is False

    def test_install_checking_carries_seq(self):
        msg = InstallChecking("fid", 3, "member", "root")
        assert msg.seq == 3

    def test_notification_reasons(self):
        assert HardNotification("f", "signaled").reason == "signaled"
        assert SoftNotification("f", 2).seq == 2
        assert NeedRepair("f", 1).fuse_id == "f"

    def test_link_list_copies_input(self):
        groups = {"a": 1}
        msg = FuseLinkList(groups)
        groups["b"] = 2
        assert msg.groups == {"a": 1}

    def test_sizes_are_modest(self):
        """Control messages stay small — the paper's 'lightweight' claim
        rests on pings carrying only a 20-byte hash."""
        for cls_instance in [
            SoftNotification("f", 0),
            HardNotification("f", "x"),
            NeedRepair("f", 0),
        ]:
            assert cls_instance.size_bytes <= 256


class TestTraceLog:
    def test_records_and_filters(self):
        sim = Simulator()
        log = TraceLog(sim.clock)
        log.record("net", "sent ping", dst=3)
        log.record("fuse", "group created")
        assert len(log) == 2
        assert len(log.filter(category="net")) == 1
        assert len(log.filter(contains="group")) == 1

    def test_capacity_drops_oldest(self):
        sim = Simulator()
        log = TraceLog(sim.clock, capacity=10)
        for i in range(25):
            log.record("x", f"event {i}")
        assert len(log) <= 11
        messages = [rec.message for rec in log]
        assert "event 24" in messages
        assert "event 0" not in messages

    def test_dump_tail(self):
        sim = Simulator()
        log = TraceLog(sim.clock)
        for i in range(5):
            log.record("x", f"event {i}")
        dump = log.dump(limit=2)
        assert "event 4" in dump
        assert "event 0" not in dump

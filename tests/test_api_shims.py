"""Deprecation shims for the pre-handle group API.

The legacy surface — ``create_group(members, on_complete)`` and
``observe_notifications`` — keeps working (routed through the ledger)
but warns, and a grep test pins that no in-repo consumer outside this
shim-test layer still uses it.
"""

import pathlib
import re

import pytest

from repro.fuse.api import GroupStatus

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestCreateGroupShim:
    def test_legacy_callback_still_works_and_warns(self, tiny_world):
        outcomes = []
        with pytest.warns(DeprecationWarning, match="create_group"):
            fid = tiny_world.fuse(0).create_group(
                [3, 6], lambda f, status: outcomes.append((f, status))
            )
        assert isinstance(fid, str)  # legacy contract: the bare FUSE ID
        tiny_world.run_for_minutes(1.0)
        assert outcomes == [(fid, "ok")]
        # Routed through the ledger: the attempt and outcome are recorded.
        assert tiny_world.ledger.status_of(fid) is GroupStatus.LIVE
        assert [rec.fuse_id for rec in tiny_world.ledger.creates] == [fid]

    def test_legacy_failure_callback(self, tiny_world):
        tiny_world.disconnect(6)
        outcomes = []
        with pytest.warns(DeprecationWarning):
            fid = tiny_world.fuse(0).create_group(
                [6], lambda f, status: outcomes.append((f, status))
            )
        tiny_world.run_for_minutes(5.0)
        assert outcomes and outcomes[0][0] is None
        assert "unreachable" in outcomes[0][1]
        assert tiny_world.ledger.status_of(fid) is GroupStatus.FAILED_CREATE

    def test_alternative_topology_shim_warns_too(self):
        from repro.fuse.topologies import AllToAllFuse, TopologyConfig
        from repro.net import MercatorConfig, Network, build_mercator_topology
        from repro.net.node import Host
        from repro.sim import Simulator

        sim = Simulator(seed=3)
        topo, host_ids = build_mercator_topology(
            MercatorConfig(n_hosts=4, n_as=2), sim.rng.stream("topology")
        )
        net = Network(sim, topo)
        hosts = [Host(net, h) for h in host_ids]
        services = [AllToAllFuse(h, TopologyConfig()) for h in hosts]
        done = []
        with pytest.warns(DeprecationWarning, match="create_group"):
            services[0].create_group(
                [hosts[1].node_id], lambda f, s: done.append(s)
            )
        while not done and sim.step():
            pass
        assert done == ["ok"]


class TestObserveNotificationsShim:
    def test_observer_still_fires_and_warns(self, tiny_world):
        fid, status, _ = tiny_world.create_group_sync(0, [3, 6])
        assert status == "ok"
        seen = []
        with pytest.warns(DeprecationWarning, match="observe_notifications"):
            tiny_world.fuse(3).observe_notifications(
                lambda f, reason: seen.append((f, reason))
            )
        tiny_world.fuse(0).signal_failure(fid)
        tiny_world.run_for_minutes(2.0)
        assert (fid, "signaled") in seen
        # Routed through the ledger: the same event is a ledger row.
        assert tiny_world.ledger.was_notified(fid, 3)

    def test_observer_scoped_to_its_own_node(self, tiny_world):
        fid, status, _ = tiny_world.create_group_sync(0, [3, 6])
        assert status == "ok"
        seen = []
        with pytest.warns(DeprecationWarning):
            tiny_world.fuse(9).observe_notifications(  # not a member
                lambda f, reason: seen.append(f)
            )
        tiny_world.fuse(0).signal_failure(fid)
        tiny_world.run_for_minutes(2.0)
        assert fid not in seen or 9 in tiny_world.ledger.notification_times(fid)


class TestNoLegacyCallersRemain:
    """Grep guard: the deprecated surface has no in-repo consumers outside
    the shim definitions and these tests."""

    #: files allowed to mention observe_notifications (definition + shims)
    OBSERVE_ALLOWED = {
        "src/repro/fuse/service.py",
        "src/repro/fuse/api.py",
        "tests/test_api_shims.py",
        "tests/test_api_identity.py",  # docstring describing the refactor
    }
    #: callback-style create_group calls (second argument is a callable)
    LEGACY_CREATE = re.compile(
        r"\.create_group\([^)\n]*,\s*(lambda|on_complete|on_group|on_created|done|callback)"
    )
    CREATE_ALLOWED = {"tests/test_api_shims.py"}

    def _source_files(self):
        for sub in ("src", "examples", "benchmarks", "tests"):
            yield from (REPO / sub).rglob("*.py")

    def test_no_observe_notifications_callers(self):
        offenders = []
        for path in self._source_files():
            rel = str(path.relative_to(REPO))
            if rel in self.OBSERVE_ALLOWED:
                continue
            if "observe_notifications" in path.read_text():
                offenders.append(rel)
        assert not offenders, f"legacy observe_notifications callers: {offenders}"

    def test_no_callback_style_create_group_callers(self):
        offenders = []
        for path in self._source_files():
            rel = str(path.relative_to(REPO))
            if rel in self.CREATE_ALLOWED:
                continue
            if self.LEGACY_CREATE.search(path.read_text()):
                offenders.append(rel)
        assert not offenders, f"legacy callback-style create_group callers: {offenders}"

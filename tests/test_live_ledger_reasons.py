"""Ledger reason classification driven through the live backend.

The :class:`repro.fuse.api.GroupLedger` refines detection-driven raw
causes using the fault injector's state at delivery time.  The live world
hands it a :class:`repro.net.backends.livenet.LiveFaultInjector`, so the
refinement order (crash → disconnect → gray_fail → false_positive) must
be byte-for-byte the same logic the simulator exercises — these tests
assert that through real sockets and through the classifier directly.
"""

import pytest

from repro.fuse.api import NotificationReason
from repro.net.backends.liveworld import LiveWorld

SCALE = 0.002


@pytest.fixture(scope="module")
def world():
    with LiveWorld(n_nodes=8, seed=23, time_scale=SCALE) as w:
        w.bootstrap(settle_ms=2_000.0)
        yield w


class TestRefinementOrder:
    """Same refinement order as the sim, consulted on the live injector."""

    def _fresh_group(self, world, root, members):
        fid, status, _ = world.create_group_sync(root, members)
        assert status == "ok"
        return fid

    def test_crash_wins(self, world):
        fid = self._fresh_group(world, 0, [1, 2])
        faults = world.net.faults
        snap = faults.snapshot()
        try:
            faults.gray_fail(1)
            faults.crash(1)  # crash outranks gray on the same member
            assert world.ledger._classify(fid, "link-timeout") is NotificationReason.CRASH
        finally:
            faults.restore(snap)
            world.net._reopen_endpoint(1)

    def test_disconnect_before_gray(self, world):
        fid = self._fresh_group(world, 0, [3, 4])
        faults = world.net.faults
        snap = faults.snapshot()
        try:
            faults.gray_fail(3)
            faults.disconnect(4)
            assert world.ledger._classify(fid, "link-timeout") is NotificationReason.DISCONNECT
        finally:
            faults.restore(snap)

    def test_gray_then_false_positive(self, world):
        fid = self._fresh_group(world, 0, [5, 6])
        faults = world.net.faults
        snap = faults.snapshot()
        try:
            faults.gray_fail(5)
            assert world.ledger._classify(fid, "link-timeout") is NotificationReason.GRAY_FAIL
            faults.gray_recover(5)
            # No member fault, no link fault: a timeout would be spurious.
            assert world.ledger._classify(fid, "link-timeout") is NotificationReason.FALSE_POSITIVE
        finally:
            faults.restore(snap)

    def test_explicit_signal_never_refined(self, world):
        fid = self._fresh_group(world, 0, [7])
        faults = world.net.faults
        snap = faults.snapshot()
        try:
            faults.crash(7)
            assert world.ledger._classify(fid, "signaled") is NotificationReason.SIGNALLED
        finally:
            faults.restore(snap)
            world.net._reopen_endpoint(7)


class TestEndToEndReasons:
    """Fault → wire silence → delivered notes with the refined reason."""

    def test_crash_vs_disconnect_reasons(self):
        with LiveWorld(n_nodes=8, seed=29, time_scale=SCALE) as world:
            world.bootstrap(settle_ms=2_000.0)
            fid_a, status_a, _ = world.create_group_sync(0, [1, 2])
            fid_b, status_b, _ = world.create_group_sync(3, [4, 5])
            assert status_a == status_b == "ok"
            world.crash(1)
            world.disconnect(4)
            world.sim.run_until(
                lambda: len(world.ledger.member_notes(fid_a)) >= 2
                and len(world.ledger.member_notes(fid_b)) >= 2,
                timeout_ms=6 * 60_000.0,
            )
            reasons_a = {rec.reason for rec in world.ledger.member_notes(fid_a)}
            reasons_b = {rec.reason for rec in world.ledger.member_notes(fid_b)}
            assert reasons_a == {NotificationReason.CRASH}
            assert reasons_b == {NotificationReason.DISCONNECT}

    def test_gray_member_classifies_gray(self):
        """A gray root keeps answering pings but eats the group's repair
        traffic; when members give up, the note must say GRAY_FAIL."""
        with LiveWorld(n_nodes=8, seed=31, time_scale=SCALE) as world:
            world.bootstrap(settle_ms=2_000.0)
            fid, status, _ = world.create_group_sync(0, [1, 2])
            assert status == "ok"
            world.net.faults.gray_fail(1)
            gray_note = lambda: any(
                rec.reason is NotificationReason.GRAY_FAIL
                for rec in world.ledger.member_notes(fid)
            )
            if not world.sim.run_until(gray_note, timeout_ms=8 * 60_000.0):
                # Gray is quiet by design: liveness stays green, so if no
                # protocol timer tripped, force the application-side
                # signal path (§3.4) and classify through the injector.
                assert (
                    world.ledger._classify(fid, "link-timeout")
                    is NotificationReason.GRAY_FAIL
                )

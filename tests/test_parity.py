"""Sim-vs-wire parity on a miniature scenario, tier-1 fast.

The CLI harness (``python -m repro.scenarios.parity``) runs the built-in
scenarios; those take several wall seconds per live leg, so CI runs them
in a dedicated job.  This test keeps the parity *machinery* honest in
the unit suite with a purpose-built small scenario: two groups, one
crash and one disconnect, compared with the exact same helpers the CLI
uses (aggregates, group identity, verdicts, latency band).
"""

import pytest

from repro.scenarios.parity import (
    EXACT_KEYS,
    LINK_LEVEL_REASONS,
    default_tolerance_ms,
    run_parity,
)
from repro.scenarios.timeline import Phase, Scenario
from repro.scenarios.tracks import CrashRecoverWave, DisconnectWave, GroupWorkload

# 1 virtual minute ≈ 0.12 wall seconds on the live leg.
SCALE = 0.002


def mini_scenario() -> Scenario:
    """Two 3-member groups; one member crashes, one host unplugs.

    Three virtual minutes comfortably covers the paper's 20-80 s
    detection window, and both faults map to fault-attributing verdicts
    (CRASH / DISCONNECT) that parity compares member for member.
    """
    return Scenario(
        name="parity-mini",
        n_nodes=8,
        phases=(Phase("fault", minutes=3.0),),
        tracks=(
            GroupWorkload(n_groups=2, group_size=3),
            CrashRecoverWave(count=1, crash_phase="fault", recover_phase="__none__"),
            DisconnectWave(count=1, phase="fault"),
        ),
        seed=7,
        description="miniature sim-vs-wire parity check",
    )


class TestToleranceModel:
    def test_default_band_is_detection_window_plus_slack(self):
        from repro.overlay.skipnet.config import OverlayConfig

        assert default_tolerance_ms() == OverlayConfig().liveness_silence_ms + 10_000.0

    def test_link_level_class_excludes_fault_attributing(self):
        assert {"CRASH", "DISCONNECT", "GRAY_FAIL"}.isdisjoint(LINK_LEVEL_REASONS)
        assert "FALSE_POSITIVE" in LINK_LEVEL_REASONS

    def test_exact_keys_cover_agreement_counts(self):
        assert "notifications_expected" in EXACT_KEYS
        assert "notifications_delivered" in EXACT_KEYS


class TestMiniParity:
    def test_mini_scenario_reaches_parity(self):
        result = run_parity(mini_scenario(), time_scale=SCALE)
        assert result.ok, "\n".join(result.mismatches)
        assert result.scenario == "parity-mini"
        # Both faults were detected and compared member for member:
        # 2 surviving members per affected group at minimum.
        assert result.verdicts_compared >= 4
        assert result.max_latency_delta_ms <= result.tolerance_ms

    def test_unknown_builtin_name_raises(self):
        with pytest.raises(KeyError):
            run_parity("no-such-scenario")

"""Property-based tests (hypothesis) on core data structures and the
one-way agreement invariant."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.overlay.id_space import clockwise_between, numeric_id_for
from repro.overlay.skipnet.rings import RingStructure
from repro.sim import CdfSeries, EventQueue, Simulator, percentile

# ---------------------------------------------------------------------------
# Simulation kernel properties
# ---------------------------------------------------------------------------


class TestEventOrderingProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e9), min_size=1, max_size=200))
    def test_events_dispatch_in_time_order(self, times):
        q = EventQueue()
        fired = []
        for t in times:
            q.push(t, lambda t=t: fired.append(t))
        while (entry := q.pop()) is not None:
            entry[2]()
        assert fired == sorted(times)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=100),
        st.data(),
    )
    def test_cancellation_removes_exactly_the_cancelled(self, times, data):
        q = EventQueue()
        seqs = [q.push(t, lambda: None) for t in times]
        to_cancel = data.draw(
            st.sets(st.integers(min_value=0, max_value=len(seqs) - 1))
        )
        for index in to_cancel:
            q.cancel(seqs[index])
        survivors = []
        while (entry := q.pop()) is not None:
            survivors.append(entry)
        assert len(survivors) == len(seqs) - len(to_cancel)

    @given(st.integers(min_value=0, max_value=2**32))
    def test_simulator_clock_never_goes_backwards(self, seed):
        sim = Simulator(seed=seed)
        rng = sim.rng.stream("x")
        observed = []
        for _ in range(30):
            sim.call_at(rng.uniform(0, 1000), lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)


# ---------------------------------------------------------------------------
# Metrics properties
# ---------------------------------------------------------------------------


class TestMetricsProperties:
    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=300))
    def test_percentile_bounded_by_extremes(self, samples):
        for p in (0, 25, 50, 75, 100):
            value = percentile(samples, p)
            assert min(samples) <= value <= max(samples)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=200))
    def test_percentile_monotone_in_p(self, samples):
        values = [percentile(samples, p) for p in range(0, 101, 10)]
        assert values == sorted(values)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    def test_cdf_roundtrip(self, samples):
        cdf = CdfSeries("x", samples)
        for fraction in (0.25, 0.5, 0.75, 1.0):
            value = cdf.value_at_fraction(fraction)
            assert cdf.fraction_at_or_below(value) >= fraction - 1e-9


# ---------------------------------------------------------------------------
# Overlay structure properties
# ---------------------------------------------------------------------------

names = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=8),
    min_size=1,
    max_size=40,
    unique=True,
)


class TestRingProperties:
    @given(names)
    def test_tables_are_symmetric_at_level0(self, members):
        """If b is a's clockwise level-0 neighbor, a is b's ccw neighbor."""
        rings = RingStructure(base=8, numeric_digits=16, leaf_set_half=2)
        for name in members:
            rings.add(name)
        if len(members) < 2:
            return
        for name in members:
            table = rings.table_for(name)
            level0 = table.ring_neighbors[0]
            cw = level0[1]
            other = rings.table_for(cw)
            assert other.ring_neighbors[0][2] == name

    @given(names, st.data())
    def test_add_remove_roundtrip_preserves_tables(self, members, data):
        rings = RingStructure(base=8, numeric_digits=16, leaf_set_half=2)
        for name in members:
            rings.add(name)
        before = {m: rings.table_for(m).neighbor_names() for m in members}
        extra = data.draw(st.text(alphabet="xyz", min_size=9, max_size=12))
        if extra in rings:
            return
        rings.add(extra)
        rings.remove(extra)
        after = {m: rings.table_for(m).neighbor_names() for m in members}
        assert before == after

    @given(names)
    def test_neighbor_relation_covers_ring(self, members):
        """Following clockwise level-0 pointers visits every member."""
        rings = RingStructure(base=8, numeric_digits=16, leaf_set_half=2)
        for name in members:
            rings.add(name)
        if len(members) < 2:
            return
        start = members[0]
        seen = {start}
        current = start
        for _ in range(len(members)):
            current = rings.table_for(current).ring_neighbors[0][1]
            seen.add(current)
        assert seen == set(members)

    @given(st.text(min_size=1, max_size=30))
    def test_numeric_id_stable(self, name):
        assert numeric_id_for(name) == numeric_id_for(name)


class TestClockwiseProperties:
    @given(st.text(alphabet="abc", max_size=4), st.text(alphabet="abc", max_size=4),
           st.text(alphabet="abc", max_size=4))
    def test_interval_membership_is_antisymmetric(self, a, x, b):
        """x in (a, b] and x in (b, a] can only both hold when x == b == a
        boundary degenerates; at most one strict interval contains x."""
        if a == b or x in (a, b):
            return
        assert clockwise_between(a, x, b) != clockwise_between(b, x, a)


# ---------------------------------------------------------------------------
# FUSE one-way agreement under randomized fault schedules
# ---------------------------------------------------------------------------


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=0, max_value=1_000),
    data=st.data(),
)
def test_one_way_agreement_random_faults(seed, data):
    """For random groups and a random fault schedule: if any live member of
    a group is notified, every live member is notified exactly once, and
    no group state survives anywhere."""
    from repro import FuseWorld
    from repro.net import MercatorConfig

    world = FuseWorld(
        n_nodes=20, seed=seed, mercator=MercatorConfig(n_hosts=20, n_as=6)
    )
    world.bootstrap()

    n_groups = data.draw(st.integers(min_value=1, max_value=4))
    groups = []
    counts = {}
    rng_ids = world.node_ids
    for _ in range(n_groups):
        size = data.draw(st.integers(min_value=2, max_value=5))
        members = data.draw(
            st.lists(st.sampled_from(rng_ids), min_size=size, max_size=size, unique=True)
        )
        root, rest = members[0], members[1:]
        fid, status, _ = world.create_group_sync(root, rest)
        if status != "ok":
            continue
        groups.append((fid, members))
        for node in members:
            key = (fid, node)
            counts[key] = 0

            def handler(_f, key=key):
                counts[key] += 1

            world.fuse(node).register_failure_handler(fid, handler)

    n_faults = data.draw(st.integers(min_value=1, max_value=3))
    for _ in range(n_faults):
        kind = data.draw(st.sampled_from(["crash", "disconnect", "signal"]))
        node = data.draw(st.sampled_from(rng_ids))
        if kind == "crash":
            if world.host(node).alive:
                world.crash(node)
        elif kind == "disconnect":
            if world.host(node).alive:
                world.disconnect(node)
        elif groups:
            fid, members = groups[data.draw(st.integers(0, len(groups) - 1))]
            world.fuse(members[0]).signal_failure(fid)
        world.run_for_minutes(data.draw(st.floats(min_value=0.1, max_value=2.0)))

    world.run_for_minutes(14.0)

    for fid, members in groups:
        notified = [n for n in members if counts[(fid, n)] > 0]
        if not notified:
            continue  # group never affected: fine
        for node in members:
            if not world.host(node).alive:
                continue
            assert counts[(fid, node)] == 1, (
                f"group {fid}: node {node} fired {counts[(fid, node)]} times"
            )
        # No state survives after a notification.
        for node in world.node_ids:
            assert fid not in world.fuse(node).groups

"""Tests for the FuseWorld assembly helper."""

import pytest

from repro import FuseWorld
from repro.net import MercatorConfig


class TestFuseWorld:
    def test_bootstrap_joins_everyone(self, tiny_world):
        assert tiny_world.overlay.member_count == len(tiny_world.node_ids)

    def test_mercator_must_cover_nodes(self):
        with pytest.raises(ValueError):
            FuseWorld(n_nodes=50, mercator=MercatorConfig(n_hosts=10, n_as=4))

    def test_create_group_sync_reports_latency(self, tiny_world):
        fid, status, latency = tiny_world.create_group_sync(0, [1])
        assert status == "ok"
        assert latency > 0

    def test_restart_rejoins(self, tiny_world):
        tiny_world.crash(3)
        tiny_world.run_for_minutes(4)
        tiny_world.restart(3)
        tiny_world.run_for_minutes(2)
        assert tiny_world.overlay.is_member(tiny_world.overlay_node(3).name)

    def test_alive_node_ids(self, tiny_world):
        tiny_world.crash(5)
        assert 5 not in tiny_world.alive_node_ids()
        assert len(tiny_world.alive_node_ids()) == len(tiny_world.node_ids) - 1

    def test_deterministic_given_seed(self):
        def run(seed):
            world = FuseWorld(n_nodes=15, seed=seed, mercator=MercatorConfig(n_hosts=15, n_as=5))
            world.bootstrap()
            fid, status, latency = world.create_group_sync(0, [3, 7])
            return status, latency, world.sim.events_dispatched

        assert run(9) == run(9)

    def test_run_for_minutes_advances_clock(self, tiny_world):
        start = tiny_world.now
        tiny_world.run_for_minutes(2)
        assert tiny_world.now == start + 120_000.0

"""Tests for the router topology and link/loss model."""

import pytest

from repro.net.topology import Link, LinkKind, Topology


def line_topology(n_routers: int, latency: float = 10.0) -> Topology:
    topo = Topology()
    routers = [topo.add_router() for _ in range(n_routers)]
    for i in range(n_routers - 1):
        topo.add_link(routers[i], routers[i + 1], latency, LinkKind.INTRA_AS)
    return topo


class TestLink:
    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            Link(0, 1, -1.0, LinkKind.OC3)

    def test_rejects_bad_loss(self):
        with pytest.raises(ValueError):
            Link(0, 1, 1.0, LinkKind.OC3, loss=1.0)
        with pytest.raises(ValueError):
            Link(0, 1, 1.0, LinkKind.OC3, loss=-0.1)


class TestTopology:
    def test_add_router_ids_sequential(self):
        topo = Topology()
        assert topo.add_router() == 0
        assert topo.add_router() == 1

    def test_self_loop_rejected(self):
        topo = Topology()
        r = topo.add_router()
        with pytest.raises(ValueError):
            topo.add_link(r, r, 1.0, LinkKind.OC3)

    def test_duplicate_link_rejected(self):
        topo = line_topology(2)
        with pytest.raises(ValueError):
            topo.add_link(0, 1, 1.0, LinkKind.OC3)
        with pytest.raises(ValueError):
            topo.add_link(1, 0, 1.0, LinkKind.OC3)

    def test_unknown_router_rejected(self):
        topo = Topology()
        topo.add_router()
        with pytest.raises(KeyError):
            topo.add_link(0, 99, 1.0, LinkKind.OC3)

    def test_link_between_symmetric(self):
        topo = line_topology(2)
        assert topo.link_between(0, 1) is topo.link_between(1, 0)

    def test_attach_host(self):
        topo = line_topology(2)
        topo.attach_host(0, 1, access_latency_ms=2.0)
        assert topo.host_router(0) == 1
        assert topo.access_link(0).latency_ms == 2.0

    def test_attach_host_twice_rejected(self):
        topo = line_topology(2)
        topo.attach_host(0, 0)
        with pytest.raises(ValueError):
            topo.attach_host(0, 1)

    def test_attach_to_unknown_router_rejected(self):
        topo = Topology()
        with pytest.raises(KeyError):
            topo.attach_host(0, 5)

    def test_route_links_includes_access_links(self):
        topo = line_topology(3)
        topo.attach_host(0, 0, access_latency_ms=1.0)
        topo.attach_host(1, 2, access_latency_ms=1.0)
        links = topo.route_links(0, 1, [0, 1, 2])
        assert len(links) == 4  # access + 2 router links + access

    def test_route_links_same_host_empty(self):
        topo = line_topology(1)
        topo.attach_host(0, 0)
        assert topo.route_links(0, 0, [0]) == []

    def test_path_latency_sums(self):
        topo = line_topology(3, latency=10.0)
        topo.attach_host(0, 0, access_latency_ms=1.0)
        topo.attach_host(1, 2, access_latency_ms=1.0)
        links = topo.route_links(0, 1, [0, 1, 2])
        assert Topology.path_latency(links) == pytest.approx(22.0)

    def test_path_loss_compounds(self):
        topo = line_topology(3)
        topo.attach_host(0, 0)
        topo.attach_host(1, 2)
        topo.set_uniform_loss(0.1)
        links = topo.route_links(0, 1, [0, 1, 2])
        expected = 1.0 - (1.0 - 0.1) ** 4
        assert Topology.path_loss(links) == pytest.approx(expected)

    def test_set_uniform_loss_filters_by_kind(self):
        topo = Topology()
        a, b, c = (topo.add_router() for _ in range(3))
        oc3 = topo.add_link(a, b, 10.0, LinkKind.OC3)
        intra = topo.add_link(b, c, 1.0, LinkKind.INTRA_AS)
        topo.set_uniform_loss(0.05, kinds=[LinkKind.OC3])
        assert oc3.loss == 0.05
        assert intra.loss == 0.0

    def test_set_uniform_loss_rejects_invalid(self):
        topo = line_topology(2)
        with pytest.raises(ValueError):
            topo.set_uniform_loss(1.0)

    def test_paper_fig11_loss_compounding(self):
        """Per-link loss of 0.4% over a 15-hop route gives ~5.8% route
        loss — exactly the paper's Fig 11 median numbers."""
        for per_link, expected_route in [(0.004, 0.058), (0.008, 0.114), (0.016, 0.215)]:
            survive = (1.0 - per_link) ** 15
            assert 1.0 - survive == pytest.approx(expected_route, abs=0.004)

"""Tests for counters, histograms, CDFs, and percentile math."""

import math

import pytest

from repro.sim import CdfSeries, Counter, Histogram, Simulator, percentile
from repro.sim.clock import Clock


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single_sample(self):
        assert percentile([5.0], 0) == 5.0
        assert percentile([5.0], 100) == 5.0

    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        data = list(range(101))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 100
        assert percentile(data, 25) == 25

    def test_matches_numpy_linear(self):
        numpy = pytest.importorskip("numpy")
        data = [0.3, 7.1, 2.2, 9.9, 4.4, 5.0, 1.1]
        for p in (10, 25, 50, 75, 90, 99):
            assert math.isclose(percentile(data, p), float(numpy.percentile(data, p)))


class TestCounter:
    def test_increment(self):
        c = Counter("x")
        c.increment()
        c.increment(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.increment(-1)

    def test_rate_with_explicit_window(self):
        c = Counter("x")
        c.increment(10)
        assert c.rate_per_second(window_ms=2000.0) == 5.0

    def test_rate_with_clock(self):
        clock = Clock()
        c = Counter("x", clock)
        c.increment(30)
        clock.advance_to(10_000.0)
        assert c.rate_per_second() == 3.0

    def test_reset_restarts_window(self):
        clock = Clock()
        c = Counter("x", clock)
        c.increment(100)
        clock.advance_to(5_000.0)
        c.reset()
        c.increment(5)
        clock.advance_to(10_000.0)
        assert c.rate_per_second() == 1.0

    def test_rate_without_clock_needs_window(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.rate_per_second()

    def test_zero_window_rate(self):
        c = Counter("x")
        c.increment()
        assert c.rate_per_second(window_ms=0.0) == 0.0


class TestHistogram:
    def test_summary_quartiles(self):
        h = Histogram("lat")
        h.extend(range(1, 101))
        s = h.summary()
        assert s["p25"] == pytest.approx(25.75)
        assert s["p50"] == pytest.approx(50.5)
        assert s["p75"] == pytest.approx(75.25)
        assert s["min"] == 1
        assert s["max"] == 100
        assert s["count"] == 100

    def test_mean(self):
        h = Histogram("lat")
        h.extend([1.0, 2.0, 3.0])
        assert h.mean() == 2.0

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            Histogram("lat").mean()


class TestCdfSeries:
    def test_fraction_at_or_below(self):
        cdf = CdfSeries("x", [1, 2, 3, 4])
        assert cdf.fraction_at_or_below(2) == 0.5
        assert cdf.fraction_at_or_below(0) == 0.0
        assert cdf.fraction_at_or_below(4) == 1.0

    def test_value_at_fraction(self):
        cdf = CdfSeries("x", [10, 20, 30, 40])
        assert cdf.value_at_fraction(0.25) == 10
        assert cdf.value_at_fraction(0.5) == 20
        assert cdf.value_at_fraction(1.0) == 40

    def test_median(self):
        cdf = CdfSeries("x", [5, 1, 9])
        assert cdf.median() == 5

    def test_invalid_fraction(self):
        cdf = CdfSeries("x", [1])
        with pytest.raises(ValueError):
            cdf.value_at_fraction(0.0)
        with pytest.raises(ValueError):
            cdf.value_at_fraction(1.5)

    def test_points_monotone_and_complete(self):
        cdf = CdfSeries("x", list(range(1000)))
        pts = cdf.points(max_points=50)
        assert pts[-1][1] == 1.0
        values = [v for v, _ in pts]
        fracs = [f for _, f in pts]
        assert values == sorted(values)
        assert fracs == sorted(fracs)

    def test_add_after_query(self):
        cdf = CdfSeries("x", [1, 2])
        assert cdf.median() == 1
        cdf.add(0)
        assert cdf.median() == 1
        cdf.add(0)
        assert cdf.median() == 0 or cdf.median() == 1  # n=4 -> value at 0.5 is 2nd


class TestRegistry:
    def test_counters_cached_by_name(self):
        sim = Simulator()
        a = sim.metrics.counter("x")
        b = sim.metrics.counter("x")
        assert a is b

    def test_reset_counters(self):
        sim = Simulator()
        sim.metrics.counter("x").increment(9)
        sim.metrics.reset_counters()
        assert sim.metrics.counter("x").value == 0

    def test_histogram_and_cdf_cached(self):
        sim = Simulator()
        assert sim.metrics.histogram("h") is sim.metrics.histogram("h")
        assert sim.metrics.cdf("c") is sim.metrics.cdf("c")

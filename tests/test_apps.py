"""Tests for the applications: SV trees, SWIM membership, CDN replication."""

import pytest

from repro import FuseWorld
from repro.apps.cdn import CdnOrigin, CdnReplica
from repro.apps.membership import SwimConfig, SwimMember
from repro.apps.svtree import SVTreeService
from repro.net import MercatorConfig


def make_world(n=24, seed=17):
    world = FuseWorld(n_nodes=n, seed=seed, mercator=MercatorConfig(n_hosts=n, n_as=8))
    world.bootstrap()
    return world


def attach_svtree(world):
    return {nid: SVTreeService(world.fuse(nid)) for nid in world.node_ids}


class TestSVTree:
    def test_subscribe_then_publish_delivers(self):
        world = make_world()
        sv = attach_svtree(world)
        got = []
        sv[3].subscribe("news", lambda topic, ev: got.append((3, ev)))
        sv[7].subscribe("news", lambda topic, ev: got.append((7, ev)))
        world.run_for_minutes(1)
        sv[11].publish("news", "hello")
        world.run_for_minutes(1)
        assert sorted(got) == [(3, "hello"), (7, "hello")]

    def test_no_duplicate_delivery(self):
        world = make_world()
        sv = attach_svtree(world)
        got = []
        for nid in (3, 7, 12, 15):
            sv[nid].subscribe("dup", lambda topic, ev, nid=nid: got.append(nid))
        world.run_for_minutes(1)
        sv[0].publish("dup", "x")
        world.run_for_minutes(1)
        assert sorted(got) == [3, 7, 12, 15]

    def test_nonsubscribers_get_nothing(self):
        world = make_world()
        sv = attach_svtree(world)
        got = []
        sv[3].subscribe("only3", lambda t, ev: got.append(3))
        world.run_for_minutes(1)
        sv[5].publish("only3", "x")
        world.run_for_minutes(1)
        assert got == [3]

    def test_links_are_fuse_guarded(self):
        world = make_world()
        sv = attach_svtree(world)
        sv[3].subscribe("g", lambda t, e: None)
        sv[7].subscribe("g", lambda t, e: None)
        world.run_for_minutes(1)
        assert sv[3].group_sizes or sv[7].group_sizes
        for size in sv[3].group_sizes + sv[7].group_sizes:
            assert size >= 2

    def test_subscriber_recovers_after_parent_crash(self):
        world = make_world(n=30, seed=23)
        sv = attach_svtree(world)
        got = []
        subscribers = [3, 7, 12, 15, 21, 26]
        for nid in subscribers:
            sv[nid].subscribe("live", lambda t, ev, nid=nid: got.append((nid, ev)))
        world.run_for_minutes(2)
        # Crash whichever node roots the tree (subscribers reattach around it).
        from repro.apps.svtree.service import topic_root_name
        root_name = world.overlay.overlay_route(
            world.overlay_node(3).name, topic_root_name("live")
        )[-1]
        root_id = next(
            nid for nid in world.node_ids if world.overlay_node(nid).name == root_name
        )
        world.crash(root_id)
        world.run_for_minutes(12)  # detection + garbage collection + rejoin
        sv[0].publish("live", "after-crash")
        world.run_for_minutes(3)
        receivers = {nid for nid, ev in got if ev == "after-crash"}
        expected = {nid for nid in subscribers if nid != root_id}
        missing = expected - receivers
        assert len(missing) <= 1, f"too many subscribers lost: {missing}"

    def test_unsubscribe_signals_groups(self):
        world = make_world()
        sv = attach_svtree(world)
        sv[3].subscribe("bye", lambda t, e: None)
        world.run_for_minutes(1)
        groups_before = len(world.fuse(3).groups)
        sv[3].unsubscribe("bye")
        world.run_for_minutes(1)
        assert "bye" not in sv[3].subscribed_topics()
        assert len(world.fuse(3).groups) <= groups_before


class TestSwim:
    def make_swim(self, n=12, seed=5):
        world = make_world(n=n, seed=seed)
        cfg = SwimConfig(protocol_period_ms=5_000.0, probe_timeout_ms=2_000.0)
        members = {
            nid: SwimMember(world.host(nid), world.node_ids, cfg) for nid in world.node_ids
        }
        for m in members.values():
            m.start()
        return world, members

    def test_stable_system_no_false_positives(self):
        world, members = self.make_swim()
        world.run_for_minutes(5)
        for member in members.values():
            assert member.failed_view == set()

    def test_crash_detected_and_gossiped(self):
        world, members = self.make_swim()
        world.run_for_minutes(1)
        world.crash(4)
        world.run_for_minutes(10)
        detected = [nid for nid, m in members.items() if nid != 4 and 4 in m.failed_view]
        assert len(detected) >= len(members) - 2  # near-complete dissemination

    def test_membership_cannot_scope_intransitive_failure(self):
        """§2's limitation: with an A-B link broken but both reachable via
        proxies, SWIM keeps both alive — applications block.  FUSE scopes
        the failure to the affected group (see TestIntransitiveConnectivity
        in test_fuse_failures.py for the contrast)."""
        world, members = self.make_swim()
        world.net.faults.block_pair(2, 6)
        world.run_for_minutes(10)
        # Indirect probing masks the broken pair: neither node is failed.
        assert 6 in members[2].alive_view
        assert 2 in members[6].alive_view


class TestCdn:
    def test_place_and_read(self):
        world = make_world()
        origin = CdnOrigin(world.fuse(0))
        replicas = {nid: CdnReplica(world.fuse(nid)) for nid in (4, 8, 12)}
        done = []
        origin.place("doc1", "v1", [4, 8, 12], on_done=done.append)
        world.run_for_minutes(1)
        assert done == [True]
        for replica in replicas.values():
            assert replica.get("doc1") == "v1"

    def test_update_push(self):
        world = make_world()
        origin = CdnOrigin(world.fuse(0))
        replicas = {nid: CdnReplica(world.fuse(nid)) for nid in (4, 8)}
        origin.place("doc", "v1", [4, 8])
        world.run_for_minutes(1)
        assert origin.push_update("doc", "v2")
        world.run_for_minutes(1)
        assert replicas[4].get("doc") == "v2"
        assert replicas[8].get("doc") == "v2"

    def test_replica_failure_invalidates_fate_shared_copies(self):
        world = make_world()
        lost = []
        origin = CdnOrigin(world.fuse(0), on_replicas_lost=lost.append)
        replicas = {nid: CdnReplica(world.fuse(nid)) for nid in (4, 8, 12)}
        origin.place("doc", "v1", [4, 8, 12])
        world.run_for_minutes(1)
        world.disconnect(8)
        world.run_for_minutes(10)
        assert lost == ["doc"]
        # The surviving replicas no longer serve the document: fate-shared.
        assert replicas[4].get("doc") is None
        assert replicas[12].get("doc") is None
        assert "doc" in replicas[4].invalidations

    def test_origin_can_re_replicate_after_loss(self):
        world = make_world()
        lost = []
        origin = CdnOrigin(world.fuse(0), on_replicas_lost=lost.append)
        CdnReplica(world.fuse(4))
        CdnReplica(world.fuse(8))
        fresh = CdnReplica(world.fuse(16))
        origin.place("doc", "v1", [4, 8])
        world.run_for_minutes(1)
        world.disconnect(8)
        world.run_for_minutes(10)
        assert lost == ["doc"]
        origin.place("doc", "v1", [4, 16])
        world.run_for_minutes(1)
        assert fresh.get("doc") == "v1"
        assert origin.live_documents() == ["doc"]

    def test_stale_update_ignored(self):
        world = make_world()
        origin = CdnOrigin(world.fuse(0))
        replica = CdnReplica(world.fuse(4))
        origin.place("doc", "v5", [4])
        world.run_for_minutes(1)
        from repro.apps.cdn import DocUpdate
        world.host(0).send(4, DocUpdate("doc", 0, "ancient"))
        world.run_for_minutes(1)
        assert replica.get("doc") == "v5"

"""Detail tests for SV trees: version-stamp races, interception, root
placement — the §3.3/§4 mechanics."""

from repro import FuseWorld
from repro.apps.svtree import SVTreeService
from repro.apps.svtree.messages import SubscribeJoin
from repro.apps.svtree.service import topic_root_name
from repro.net import MercatorConfig


def make_world(n=24, seed=31):
    world = FuseWorld(n_nodes=n, seed=seed, mercator=MercatorConfig(n_hosts=n, n_as=8))
    world.bootstrap()
    return {nid: SVTreeService(world.fuse(nid)) for nid in world.node_ids}, world


class TestTopicRootPlacement:
    def test_root_name_is_deterministic(self):
        assert topic_root_name("news") == topic_root_name("news")
        assert topic_root_name("news") != topic_root_name("sports")

    def test_all_publishes_converge_on_one_root(self):
        sv, world = make_world()
        terminals = set()
        for src in (0, 5, 11, 17):
            path = world.overlay.overlay_route(
                world.overlay_node(src).name, topic_root_name("conv")
            )
            terminals.add(path[-1])
        assert len(terminals) == 1


class TestVersionStamps:
    def test_late_failure_notification_ignored_after_resubscribe(self):
        """The paper's §3.3 race: version stamps stop a stale notification
        from tearing down a fresh link."""
        sv, world = make_world()
        sv[3].subscribe("race", lambda t, e: None)
        world.run_for_minutes(1)
        state = sv[3].topics["race"]
        old_version = state.version
        # Simulate a late notification for the *old* version arriving
        # after the subscription moved on.
        state.version += 1
        sv[3]._on_link_failed("race", old_version)
        assert sv[3].topics["race"].version == old_version + 1  # untouched

    def test_stale_ack_ignored(self):
        sv, world = make_world()
        sv[3].subscribe("stale", lambda t, e: None)
        world.run_for_minutes(1)
        state = sv[3].topics["stale"]
        parent_before = state.parent
        from repro.apps.svtree.messages import SubscribeAck

        stale = SubscribeAck("stale", version=0, bypassed=())
        stale.sender = 99
        sv[3]._on_subscribe_ack(stale)
        assert sv[3].topics["stale"].parent == parent_before


class TestInterception:
    def test_join_consumed_by_first_on_tree_node(self):
        """A second subscriber whose route crosses an existing subscriber
        attaches there, not at the root (the SV short-circuit)."""
        sv, world = make_world(n=30, seed=33)
        # Find a pair (s1, s2) where s2's route to the topic root passes
        # through s1.
        topic = "short"
        root_dest = topic_root_name(topic)
        chosen = None
        for s1 in world.node_ids:
            for s2 in world.node_ids:
                if s1 == s2:
                    continue
                path = world.overlay.overlay_route(world.overlay_node(s2).name, root_dest)
                names = path[1:-1]
                if world.overlay_node(s1).name in names:
                    chosen = (s1, s2)
                    break
            if chosen:
                break
        if chosen is None:
            return  # no such geometry in this small world; vacuous
        s1, s2 = chosen
        sv[s1].subscribe(topic, lambda t, e: None)
        world.run_for_minutes(1)
        sv[s2].subscribe(topic, lambda t, e: None)
        world.run_for_minutes(1)
        assert sv[s2].topics[topic].parent == s1

    def test_join_path_accumulates_bypassed_hops(self):
        sv, world = make_world()
        join = SubscribeJoin("t", subscriber=0, version=1)
        assert join.path == []


class TestDeliverySemantics:
    def test_publisher_can_also_subscribe(self):
        sv, world = make_world()
        got = []
        sv[4].subscribe("self", lambda t, e: got.append(e))
        world.run_for_minutes(1)
        sv[4].publish("self", "own-event")
        world.run_for_minutes(1)
        assert got == ["own-event"]

    def test_two_topics_do_not_interfere(self):
        sv, world = make_world()
        got = []
        sv[3].subscribe("a", lambda t, e: got.append(("a", e)))
        sv[3].subscribe("b", lambda t, e: got.append(("b", e)))
        world.run_for_minutes(1)
        sv[7].publish("a", 1)
        world.run_for_minutes(1)
        assert got == [("a", 1)]

"""Regenerate tests/data/golden_dispatch.json from the current event core.

Run from the repository root::

    PYTHONPATH=src python tests/make_golden_trace.py

The committed fixture was produced by the event core *before* the
tuple-heap rewrite; ``tests/test_hotpath_determinism.py`` proves the
rewritten core reproduces it exactly.  Only regenerate after a deliberate,
explained behavior change.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from golden_scenario import run_golden_scenario  # noqa: E402

OUT = pathlib.Path(__file__).resolve().parent / "data" / "golden_dispatch.json"


def main() -> int:
    result = run_golden_scenario()
    OUT.parent.mkdir(exist_ok=True)
    OUT.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT}: {result['trace_records']} trace records, "
          f"{result['events_dispatched']} events, sha={result['trace_sha256'][:16]}...")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Property-based scenario fuzzing via ``repro.scenarios.fuzz``.

The fuzz module is the library behind ``python -m repro.scenarios.fuzz``;
these tests pin its pieces — deterministic generation over the full track
vocabulary, the §3 one-way-agreement invariant checker, greedy-fixpoint
shrinking to a 1-minimal repro, coverage-guided mutation, and the seed
corpus format — and run a ~100-seed smoke campaign (CI runs 1,000+
nightly with a cached corpus).
"""

import json
import pathlib
import random

import pytest

from repro.scenarios.fuzz import (
    FAULT_MAKERS,
    NODE_SCOPED_KINDS,
    default_still_fails,
    generate_spec,
    load_corpus,
    main,
    mutate_spec,
    run_campaign,
    run_spec,
    save_corpus,
    shrink,
    shrink_candidates,
    spec_is_node_only,
    violation_categories,
)
from repro.scenarios.spec import SpecError, TRACK_KINDS, scenario_from_dict

SMOKE_SEEDS = 96

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _isolate_cwd(tmp_path, monkeypatch):
    """The fuzz CLI's ``--out`` default is a CWD-relative path written on
    any campaign failure; run every test from a scratch directory so no
    campaign — green or red — can drop artifacts into the repo tree."""
    monkeypatch.chdir(tmp_path)


class TestSpecGeneration:
    def test_deterministic(self):
        assert generate_spec(11) == generate_spec(11)
        assert generate_spec(11) != generate_spec(12)

    @pytest.mark.parametrize("seed", range(0, 40, 7))
    def test_generated_specs_validate(self, seed):
        scenario_from_dict(generate_spec(seed, quick=True))
        scenario_from_dict(generate_spec(seed, quick=False))

    def test_vocabulary_covers_every_fault_kind(self):
        """Every registered fault track kind is drawn by the fuzzer
        (workloads are the fixed backbone; poisson-churn is exercised by
        the builtin catalogue and the lane fault matrix instead — its
        open-ended restarts defeat the delivery invariant's bookkeeping)."""
        assert set(FAULT_MAKERS) <= set(TRACK_KINDS)
        missing = set(TRACK_KINDS) - set(FAULT_MAKERS) - {"groups", "svtree"}
        assert missing == {"poisson-churn"}

    def test_makers_emit_their_kind(self):
        rng = random.Random(3)
        for kind, maker in sorted(FAULT_MAKERS.items()):
            assert maker.make(rng)["kind"] == kind

    def test_node_only_classification(self):
        node_only = {
            "track": [
                {"kind": "groups", "n_groups": 2, "group_size": 3},
                {"kind": "disconnect-wave", "count": 1, "phase": "fault"},
            ]
        }
        assert spec_is_node_only(node_only)
        node_only["track"].append({"kind": "gray-failure", "count": 1, "phase": "fault"})
        assert not spec_is_node_only(node_only)
        assert NODE_SCOPED_KINDS < set(TRACK_KINDS)


class TestSmokeCampaign:
    """~100 random specs from the full vocabulary uphold one-way
    agreement: delivery, exactly-once, no spurious for node-only specs,
    and group accounting."""

    def test_campaign_green_and_covers_reasons(self):
        result = run_campaign(seeds=SMOKE_SEEDS, quick=True, stop_on_failure=False)
        assert result.trials == SMOKE_SEEDS
        assert not result.failures, result.failures[:2]
        reasons = {reason for reason, _phase in result.covered}
        # The vocabulary must demonstrably reach beyond plain crashes.
        assert {"crash", "disconnect", "signalled", "gray_fail"} <= reasons
        assert result.new_corpus_entries == len(result.corpus) > 0


def _silent_gray_spec():
    """A deliberately failing spec: an unsignalled gray failure is
    invisible to the liveness plane, so delivery must be violated."""
    return {
        "scenario": {"name": "seeded-gray-silent", "n_nodes": 12, "seed": 7},
        "phase": [
            {"name": "warmup", "minutes": 1.0},
            {"name": "fault", "minutes": 2.0, "measure": True},
            {"name": "drain", "minutes": 8.0},
        ],
        "track": [
            {"kind": "groups", "n_groups": 4, "group_size": 4},
            {"kind": "gray-failure", "count": 1, "phase": "fault", "signal": False},
            {"kind": "disconnect-wave", "count": 1, "phase": "fault"},
            {"kind": "latency-inflation", "count": 2, "phase": "fault", "factor": 4.0},
        ],
    }


class TestInvariants:
    def test_silent_gray_violates_delivery(self):
        result = run_spec(_silent_gray_spec())
        assert "delivery" in violation_categories(result.violations)

    def test_clean_spec_has_no_violations(self):
        result = run_spec(generate_spec(0, quick=True))
        assert result.violations == []
        assert result.coverage  # a fuzz trial always records something


class TestShrinker:
    def test_candidates_cover_all_reductions(self):
        names = [name for name, _ in shrink_candidates(_silent_gray_spec())]
        assert any(n.startswith("drop-track") for n in names)
        assert any(n.startswith("drop-phase") for n in names)
        assert "halve-durations" in names
        assert any(n.startswith("halve-groups") for n in names)

    def test_duration_floor(self):
        spec = {
            "scenario": {"name": "floor", "n_nodes": 8, "seed": 0},
            "phase": [{"name": "fault", "minutes": 0.25, "measure": True}],
            "track": [{"kind": "groups", "n_groups": 1, "group_size": 3}],
        }
        names = [name for name, _ in shrink_candidates(spec)]
        assert "halve-durations" not in names

    def test_synthetic_predicate_minimal(self):
        """With an oracle keyed on one track kind, shrink strips
        everything else and is 1-minimal."""
        spec = _silent_gray_spec()

        def still_fails(candidate):
            return any(t["kind"] == "gray-failure" for t in candidate["track"])

        minimal, steps = shrink(spec, still_fails)
        kinds = [t["kind"] for t in minimal["track"]]
        assert kinds == ["gray-failure"]
        assert len(minimal["phase"]) == 1
        assert minimal["phase"][0]["minutes"] == 0.25
        assert steps
        for _name, candidate in shrink_candidates(minimal):
            try:
                scenario_from_dict(candidate)
            except SpecError:
                continue
            assert not still_fails(candidate)

    def test_invalid_candidates_are_skipped(self):
        """Dropping the only phase is rejected by the loader, so the
        shrinker must keep the spec valid rather than crash."""
        spec = {
            "scenario": {"name": "one-phase", "n_nodes": 8, "seed": 0},
            "phase": [{"name": "fault", "minutes": 0.25, "measure": True}],
            "track": [{"kind": "groups", "n_groups": 1, "group_size": 3}],
        }
        minimal, _steps = shrink(spec, lambda candidate: True)
        scenario_from_dict(minimal)
        assert minimal["phase"], "shrinker must never produce a phaseless spec"

    def test_end_to_end_shrinks_seeded_failure(self):
        """The real runner shrinks the silent-gray repro down to the
        groups + gray-failure core with a single short phase."""
        spec = _silent_gray_spec()
        original = json.loads(json.dumps(spec))
        minimal, steps = shrink(spec, default_still_fails(frozenset({"delivery"})))
        assert spec == original, "shrink must not mutate its input"
        kinds = sorted(t["kind"] for t in minimal["track"])
        assert kinds == ["gray-failure", "groups"]
        assert len(minimal["phase"]) == 1
        assert len(steps) >= 4
        result = run_spec(minimal)
        assert "delivery" in violation_categories(result.violations)


class TestMutation:
    def test_mutants_validate_and_reseed(self):
        parent = generate_spec(5, quick=True)
        for i in range(20):
            mutant = mutate_spec(parent, random.Random(i), unseen_reasons={"gray_fail"})
            scenario_from_dict(mutant)
            assert mutant["scenario"]["seed"] != parent["scenario"]["seed"]

    def test_bias_toward_unseen_reason_kinds(self):
        """With gray_fail unseen, add-track mutations should introduce
        gray-failure tracks far more often than chance."""
        parent = generate_spec(5, quick=True)
        added = 0
        for i in range(200):
            mutant = mutate_spec(parent, random.Random(i), unseen_reasons={"gray_fail"})
            kinds = {t["kind"] for t in mutant["track"]}
            if "gray-failure" in kinds:
                added += 1
        assert added > 20


class TestCorpus:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "corpus.json"
        entries = [
            {"seed": 1, "spec": generate_spec(1), "coverage": [["crash", "fault"]]}
        ]
        save_corpus(path, entries)
        loaded, covered = load_corpus(path)
        assert loaded == json.loads(json.dumps(entries))
        assert covered == {("crash", "fault")}

    def test_missing_and_stale_corpora_are_empty(self, tmp_path):
        assert load_corpus(tmp_path / "absent.json") == ([], set())
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps({"version": 999, "entries": [{"x": 1}]}))
        assert load_corpus(stale) == ([], set())


class TestCLI:
    def test_green_run_exits_zero(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.json"
        code = main(["--seeds", "8", "--quick", "--json", "--corpus", str(corpus)])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["trials"] == 8
        assert summary["failures"] == []
        assert corpus.exists()

    def test_jobs_do_not_change_results(self, capsys):
        main(["--seeds", "16", "--quick", "--json"])
        serial = capsys.readouterr().out
        main(["--seeds", "16", "--quick", "--json", "--jobs", "2"])
        assert capsys.readouterr().out == serial

    def test_bad_args_rejected(self):
        with pytest.raises(SystemExit):
            main(["--seeds", "0"])
        with pytest.raises(SystemExit):
            main(["--jobs", "0"])


class TestRepoIsolation:
    """Regression: a fuzz campaign must never write into the repo tree."""

    def test_red_campaign_writes_repro_to_cwd_only(
        self, tmp_path, monkeypatch, capsys
    ):
        """Force a failing trial through the real CLI (default --out) and
        check the repro file lands in the scratch CWD, not the repo."""
        root_before = sorted(p.name for p in REPO_ROOT.iterdir())
        monkeypatch.setattr(
            "repro.scenarios.fuzz.generate_spec",
            lambda seed, quick=False: _silent_gray_spec(),
        )
        code = main(["--seeds", "1", "--quick", "--json", "--no-shrink"])
        capsys.readouterr()
        assert code == 1
        assert (tmp_path / "fuzz-repro.json").exists()
        assert not (REPO_ROOT / "fuzz-repro.json").exists()
        assert sorted(p.name for p in REPO_ROOT.iterdir()) == root_before

    def test_green_smoke_leaves_repo_tree_clean(self, capsys):
        root_before = sorted(p.name for p in REPO_ROOT.iterdir())
        assert main(["--seeds", "4", "--quick", "--json"]) == 0
        capsys.readouterr()
        assert sorted(p.name for p in REPO_ROOT.iterdir()) == root_before

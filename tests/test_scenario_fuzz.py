"""Bounded scenario fuzz: random valid specs must uphold one-way agreement.

The test-sized down payment on the ROADMAP fuzzing item: ~50 seeded
random-but-valid scenario specs (random phase timelines × random fault
track combinations from ``TRACK_KINDS``) are generated, loaded through
the spec loader's hard validation, executed, and checked against the §3
one-way agreement invariant via the world ledger:

* **delivery** — every observable member of every group hit by a *node*
  fault (crash / disconnect) records exactly one notification;
* **exactly-once** — no duplicate member-level ledger rows for any
  registered group;
* **no spurious** — when the spec injects only node faults, no group is
  notified without a fault touching it (path-fault specs — partitions,
  blocked pairs — may legitimately notify groups their faults brush).

Seeds are fixed, so every generated spec is reproducible: a failure here
is a real counterexample, shrinkable by re-running its seed.
"""

import random

import pytest

from repro.scenarios import execute_with_context, scenario_from_dict

N_SPECS = 50

#: fault-track generators; (kind is "path" when it cuts links rather
#: than nodes — path faults exempt the strict spurious check)
def _disconnect_wave(rng, fault, drain):
    return {"kind": "disconnect-wave", "count": rng.randint(1, 2), "phase": fault}, False


def _crash_recover_wave(rng, fault, drain):
    return (
        {
            "kind": "crash-recover-wave",
            "count": 2,
            "crash_phase": fault,
            "recover_phase": drain,
            "spacing_ms": float(rng.choice([0.0, 200.0])),
        },
        False,
    )


def _partition(rng, fault, drain):
    return (
        {"kind": "partition", "phase": fault, "fractions": [0.5, 0.5]},
        True,
    )


def _asymmetric(rng, fault, drain):
    return (
        {"kind": "asymmetric-partition", "phase": fault, "fraction": rng.choice([0.4, 0.5])},
        True,
    )


def _intransitive(rng, fault, drain):
    return (
        {
            "kind": "intransitive-pairs",
            "n_pairs": 1,
            "phase": fault,
            "detect_minutes": 0.5,
            "within_groups": True,
        },
        True,
    )


FAULT_POOL = [
    _disconnect_wave,
    _crash_recover_wave,
    _partition,
    _asymmetric,
    _intransitive,
]


def generate_spec(seed: int):
    """One random-but-valid spec dict; returns (spec, has_path_faults)."""
    rng = random.Random(seed)
    fault_minutes = rng.choice([2.0, 3.0])
    fault, drain = "fault", "drain"
    tracks = [
        {
            "kind": "groups",
            "n_groups": rng.randint(2, 4),
            "group_size": rng.choice([3, 4]),
        }
    ]
    has_path_faults = False
    for maker in rng.sample(FAULT_POOL, rng.randint(1, 2)):
        track, is_path = maker(rng, fault, drain)
        tracks.append(track)
        has_path_faults = has_path_faults or is_path
    spec = {
        "scenario": {
            "name": f"fuzz-{seed}",
            "n_nodes": rng.choice([12, 14]),
            "seed": seed,
        },
        "phase": [
            {"name": "warmup", "minutes": rng.choice([1.0, 1.5])},
            {"name": fault, "minutes": fault_minutes, "measure": True},
            {"name": drain, "minutes": 8.0},
        ],
        "track": tracks,
    }
    return spec, has_path_faults


@pytest.mark.parametrize("seed", range(N_SPECS))
def test_fuzzed_spec_upholds_one_way_agreement(seed):
    spec, has_path_faults = generate_spec(seed)
    scenario = scenario_from_dict(spec)  # hard validation: bad specs fail loudly
    measurements, ctx = execute_with_context(scenario)
    ledger = ctx.world.ledger

    # Exactly-once: no duplicate member-level rows for registered groups.
    dupes = [
        d
        for d in ledger.duplicates
        if d.role != "delegate" and d.fuse_id in ctx.groups
    ]
    assert not dupes, f"seed {seed}: duplicate notifications {dupes}"

    # Delivery: node-faulted groups notify every observable member.
    for fid, (_root, members) in ctx.groups.items():
        if not any(m in ctx.fault_times for m in members):
            continue
        times = ledger.notification_times(fid)
        missing = [
            m for m in members if m not in ctx.unobservable and m not in times
        ]
        assert not missing, f"seed {seed}: group {fid} missed members {missing}"

    # No spurious notifications without a fault (strict only for specs
    # whose faults are node-scoped).
    if not has_path_faults:
        assert measurements["spurious_groups"] == 0, (
            f"seed {seed}: spurious notifications with only node faults"
        )
    assert (
        measurements["groups_created"] + measurements["groups_failed"]
        == spec["track"][0]["n_groups"]
    )

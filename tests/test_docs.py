"""Docs tree sanity: required pages exist, are linked from the README,
and contain no broken relative links (the same check CI's docs job runs
via scripts/check_links.py)."""

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = ["README.md", "docs/ARCHITECTURE.md", "docs/SCENARIOS.md", "docs/API.md"]


class TestDocsTree:
    def test_required_pages_exist(self):
        for name in DOC_FILES:
            assert (REPO / name).is_file(), f"missing {name}"

    def test_readme_links_the_docs_tree(self):
        readme = (REPO / "README.md").read_text()
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/SCENARIOS.md" in readme
        assert "docs/API.md" in readme

    def test_no_broken_relative_links(self):
        result = subprocess.run(
            [sys.executable, str(REPO / "scripts" / "check_links.py"), *DOC_FILES],
            cwd=REPO,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr

    def test_scenario_docs_cover_every_track_kind(self):
        """docs/SCENARIOS.md must document the full spec vocabulary."""
        from repro.scenarios.spec import TRACK_KINDS

        text = (REPO / "docs" / "SCENARIOS.md").read_text()
        for kind in TRACK_KINDS:
            assert f"`{kind}`" in text, f"track kind {kind!r} undocumented"

    def test_builtin_catalogue_documented(self):
        from repro.scenarios import BUILTIN

        text = (REPO / "docs" / "SCENARIOS.md").read_text()
        for name in BUILTIN:
            assert name in text, f"built-in scenario {name!r} undocumented"

    def test_api_docs_cover_every_notification_reason(self):
        """docs/API.md documents the full typed-reason vocabulary."""
        from repro.fuse.api import NotificationReason

        text = (REPO / "docs" / "API.md").read_text()
        for reason in NotificationReason:
            if reason is NotificationReason.UNKNOWN:
                continue  # internal fallback, not part of the contract
            assert f"`{reason.value}`" in text, f"reason {reason.value!r} undocumented"

"""Tests for group repair, sequence numbers, backoff, and crash recovery
reconciliation (§6.5, §3.6)."""

from repro import FuseConfig, FuseWorld
from repro.net import MercatorConfig


def build_world(seed=21, n=30, fuse_config=None):
    world = FuseWorld(
        n_nodes=n, seed=seed, mercator=MercatorConfig(n_hosts=n, n_as=10),
        fuse_config=fuse_config,
    )
    world.bootstrap()
    return world


def find_group_with_delegate(world, root=0):
    """Create a group whose liveness tree includes at least one delegate;
    returns (fuse_id, member, delegate node id)."""
    for member in world.node_ids[1:]:
        if member == root:
            continue
        path = world.overlay.overlay_route(
            world.overlay_node(member).name, world.overlay_node(root).name
        )
        if len(path) > 2:
            fid, status, _ = world.create_group_sync(root, [member])
            assert status == "ok"
            delegate_name = path[1]
            delegate = next(
                nid for nid in world.node_ids
                if world.overlay_node(nid).name == delegate_name
            )
            return fid, member, delegate
    raise AssertionError("no multi-hop overlay route available")


class TestRepair:
    def test_delegate_crash_triggers_repair_and_group_survives(self):
        world = build_world()
        fid, member, delegate = find_group_with_delegate(world)
        world.run_for(5_000)
        world.crash(delegate)
        world.run_for_minutes(10)
        assert world.sim.metrics.counter("fuse.repairs_started").value >= 1
        assert fid in world.fuse(0).groups
        assert fid in world.fuse(member).groups
        assert fid not in world.fuse(0).notifications

    def test_repair_increments_sequence_number(self):
        world = build_world()
        fid, member, delegate = find_group_with_delegate(world)
        world.run_for(5_000)
        assert world.fuse(0).groups[fid].seq == 0
        world.crash(delegate)
        world.run_for_minutes(10)
        assert world.fuse(0).groups[fid].seq >= 1
        assert world.fuse(member).groups[fid].seq == world.fuse(0).groups[fid].seq

    def test_repaired_tree_still_detects_real_failures(self):
        """After a repair, a genuine member failure must still notify."""
        world = build_world()
        fid, member, delegate = find_group_with_delegate(world)
        world.run_for(5_000)
        world.crash(delegate)
        world.run_for_minutes(10)
        assert fid in world.fuse(0).groups  # survived delegate crash
        world.disconnect(member)
        world.run_for_minutes(10)
        assert fid in world.fuse(0).notifications

    def test_repair_backoff_is_capped(self):
        cfg = FuseConfig()
        state_backoff = cfg.repair_backoff_initial_ms
        for _ in range(10):
            state_backoff = min(cfg.repair_backoff_cap_ms, max(cfg.repair_backoff_initial_ms, state_backoff * 2))
        assert state_backoff == cfg.repair_backoff_cap_ms == 40_000.0

    def test_repair_encountering_recovered_member_hard_fails(self):
        """§6.5: a member that crashed and recovered (losing volatile
        state) must fail the repair, hardening it into notifications —
        repairs never suppress a notification some member already needs."""
        world = build_world(seed=33)
        fid, status, _ = world.create_group_sync(0, [5, 9])
        assert status == "ok"
        world.run_for(5_000)
        # Crash and immediately recover: the member forgets the group but
        # stays reachable, so only reconciliation can discover the loss.
        world.crash(9)
        world.run_for(2_000)
        world.restart(9)
        world.run_for_minutes(12)
        assert fid in world.fuse(0).notifications
        assert fid in world.fuse(5).notifications

    def test_member_repair_timeout_fires_when_root_gone(self):
        world = build_world(seed=34)
        fid, _, _ = world.create_group_sync(0, [5, 9])
        world.disconnect(0)
        world.run_for_minutes(10)
        for m in (5, 9):
            assert fid in world.fuse(m).notifications


class TestRepairDisabledAblation:
    def test_without_repair_delegate_failure_kills_group(self):
        """Paper §5 ablation: with repair disabled, any tree break is
        a group failure (the 'simplicity' option the paper rejected as a
        false-positive source)."""
        world = build_world(fuse_config=FuseConfig(repair_enabled=False))
        fid, member, delegate = find_group_with_delegate(world)
        world.run_for(5_000)
        world.crash(delegate)
        world.run_for_minutes(10)
        assert fid in world.fuse(0).notifications  # false positive, by design
        assert fid in world.fuse(member).notifications


class TestCrashRecovery:
    def test_recovery_is_stateless_rejoin(self):
        world = build_world(seed=35)
        world.crash(7)
        world.run_for_minutes(4)
        world.restart(7)
        world.run_for_minutes(2)
        assert world.overlay.is_member(world.overlay_node(7).name)
        assert world.fuse(7).groups == {}

    def test_groups_of_recovered_node_eventually_notified(self):
        """§3.6: a recovering node does not know whether a notification
        was propagated; active list comparison resolves it within about a
        failure timeout."""
        world = build_world(seed=36)
        fid, _, _ = world.create_group_sync(0, [5, 9])
        world.crash(5)
        world.run_for(30_000)
        world.restart(5)
        world.run_for_minutes(12)
        assert fid in world.fuse(0).notifications
        assert fid in world.fuse(9).notifications

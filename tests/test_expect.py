"""Scenario-level [expect] assertions: parsing, evaluation, CLI exit codes."""

import json

import pytest

from repro.scenarios import (
    BUILTIN,
    ExpectError,
    Expectation,
    evaluate_expectations,
    parse_expect,
    scenario_from_dict,
)
from repro.scenarios.expect import derived_metrics
from repro.scenarios.run import main as run_main
from repro.scenarios.spec import SpecError

MEASUREMENTS = {
    "notifications_delivered": 6,
    "notifications_expected": 6,
    "spurious_groups": 0,
    "latency_min": [0.5, 1.0, 2.0],
}


class TestParsing:
    def test_number_means_equality(self):
        (e,) = parse_expect({"spurious_groups": 0})
        assert (e.metric, e.op, e.operand) == ("spurious_groups", "==", 0)

    def test_string_op_and_metric_operand(self):
        (e,) = parse_expect({"delivered": "== expected"})
        assert (e.op, e.operand) == ("==", "expected")
        (e,) = parse_expect({"notify_p95_ms": "< 120000"})
        assert (e.op, e.operand) == ("<", 120000)

    def test_bad_operator_rejected(self):
        with pytest.raises(ExpectError):
            parse_expect({"delivered": "~= expected"})

    def test_bad_value_shapes_rejected(self):
        with pytest.raises(ExpectError):
            parse_expect({"delivered": "expected"})  # no operator
        with pytest.raises(ExpectError):
            parse_expect({"delivered": True})  # booleans unsupported
        with pytest.raises(ExpectError):
            parse_expect({"delivered": [1, 2]})


class TestEvaluation:
    def test_satisfied(self):
        outcomes = evaluate_expectations(
            parse_expect({"spurious_groups": 0, "delivered": "== expected"}),
            MEASUREMENTS,
        )
        assert all(o.ok for o in outcomes)

    def test_violation_reports_actual_vs_bound(self):
        (o,) = evaluate_expectations(
            parse_expect({"spurious_groups": "<= -1"}), MEASUREMENTS
        )
        assert not o.ok and "violated" in o.violation

    def test_unknown_metric_is_a_violation(self):
        (o,) = evaluate_expectations(parse_expect({"nope": 0}), MEASUREMENTS)
        assert not o.ok and "not reported" in o.violation

    def test_derived_latency_percentiles(self):
        values = derived_metrics(MEASUREMENTS)
        assert values["delivered"] == 6 and values["expected"] == 6
        assert values["notify_max_ms"] == pytest.approx(120_000.0)
        assert 30_000.0 <= values["notify_p50_ms"] <= 120_000.0

    def test_no_latencies_means_zero(self):
        values = derived_metrics({"latency_min": []})
        assert values["notify_p95_ms"] == 0.0


class TestSpecIntegration:
    def test_expect_block_loads(self):
        scenario = scenario_from_dict(
            {
                "scenario": {"name": "x", "n_nodes": 10},
                "phase": [{"name": "p", "minutes": 1.0}],
                "track": [{"kind": "groups", "n_groups": 2, "group_size": 3}],
                "expect": {"spurious_groups": 0, "delivered": "== expected"},
            }
        )
        assert len(scenario.expect) == 2
        assert scenario.expect[0] == Expectation("spurious_groups", "==", 0)

    def test_bad_expect_block_is_a_spec_error(self):
        with pytest.raises(SpecError):
            scenario_from_dict(
                {
                    "scenario": {"name": "x", "n_nodes": 10},
                    "phase": [{"name": "p", "minutes": 1.0}],
                    "expect": {"delivered": "~ expected"},
                }
            )

    def test_every_builtin_declares_expectations(self):
        for name, factory in BUILTIN.items():
            assert factory(True).expect, f"built-in {name!r} has no [expect] block"


class TestCliExitCodes:
    def _spec(self, tmp_path, expect):
        spec = {
            "scenario": {"name": "cli-expect", "n_nodes": 12, "seed": 3},
            "phase": [
                {"name": "warmup", "minutes": 1.0},
                {"name": "fail", "minutes": 5.0, "measure": True},
            ],
            "track": [
                {"kind": "groups", "n_groups": 3, "group_size": 3},
                {"kind": "disconnect-wave", "count": 1, "phase": "fail"},
            ],
            "expect": expect,
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_pass_exits_zero(self, tmp_path, capsys):
        path = self._spec(tmp_path, {"delivered": "== expected", "spurious_groups": 0})
        assert run_main([path]) == 0
        assert "[expect] PASS" in capsys.readouterr().out

    def test_violation_exits_nonzero(self, tmp_path, capsys):
        path = self._spec(tmp_path, {"spurious_groups": ">= 100"})
        assert run_main([path]) == 1
        assert "[expect] FAIL" in capsys.readouterr().out

    def test_no_expect_flag_bypasses(self, tmp_path):
        path = self._spec(tmp_path, {"spurious_groups": ">= 100"})
        assert run_main([path, "--no-expect"]) == 0

    def test_builtin_quick_conformance_sample(self, capsys):
        assert run_main(["steady", "--quick"]) == 0
        assert "[expect] PASS" in capsys.readouterr().out

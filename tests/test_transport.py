"""Tests for the TCP-like transport: delivery, retries, breaks, overhead."""

import pytest

from repro.net import MercatorConfig, Network, build_mercator_topology
from repro.net.message import Message
from repro.net.node import Host
from repro.net.transport import TransportConfig
from repro.sim import Simulator


class Note(Message):
    def __init__(self, text: str = "") -> None:
        self.text = text


def build_net(seed=1, n_hosts=10, transport=None):
    sim = Simulator(seed=seed)
    topo, host_ids = build_mercator_topology(
        MercatorConfig(n_hosts=n_hosts, n_as=4), sim.rng.stream("topology")
    )
    net = Network(sim, topo, config=transport)
    hosts = [Host(net, h) for h in host_ids]
    return sim, net, hosts


class TestTransportConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TransportConfig(max_retries=-1)
        with pytest.raises(ValueError):
            TransportConfig(rto_initial_ms=0)
        with pytest.raises(ValueError):
            TransportConfig(rto_backoff=0.5)
        with pytest.raises(ValueError):
            TransportConfig(jitter_fraction=1.0)

    def test_retry_schedule(self):
        cfg = TransportConfig(rto_initial_ms=100, rto_backoff=2.0, max_retries=3)
        assert cfg.retry_schedule_ms() == [100.0, 300.0, 700.0]
        assert cfg.worst_case_delivery_extra_ms() == 700.0

    def test_zero_retries_schedule_empty(self):
        cfg = TransportConfig(max_retries=0)
        assert cfg.retry_schedule_ms() == []
        assert cfg.worst_case_delivery_extra_ms() == 0.0


class TestDelivery:
    def test_basic_delivery(self):
        sim, net, hosts = build_net()
        got = []
        hosts[1].register_handler(Note, lambda m: got.append((m.text, m.sender)))
        hosts[0].send(1, Note("hi"))
        sim.run()
        assert got == [("hi", 0)]

    def test_send_to_self_rejected(self):
        _sim, net, hosts = build_net()
        with pytest.raises(ValueError):
            net.send(0, 0, Note())

    def test_unknown_endpoint_rejected(self):
        _sim, net, _hosts = build_net()
        with pytest.raises(KeyError):
            net.send(0, 999, Note())

    def test_first_contact_slower_than_second(self):
        """Connection-cache behaviour behind the paper's Fig 6."""
        sim, net, hosts = build_net()
        times = []
        hosts[1].register_handler(Note, lambda m: times.append(sim.now))
        start1 = sim.now
        hosts[0].send(1, Note("first"))
        sim.run()
        first_latency = times[0] - start1
        start2 = sim.now
        hosts[0].send(1, Note("second"))
        sim.run()
        second_latency = times[1] - start2
        assert first_latency > 1.5 * second_latency

    def test_delivery_latency_at_least_route_latency(self):
        sim, net, hosts = build_net()
        times = []
        hosts[1].register_handler(Note, lambda m: times.append(sim.now))
        hosts[0].send(1, Note())
        sim.run()
        assert times[0] >= net.routes.latency(0, 1)

    def test_message_sender_not_mutated(self):
        """The same Message object sent to two peers keeps sender=None on
        the original (copies are stamped, not the original)."""
        sim, net, hosts = build_net()
        msg = Note("fanout")
        hosts[0].send(1, msg)
        hosts[0].send(2, msg)
        sim.run()
        assert msg.sender is None

    def test_dead_sender_sends_nothing(self):
        sim, net, hosts = build_net()
        got = []
        hosts[1].register_handler(Note, lambda m: got.append(m))
        net.crash_host(0)
        hosts[0].send(1, Note())
        sim.run()
        assert got == []

    def test_dead_receiver_not_delivered(self):
        sim, net, hosts = build_net()
        got = []
        hosts[1].register_handler(Note, lambda m: got.append(m))
        net.crash_host(1)
        hosts[0].send(1, Note())
        sim.run()
        assert got == []

    def test_unhandled_message_counted(self):
        sim, net, hosts = build_net()
        hosts[0].send(1, Note())
        sim.run()
        assert sim.metrics.counter("net.unhandled").value == 1

    def test_crash_clears_sender_occupancy(self):
        """Regression: a recovered incarnation must not inherit the dead
        process's serialization backlog (_send_busy_until carryover)."""
        overhead = 50.0
        sim, net, hosts = build_net(
            transport=TransportConfig(send_overhead_ms=overhead, jitter_fraction=0.0)
        )
        # Pile up a large send backlog at host 0.
        for _ in range(100):
            hosts[0].send(1, Note())
        assert net._send_busy_until[0] >= 100 * overhead
        net.crash_host(0)
        assert 0 not in net._send_busy_until
        net.recover_host(0)
        # A fresh send from the restarted process pays only its own
        # overhead, not the dead incarnation's queue.
        arrivals = []
        hosts[2].register_handler(Note, lambda m: arrivals.append(sim.now))
        t0 = sim.now
        hosts[0].send(2, Note())
        sim.run()
        assert arrivals and arrivals[0] - t0 < 2 * overhead + 1_000.0


class TestSerializationOverhead:
    def test_sends_queue_behind_each_other(self):
        """Back-to-back sends at one node serialize (paper: 2.8 ms per
        message; the cause of Fig 8's rise at large group sizes)."""
        overhead = 5.0
        sim, net, hosts = build_net(
            transport=TransportConfig(send_overhead_ms=overhead, jitter_fraction=0.0)
        )
        arrivals = {}
        for i in (1, 2, 3, 4):
            hosts[i].register_handler(Note, lambda m, i=i: arrivals.setdefault(i, sim.now))
        # Same destination router distance does not matter; the sender-side
        # queueing shows up as increasing injection times.
        for i in (1, 2, 3, 4):
            hosts[0].send(i, Note())
        sim.run()
        assert len(arrivals) == 4
        # Each later message paid at least one more overhead quantum.
        assert sim.metrics.counter("net.messages").value == 4


class TestLossAndBreaks:
    def test_loss_masked_by_retransmission(self):
        sim, net, hosts = build_net(transport=TransportConfig())
        net.topology.set_uniform_loss(0.02)
        got = []
        hosts[1].register_handler(Note, lambda m: got.append(m))
        for _ in range(30):
            hosts[0].send(1, Note())
        sim.run()
        assert len(got) == 30  # ~20% route loss, still everything arrives

    def test_total_blackout_breaks_connection(self):
        sim, net, hosts = build_net()
        failures = []
        net.disconnect_host(1)
        hosts[0].send(1, Note(), on_fail=lambda dst, msg: failures.append(dst))
        sim.run()
        assert failures == [1]
        assert sim.metrics.counter("net.connection_breaks").value == 1

    def test_break_reported_after_backoff_window(self):
        cfg = TransportConfig(rto_initial_ms=100, rto_backoff=2.0, max_retries=3)
        sim, net, hosts = build_net(transport=cfg)
        net.disconnect_host(1)
        when = []
        hosts[0].send(1, Note(), on_fail=lambda *a: when.append(sim.now))
        sim.run()
        # 3 retries at 100+200+400 then an 800ms final wait.
        assert when and when[0] >= 700.0

    def test_connection_cache_purged_on_break(self):
        sim, net, hosts = build_net()
        hosts[0].send(1, Note())
        sim.run()
        assert net.has_connection(0, 1)
        net.disconnect_host(1)
        hosts[0].send(1, Note(), on_fail=lambda *a: None)
        sim.run()
        assert not net.has_connection(0, 1)

    def test_partition_blocks_traffic(self):
        sim, net, hosts = build_net()
        got, failures = [], []
        hosts[1].register_handler(Note, lambda m: got.append(m))
        net.faults.partition([[0], [1]])
        hosts[0].send(1, Note(), on_fail=lambda *a: failures.append(1))
        sim.run()
        assert got == []
        assert failures == [1]

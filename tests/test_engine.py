"""Tests for the shared trial engine: sweeps, seed derivation, the
parallel executor's determinism guarantee, and result aggregation/JSON."""

import pytest

from repro.engine import (
    ResultSet,
    Sweep,
    TrialResult,
    TrialSpec,
    derive_seed,
    run_trial,
    run_trials,
)
from repro.experiments import creation_latency, steady_state


def _square_trial(spec):
    """Synthetic trial: pure function of the spec (serial-executor tests)."""
    x = spec["x"]
    return {"square": x * x, "samples": [float(i) for i in range(x)], "seed": spec.seed}


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed("fig7", 2, (("size", 8),)) == derive_seed(
            "fig7", 2, (("size", 8),)
        )

    def test_distinct_across_components(self):
        seeds = {
            derive_seed("fig7", 2, (("size", s),)) for s in (2, 4, 8, 16, 32)
        }
        assert len(seeds) == 5
        assert derive_seed("fig7", 2) != derive_seed("fig8", 2)
        assert derive_seed("fig7", 2) != derive_seed("fig7", 3)

    def test_non_negative_63_bit(self):
        for s in range(50):
            value = derive_seed("x", s)
            assert 0 <= value < 2**63


class TestSweep:
    def test_empty_grid_is_one_trial_per_seed(self):
        sweep = Sweep(seeds=(1, 2, 3))
        specs = sweep.expand("exp")
        assert len(specs) == 3
        assert [s.base_seed for s in specs] == [1, 2, 3]
        assert all(s.params == {} for s in specs)

    def test_grid_expansion_order(self):
        sweep = Sweep(grid={"a": (1, 2), "b": ("x", "y")}, seeds=(0,))
        points = [s.params for s in sweep.expand("exp")]
        assert points == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_indices_are_stable_ordinals(self):
        sweep = Sweep(grid={"a": (1, 2)}, seeds=(7, 8))
        specs = sweep.expand("exp")
        assert [s.index for s in specs] == [0, 1, 2, 3]
        assert sweep.n_trials == 4

    def test_seed_depends_only_on_own_point(self):
        """Adding grid values or seeds must not move existing trials'
        derived seeds."""
        small = {(s.base_seed, tuple(sorted(s.params.items()))): s.seed
                 for s in Sweep(grid={"a": (1,)}, seeds=(5,)).expand("exp")}
        big = {(s.base_seed, tuple(sorted(s.params.items()))): s.seed
               for s in Sweep(grid={"a": (1, 2, 3)}, seeds=(5, 6)).expand("exp")}
        for key, seed in small.items():
            assert big[key] == seed

    def test_context_attached(self):
        marker = object()
        specs = Sweep(seeds=(1,)).expand("exp", context=marker)
        assert specs[0].context is marker


class TestSerialExecutor:
    def test_results_in_spec_order(self):
        specs = Sweep(grid={"x": (3, 1, 2)}, seeds=(0,)).expand("exp")
        results = run_trials(_square_trial, specs, jobs=1)
        assert [r.measurements["square"] for r in results] == [9, 1, 4]
        assert [r.spec.index for r in results] == [0, 1, 2]

    def test_run_trial_times_and_validates(self):
        spec = Sweep(grid={"x": (2,)}).expand("exp")[0]
        result = run_trial(_square_trial, spec)
        assert result.wall_seconds >= 0.0
        with pytest.raises(TypeError):
            run_trial(lambda s: [1, 2], spec)


class TestParallelDeterminism:
    def test_parallel_matches_serial_single_world(self):
        config = creation_latency.CreationConfig(
            n_nodes=20, group_sizes=(2, 4), groups_per_size=2
        )
        serial = creation_latency.run(config, jobs=1)
        parallel = creation_latency.run(config, jobs=2)
        assert serial.result_set.to_json(include_timing=False) == parallel.result_set.to_json(
            include_timing=False
        )
        # And the aggregated figure tables agree byte for byte.
        assert serial.format_table() == parallel.format_table()

    def test_parallel_matches_serial_with_seed_replication(self):
        config = steady_state.SteadyStateConfig(
            n_nodes=15, n_groups=3, group_size=3, window_minutes=2.0
        )
        serial = steady_state.run(config, jobs=1, seeds=[5, 6])
        parallel = steady_state.run(config, jobs=4, seeds=[5, 6])
        assert serial.result_set.to_json(include_timing=False) == parallel.result_set.to_json(
            include_timing=False
        )

    def test_jobs_capped_by_trial_count(self):
        specs = Sweep(grid={"x": (1,)}).expand("exp")
        # jobs > trials must not hang or error; degenerates to serial.
        results = run_trials(_square_trial, specs, jobs=8)
        assert len(results) == 1


class TestResultSet:
    def _make(self):
        specs = Sweep(grid={"x": (1, 2, 3)}, seeds=(0, 1)).expand("exp")
        return ResultSet([run_trial(_square_trial, s) for s in specs])

    def test_selection(self):
        rs = self._make()
        assert len(rs) == 6
        assert len(rs.where(x=2)) == 2
        assert rs.axis("x") == [1, 2, 3]
        assert set(rs.group_by("x")) == {1, 2, 3}

    def test_scalars_and_samples(self):
        rs = self._make()
        assert rs.total("square") == 2 * (1 + 4 + 9)
        assert rs.mean("square") == pytest.approx(14 / 3)
        # list measurements flatten: x=3 contributes [0,1,2] per seed
        assert sorted(rs.where(x=3).samples("samples")) == [0.0, 0.0, 1.0, 1.0, 2.0, 2.0]

    def test_percentile_and_ci(self):
        rs = self._make()
        # samples are [1, 1, 4, 4, 9, 9]
        assert rs.percentile("square", 50) == pytest.approx(4.0)
        lo, hi = rs.ci95("square")
        assert lo <= rs.mean("square") <= hi
        single = rs.where(x=1)
        point = single.ci95("square")
        assert point[0] == point[1] == 1.0

    def test_cdf_and_histogram(self):
        rs = self._make()
        cdf = rs.cdf("square")
        assert cdf.value_at_fraction(1.0) == 9
        hist = rs.histogram("samples")
        assert len(hist) == 2 * (0 + 1 + 2 + 3)

    def test_empty_measurement_raises(self):
        rs = self._make()
        with pytest.raises(ValueError):
            rs.mean("missing")

    def test_generic_format_table(self):
        rs = self._make()
        text = rs.format_table(title="demo")
        assert "demo" in text
        assert "x" in text.split("\n")[1]

    def test_json_round_trip(self):
        rs = self._make()
        restored = ResultSet.from_json(rs.to_json())
        assert restored.to_json() == rs.to_json()
        assert restored.experiment == rs.experiment
        assert [t.spec.seed for t in restored] == [t.spec.seed for t in rs]
        assert restored.total("square") == rs.total("square")

    def test_json_timing_toggle(self):
        rs = self._make()
        with_timing = rs.to_json_dict(include_timing=True)
        without = rs.to_json_dict(include_timing=False)
        assert "wall_seconds" in with_timing["trials"][0]
        assert "wall_seconds" not in without["trials"][0]

    def test_total_wall_seconds(self):
        rs = self._make()
        assert rs.total_wall_seconds == pytest.approx(
            sum(t.wall_seconds for t in rs), rel=1e-9
        )


class TestTrialResultJson:
    def test_round_trip_preserves_spec(self):
        spec = TrialSpec(experiment="e", index=3, seed=42, base_seed=7, params={"a": 1})
        result = TrialResult(spec=spec, measurements={"m": [1.0, 2.0]}, wall_seconds=0.5)
        restored = TrialResult.from_json_dict(result.to_json_dict())
        assert restored.spec.experiment == "e"
        assert restored.spec.index == 3
        assert restored.spec.seed == 42
        assert restored.spec.base_seed == 7
        assert restored.spec.params == {"a": 1}
        assert restored.measurements == {"m": [1.0, 2.0]}
        assert restored.wall_seconds == 0.5
        # context is deliberately not serialized
        assert restored.spec.context is None

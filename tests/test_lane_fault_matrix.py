"""Lane byte-identity under every scenario track kind.

The liveness-lane plane is a pure performance layer; the contract is
that *no* fault vocabulary — including the adversarial additions
(Gilbert-Elliott bursts, gray failure, latency/bandwidth windows) — can
make lanes observable.  For every registered track kind this matrix runs
the same spec with lanes on, off, and forced to the pure-Python backend,
and requires the full measurement dict (including the total
events-dispatched count), the ledger's notification rows, and its
duplicate rows to be identical across all three modes.

Divergence anywhere in the event stream shifts dispatch counts and
notification timestamps, so equality here is a tight proxy for
byte-identical traces without regenerating the golden fixture per kind.
"""

import pytest

from repro.scenarios import execute_with_context, scenario_from_dict
from repro.scenarios.spec import TRACK_KINDS

#: Minimal-but-active spec fields per track kind (groups backbone added
#: separately; every fault fires inside the "fault" phase).
KIND_FIELDS = {
    "groups": {"n_groups": 3, "group_size": 3},
    "svtree": {"n_topics": 2, "subscribers_per_topic": 3, "phase": "fault"},
    "poisson-churn": {"nodes": "all", "half_life_minutes": 2.0, "phase": "fault"},
    "crash-recover-wave": {"count": 2, "crash_phase": "fault", "recover_phase": "drain"},
    "disconnect-wave": {"count": 2, "phase": "fault"},
    "rolling-disconnect": {
        "count": 2,
        "phase": "fault",
        "interval_minutes": 0.5,
        "down_minutes": 1.0,
    },
    "partition": {"phase": "fault", "fractions": [0.5, 0.5]},
    "asymmetric-partition": {"phase": "fault", "fraction": 0.5},
    "intransitive-pairs": {
        "n_pairs": 1,
        "phase": "fault",
        "detect_minutes": 0.5,
        "within_groups": True,
    },
    "link-loss": {"phase": "fault", "end_loss": 0.016},
    "burst-loss": {"phase": "fault"},
    "latency-inflation": {"count": 2, "phase": "fault", "factor": 50.0},
    "bandwidth-contention": {"count": 2, "phase": "fault", "factor": 1000.0},
    "gray-failure": {"count": 1, "phase": "fault"},
}


def test_matrix_covers_every_registered_kind():
    assert set(KIND_FIELDS) == set(TRACK_KINDS)


def _spec_for(kind):
    tracks = []
    if kind != "groups":
        tracks.append({"kind": "groups", "n_groups": 3, "group_size": 3})
    tracks.append({"kind": kind, **KIND_FIELDS[kind]})
    return {
        "scenario": {"name": f"lane-matrix-{kind}", "n_nodes": 12, "seed": 9},
        "phase": [
            {"name": "warmup", "minutes": 1.0},
            {"name": "fault", "minutes": 2.0, "measure": True},
            {"name": "drain", "minutes": 6.0},
        ],
        "track": tracks,
    }


def _observables(kind, mode, monkeypatch):
    monkeypatch.setenv("REPRO_LIVENESS_LANES", mode)
    measurements, ctx = execute_with_context(scenario_from_dict(_spec_for(kind)))
    ledger = ctx.world.ledger
    return measurements, list(ledger.notes), list(ledger.duplicates)


@pytest.mark.parametrize("kind", sorted(TRACK_KINDS))
def test_lanes_invisible_under_track(kind, monkeypatch):
    want = _observables(kind, "on", monkeypatch)
    for mode in ("off", "py"):
        got = _observables(kind, mode, monkeypatch)
        assert got == want, f"lanes={mode} diverged under track kind {kind!r}"

"""Tests for named RNG streams."""

from repro.sim import RngStreams


class TestRngStreams:
    def test_same_name_same_stream(self):
        streams = RngStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_different_names_independent(self):
        streams = RngStreams(1)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_order_of_first_use_does_not_matter(self):
        s1 = RngStreams(9)
        s2 = RngStreams(9)
        # Touch streams in different orders.
        s1.stream("x")
        a1 = s1.stream("y").random()
        s2.stream("y")
        s2.stream("x")
        a2 = s2.stream("y").random()
        # "y" already consumed one draw in s2? No: streams are per-name
        # independent Randoms, so the first draw from "y" matches.
        assert a1 == a2

    def test_seed_changes_streams(self):
        a = RngStreams(1).stream("x").random()
        b = RngStreams(2).stream("x").random()
        assert a != b

    def test_fork_is_deterministic(self):
        a = RngStreams(3).fork("child").stream("s").random()
        b = RngStreams(3).fork("child").stream("s").random()
        assert a == b

    def test_fork_differs_from_parent(self):
        parent = RngStreams(3)
        child = parent.fork("child")
        assert parent.stream("s").random() != child.stream("s").random()

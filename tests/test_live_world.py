"""Live backend end-to-end: kernel timer contract, UDP delivery, faults.

These run real sockets and a real event loop under heavy time
compression (a virtual minute in well under a second of wall clock), so
they stay tier-1 fast while exercising the genuine wire path.
"""

import pytest

from repro.net.backends.asynckernel import AsyncioKernel
from repro.net.backends.liveworld import LiveWorld
from repro.net.backends.wallclock import WallClock

# Aggressive compression for tests: 1 virtual minute ≈ 0.12 wall seconds.
SCALE = 0.002


@pytest.fixture
def kernel():
    k = AsyncioKernel(seed=1, time_scale=SCALE)
    yield k
    k.close()


class TestWallClock:
    def test_monotone_and_scaled(self):
        # First tick is consumed as the origin at construction.
        ticks = iter([10.0, 10.5, 11.0, 12.0])
        clock = WallClock(time_scale=0.5, time_fn=lambda: next(ticks))
        assert clock.now == pytest.approx(1000.0)  # 0.5 wall s = 1 virtual s
        assert clock.now == pytest.approx(2000.0)
        assert clock.seconds() == pytest.approx(4.0)

    def test_wall_delay(self):
        clock = WallClock(time_scale=0.01, time_fn=lambda: 0.0)
        assert clock.wall_delay_s(60_000.0) == pytest.approx(0.6)

    def test_rejects_bad_scale(self):
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                WallClock(time_scale=bad)


class TestAsyncioKernelContract:
    """The slice of the Simulator surface protocol code relies on.

    Virtual spans are kept large (seconds, not milliseconds): the wall
    clock keeps running between statements, and at SCALE=0.002 one wall
    millisecond of Python overhead is half a virtual second.
    """

    def test_timers_fire_in_order(self, kernel):
        fired = []
        kernel.call_after(60_000.0, lambda: fired.append("b"))
        kernel.call_after(20_000.0, lambda: fired.append("a"))
        kernel.run_for(120_000.0)
        assert fired == ["a", "b"]
        assert kernel.events_dispatched >= 2

    def test_call_at_past_clamps_instead_of_raising(self, kernel):
        # Deliberate deviation from Simulator.call_at (docs/BACKENDS.md):
        # on a wall clock "the past" is any instant spent computing.
        fired = []
        kernel.call_at(kernel.now - 500.0, lambda: fired.append(1))
        kernel.run_for(50.0)
        assert fired == [1]

    def test_negative_delay_still_raises(self, kernel):
        with pytest.raises(ValueError):
            kernel.call_after(-1.0, lambda: None)
        with pytest.raises(ValueError):
            kernel.schedule_after(-1.0, lambda: None)

    def test_cancel_and_active(self, kernel):
        fired = []
        handle = kernel.call_after(30_000.0, lambda: fired.append(1))
        assert handle.active
        handle.cancel()
        assert not handle.active
        kernel.run_for(90_000.0)
        assert fired == []

    def test_reschedule_contract(self, kernel):
        fired = []
        handle = kernel.call_after(5_000.0, lambda: fired.append(1))
        assert handle.reschedule_after(100_000.0) is True
        kernel.run_for(20_000.0)
        assert fired == []  # moved past the window
        kernel.run_for(200_000.0)
        assert fired == [1]
        assert handle.reschedule_after(5_000.0) is False  # already fired

    def test_run_until_predicate(self, kernel):
        state = {"hit": False}
        kernel.call_after(10_000.0, lambda: state.update(hit=True))
        assert kernel.run_until(lambda: state["hit"], timeout_ms=100_000.0)
        assert not kernel.run_until(lambda: False, timeout_ms=5_000.0)


class TestLiveWorld:
    def test_bootstrap_and_group_lifecycle(self):
        with LiveWorld(n_nodes=6, seed=11, time_scale=SCALE) as world:
            world.bootstrap(settle_ms=2_000.0)
            assert world.overlay.member_count == 6
            fid, status, latency = world.create_group_sync(0, [1, 2])
            assert status == "ok" and fid is not None
            assert fid.startswith("fuse-node-00000-")
            assert latency > 0.0
            # Real sockets carried the traffic.
            assert world.sim.metrics.counter("net.deliveries").value > 0

    def test_crash_delivers_notifications_to_survivors(self):
        with LiveWorld(n_nodes=6, seed=11, time_scale=SCALE) as world:
            world.bootstrap(settle_ms=2_000.0)
            fid, status, _ = world.create_group_sync(0, [1, 2])
            assert status == "ok"
            world.crash(1)
            world.sim.run_until(
                lambda: len(world.ledger.member_notes(fid)) >= 2,
                timeout_ms=5 * 60_000.0,
            )
            notes = world.ledger.member_notes(fid)
            notified = {rec.node for rec in notes}
            # One-way agreement: every surviving member hears about it.
            assert {0, 2} <= notified

    def test_fuse_ids_match_simulated_backend(self):
        """Deterministic ids are what lets the parity harness join
        ledgers across backends."""
        from repro.world import FuseWorld

        sim_world = FuseWorld(n_nodes=6, seed=11)
        sim_world.bootstrap()
        sim_fid, sim_status, _ = sim_world.create_group_sync(0, [1, 2])
        assert sim_status == "ok"
        with LiveWorld(n_nodes=6, seed=11, time_scale=SCALE) as world:
            world.bootstrap(settle_ms=2_000.0)
            live_fid, live_status, _ = world.create_group_sync(0, [1, 2])
            assert live_status == "ok"
            assert live_fid == sim_fid

    def test_restart_rejoins_with_fresh_socket(self):
        with LiveWorld(n_nodes=6, seed=11, time_scale=SCALE) as world:
            world.bootstrap(settle_ms=2_000.0)
            port_before = world.net._addrs[3][1]
            world.crash(3)
            assert 3 not in world.net._addrs  # socket closed
            world.restart(3)
            # The socket reopens as a loop task; drive the loop until the
            # fresh endpoint is bound, then until membership recovers.
            assert world.sim.run_until(
                lambda: 3 in world.net._addrs, timeout_ms=60_000.0
            )
            world.sim.run_until(
                lambda: world.overlay.member_count == 6, timeout_ms=3 * 60_000.0
            )
            assert world.overlay.member_count == 6
            assert world.net._addrs[3][1] != port_before

    def test_partition_breaks_cross_traffic_only(self):
        with LiveWorld(n_nodes=6, seed=11, time_scale=SCALE) as world:
            world.bootstrap(settle_ms=2_000.0)
            world.net.faults.partition([[0, 1, 2], [3, 4, 5]])
            breaks = world.sim.metrics.counter("net.connection_breaks")
            world.run_for(3 * 60_000.0)
            # Cross-partition liveness traffic must break connections.
            assert breaks.value > 0

"""LiveTransportConfig validation (the Topology.add_link contract) and
the retry arithmetic shared between the simulated and wire channels."""

import math

import pytest

from repro.net.backends.base import (
    retry_schedule_ms,
    validate_fraction,
    validate_non_negative,
    validate_positive,
    validate_retry_count,
)
from repro.net.backends.config import LiveTransportConfig
from repro.net.transport import TransportConfig


NAN = float("nan")
INF = float("inf")


class TestValidationHelpers:
    def test_positive_rejects_nan_inf_nonpositive(self):
        for bad in (NAN, INF, -INF, 0.0, -1.0):
            with pytest.raises(ValueError):
                validate_positive(bad, "x")
        with pytest.raises(TypeError):
            validate_positive("fast", "x")
        assert validate_positive(2, "x") == 2.0

    def test_non_negative_allows_zero(self):
        assert validate_non_negative(0.0, "x") == 0.0
        for bad in (NAN, INF, -0.5):
            with pytest.raises(ValueError):
                validate_non_negative(bad, "x")

    def test_fraction_half_open(self):
        assert validate_fraction(0.0, "x") == 0.0
        assert validate_fraction(0.999, "x") == 0.999
        for bad in (1.0, -0.01, NAN):
            with pytest.raises(ValueError):
                validate_fraction(bad, "x")

    def test_retry_count_integral(self):
        assert validate_retry_count(0, "x") == 0
        assert validate_retry_count(4, "x") == 4
        with pytest.raises(ValueError):
            validate_retry_count(-1, "x")
        with pytest.raises(TypeError):
            validate_retry_count(2.5, "x")
        with pytest.raises(TypeError):
            validate_retry_count("many", "x")


class TestLiveTransportConfig:
    def test_defaults_valid(self):
        cfg = LiveTransportConfig()
        assert cfg.rto_initial_ms == 200.0
        assert cfg.max_retries == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rto_initial_ms": 0.0},
            {"rto_initial_ms": -5.0},
            {"rto_initial_ms": NAN},
            {"rto_initial_ms": INF},
            {"rto_backoff": 0.5},
            {"rto_backoff": NAN},
            {"max_retries": -1},
            {"jitter_fraction": 1.0},
            {"jitter_fraction": NAN},
            {"path_latency_ms": -1.0},
            {"path_latency_ms": NAN},
            {"time_scale": 0.0},
            {"time_scale": NAN},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            LiveTransportConfig(**kwargs)

    def test_rejects_non_numbers(self):
        with pytest.raises(TypeError):
            LiveTransportConfig(rto_initial_ms="fast")

    def test_zero_path_latency_allowed(self):
        assert LiveTransportConfig(path_latency_ms=0.0).path_latency_ms == 0.0


class TestSharedRetryArithmetic:
    def test_schedule_matches_simulated_transport(self):
        sim_cfg = TransportConfig(rto_initial_ms=100, rto_backoff=2.0, max_retries=3)
        live_cfg = LiveTransportConfig(rto_initial_ms=100, rto_backoff=2.0, max_retries=3)
        assert sim_cfg.retry_schedule_ms() == live_cfg.retry_schedule_ms() == [100, 300, 700]
        assert (
            sim_cfg.worst_case_delivery_extra_ms()
            == live_cfg.worst_case_delivery_extra_ms()
            == 700
        )

    def test_zero_retries_empty_schedule(self):
        assert retry_schedule_ms(200.0, 2.0, 0) == []

    def test_simulated_config_gained_nan_checks(self):
        """The shared contract hardened TransportConfig too: NaN used to
        slip through its range checks (NaN compares false everywhere)."""
        for field in ("rto_initial_ms", "rto_backoff", "jitter_fraction", "send_overhead_ms"):
            with pytest.raises(ValueError):
                TransportConfig(**{field: NAN})
        assert not math.isnan(TransportConfig().rto_initial_ms)

"""Tests for the fault injector's reachability semantics."""

import pytest

from repro.net import FaultInjector


class TestCrash:
    def test_crash_blocks_both_directions(self):
        faults = FaultInjector()
        faults.crash(1)
        assert not faults.can_communicate(1, 2)
        assert not faults.can_communicate(2, 1)

    def test_recover(self):
        faults = FaultInjector()
        faults.crash(1)
        faults.recover(1)
        assert faults.can_communicate(1, 2)

    def test_is_crashed(self):
        faults = FaultInjector()
        faults.crash(3)
        assert faults.is_crashed(3)
        assert not faults.is_crashed(4)
        assert faults.crashed_nodes == {3}


class TestDisconnect:
    def test_disconnect_blocks(self):
        faults = FaultInjector()
        faults.disconnect(5)
        assert not faults.can_communicate(5, 6)
        assert not faults.can_communicate(6, 5)
        assert faults.is_disconnected(5)

    def test_reconnect(self):
        faults = FaultInjector()
        faults.disconnect(5)
        faults.reconnect(5)
        assert faults.can_communicate(5, 6)


class TestIntransitive:
    def test_blocked_pair_only_affects_that_pair(self):
        """The §3.4 scenario: A-C blocked, but A-B and B-C work."""
        faults = FaultInjector()
        faults.block_pair(1, 3)
        assert not faults.can_communicate(1, 3)
        assert not faults.can_communicate(3, 1)
        assert faults.can_communicate(1, 2)
        assert faults.can_communicate(2, 3)

    def test_unblock(self):
        faults = FaultInjector()
        faults.block_pair(1, 3)
        faults.unblock_pair(3, 1)  # order-insensitive
        assert faults.can_communicate(1, 3)

    def test_self_block_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().block_pair(2, 2)


class TestPartition:
    def test_cross_group_blocked(self):
        faults = FaultInjector()
        faults.partition([[1, 2], [3, 4]])
        assert faults.can_communicate(1, 2)
        assert faults.can_communicate(3, 4)
        assert not faults.can_communicate(1, 3)
        assert not faults.can_communicate(2, 4)

    def test_unlisted_nodes_unrestricted(self):
        faults = FaultInjector()
        faults.partition([[1], [2]])
        assert faults.can_communicate(1, 99)
        assert faults.can_communicate(99, 2)

    def test_node_in_two_groups_rejected(self):
        faults = FaultInjector()
        with pytest.raises(ValueError):
            faults.partition([[1, 2], [2, 3]])

    def test_heal(self):
        faults = FaultInjector()
        faults.partition([[1], [2]])
        faults.heal_partition()
        assert faults.can_communicate(1, 2)

    def test_repartition_replaces(self):
        faults = FaultInjector()
        faults.partition([[1], [2]])
        faults.partition([[1, 2], [3]])
        assert faults.can_communicate(1, 2)
        assert not faults.can_communicate(2, 3)


class TestClear:
    def test_clear_removes_everything(self):
        faults = FaultInjector()
        faults.crash(1)
        faults.disconnect(2)
        faults.block_pair(3, 4)
        faults.partition([[5], [6]])
        faults.clear()
        for a, b in [(1, 9), (2, 9), (3, 4), (5, 6)]:
            assert faults.can_communicate(a, b)

"""Tests for the multi-level ring structure and R-table computation."""

import pytest

from repro.overlay.skipnet.rings import RingStructure


def make_rings(names, base=8, digits=16, leaf_half=2):
    rings = RingStructure(base, digits, leaf_half)
    for name in names:
        rings.add(name)
    return rings


NAMES = [f"node-{i:03d}" for i in range(40)]


class TestMembership:
    def test_add_remove_roundtrip(self):
        rings = make_rings(NAMES[:10])
        assert len(rings) == 10
        rings.remove(NAMES[0])
        assert len(rings) == 9
        assert NAMES[0] not in rings

    def test_duplicate_add_rejected(self):
        rings = make_rings(["a"])
        with pytest.raises(ValueError):
            rings.add("a")

    def test_remove_unknown_is_noop(self):
        rings = make_rings(["a"])
        assert rings.remove("zzz") == set()

    def test_members_sorted(self):
        rings = make_rings(["c", "a", "b"])
        assert rings.members() == ["a", "b", "c"]


class TestTables:
    def test_single_node_has_no_neighbors(self):
        rings = make_rings(["solo"])
        table = rings.table_for("solo")
        assert table.neighbor_names() == set()

    def test_two_nodes_point_at_each_other(self):
        rings = make_rings(["a", "b"])
        assert rings.table_for("a").neighbor_names() == {"b"}
        assert rings.table_for("b").neighbor_names() == {"a"}

    def test_unknown_node_rejected(self):
        rings = make_rings(["a"])
        with pytest.raises(KeyError):
            rings.table_for("nope")

    def test_leaf_set_contains_adjacent_names(self):
        rings = make_rings(NAMES, leaf_half=2)
        table = rings.table_for("node-010")
        for expected in ("node-009", "node-011", "node-008", "node-012"):
            assert expected in table.leaf_set

    def test_level0_pointers_are_ring_adjacent(self):
        rings = make_rings(NAMES)
        table = rings.table_for("node-005")
        level0 = table.ring_neighbors[0]
        assert level0[0] == 0
        assert level0[1] == "node-006"  # clockwise
        assert level0[2] == "node-004"  # counter-clockwise

    def test_higher_levels_exist_for_large_ring(self):
        rings = make_rings(NAMES)
        levels = [rings.table_for(n).levels for n in NAMES]
        assert max(levels) >= 2  # with 40 nodes, some share a first digit

    def test_self_never_a_neighbor(self):
        rings = make_rings(NAMES)
        for name in NAMES:
            assert name not in rings.table_for(name).neighbor_names()


class TestAffectedSets:
    def test_add_affects_reported_nodes(self):
        rings = make_rings(NAMES[:20])
        affected = rings.add("node-0105")  # sorts between node-010 and node-011
        assert "node-010" in affected or "node-011" in affected

    def test_affected_tables_actually_change(self):
        rings = make_rings(NAMES[:20], leaf_half=2)
        before = {n: rings.table_for(n).neighbor_names() for n in NAMES[:20]}
        affected = rings.add("node-0105")
        changed = {
            n for n in NAMES[:20] if rings.table_for(n).neighbor_names() != before[n]
        }
        assert changed <= affected  # every changed table was reported

    def test_remove_affects_neighbors(self):
        rings = make_rings(NAMES[:20], leaf_half=2)
        before = {n: rings.table_for(n).neighbor_names() for n in NAMES[:20] if n != "node-010"}
        affected = rings.remove("node-010")
        changed = {
            n
            for n in before
            if rings.table_for(n).neighbor_names() != before[n]
        }
        assert changed <= affected

    def test_root_ring_successor(self):
        rings = make_rings(["a", "c", "e"])
        assert rings.root_ring_successor("b") == "c"
        assert rings.root_ring_successor("e") == "a"  # wraps
        assert rings.root_ring_successor("c") == "e"  # skips self

"""Tests for the discrete-event kernel: clock, queue, timers, determinism."""

import pytest

from repro.sim import Clock, EventQueue, Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_advance(self):
        clock = Clock()
        clock.advance_to(5.5)
        assert clock.now == 5.5

    def test_cannot_move_backwards(self):
        clock = Clock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)

    def test_cannot_start_negative(self):
        with pytest.raises(ValueError):
            Clock(-1.0)

    def test_seconds(self):
        clock = Clock(1500.0)
        assert clock.seconds() == 1.5


class TestEventQueue:
    def test_pop_order_by_time(self):
        q = EventQueue()
        fired = []
        q.push(30.0, lambda: fired.append("c"))
        q.push(10.0, lambda: fired.append("a"))
        q.push(20.0, lambda: fired.append("b"))
        while True:
            entry = q.pop()
            if entry is None:
                break
            entry[2]()
        assert fired == ["a", "b", "c"]

    def test_tie_break_by_insertion_order(self):
        q = EventQueue()
        fired = []
        for tag in "abcde":
            q.push(5.0, lambda t=tag: fired.append(t))
        while (entry := q.pop()) is not None:
            entry[2]()
        assert fired == list("abcde")

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        keep = q.push(1.0, lambda: None, label="keep")
        drop = q.push(0.5, lambda: None, label="drop")
        assert q.cancel(drop)
        popped = q.pop()
        assert popped is not None and popped[1] == keep
        assert q.pop() is None

    def test_len_tracks_live_events(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        q.cancel(e1)
        q.peek_time()  # forces lazy cleanup of the heap entry
        assert len(q) == 1

    def test_len_reflects_cancellation_immediately(self):
        """Regression: cancel() must update len() even though the heap
        entry is only dropped lazily at pop time."""
        q = EventQueue()
        seqs = [q.push(float(i), lambda: None) for i in range(4)]
        assert q.cancel(seqs[2])
        assert len(q) == 3  # no peek/pop in between
        assert not q.cancel(seqs[2])  # idempotent: no double decrement
        assert len(q) == 3
        # Popping the remaining events drains the count to zero.
        while q.pop() is not None:
            pass
        assert len(q) == 0

    def test_len_after_pop_then_cancel(self):
        """Cancelling an already-popped event must not corrupt len()."""
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        popped = q.pop()
        assert popped is not None and popped[1] == first
        assert len(q) == 1
        assert not q.cancel(first)  # already fired: a no-op
        assert len(q) == 1

    def test_clear_detaches_events(self):
        q = EventQueue()
        seq = q.push(1.0, lambda: None)
        q.clear()
        assert len(q) == 0
        assert not q.is_active(seq)
        assert not q.cancel(seq)  # must not drive the live count negative
        assert len(q) == 0

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(7.0, lambda: None)
        assert q.peek_time() == 7.0


class TestSimulator:
    def test_call_at_and_now(self):
        sim = Simulator()
        seen = []
        sim.call_at(100.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [100.0]

    def test_call_after(self):
        sim = Simulator()
        sim.call_at(50.0, lambda: sim.call_after(25.0, lambda: seen.append(sim.now)))
        seen = []
        sim.run()
        assert seen == [75.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.call_at(10.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.call_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.call_after(-1.0, lambda: None)

    def test_run_until_advances_clock_even_if_queue_drains(self):
        sim = Simulator()
        sim.call_at(10.0, lambda: None)
        sim.run(until=500.0)
        assert sim.now == 500.0

    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        fired = []
        sim.call_at(100.0, lambda: fired.append(1))
        sim.call_at(900.0, lambda: fired.append(2))
        sim.run(until=500.0)
        assert fired == [1]
        sim.run()
        assert fired == [1, 2]

    def test_timer_cancel(self):
        sim = Simulator()
        fired = []
        handle = sim.call_at(10.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []
        assert not handle.active

    def test_timer_active_until_fired(self):
        sim = Simulator()
        handle = sim.call_at(10.0, lambda: None)
        assert handle.active
        sim.run()
        assert not handle.active

    def test_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.call_at(float(i), lambda: None)
        dispatched = sim.run(max_events=4)
        assert dispatched == 4
        assert sim.now == 3.0

    def test_stop_requested_mid_run(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, lambda: (fired.append(1), sim.stop()))
        sim.call_at(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_determinism_same_seed(self):
        def run(seed: int):
            sim = Simulator(seed=seed)
            rng = sim.rng.stream("x")
            out = []
            for i in range(20):
                sim.call_at(rng.uniform(0, 100), lambda i=i: out.append(i))
            sim.run()
            return out

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except RuntimeError as exc:
                errors.append(str(exc))

        sim.call_at(1.0, reenter)
        sim.run()
        assert errors and "reentrant" in errors[0]

    def test_events_dispatched_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.call_at(float(i), lambda: None)
        sim.run()
        assert sim.events_dispatched == 5

    def test_trace_records_dispatches(self):
        sim = Simulator(trace=True)
        sim.call_at(3.0, lambda: None, label="hello")
        sim.run()
        assert any("hello" in rec.message for rec in sim.trace)

"""Seeded property tests for the conservative window scheduler.

Complements the identity matrix (``test_parallel_identity``) with the
*invariants* that make the byte-identity non-accidental, checked over
many random topologies and seeds:

* the partitioner covers every host exactly once and never splits an
  autonomous system (splitting one would put sub-millisecond intra-AS
  links on the cut and collapse the lookahead);
* the lookahead bound never exceeds the latency of any actual
  cross-partition route — the conservative condition;
* no event is dispatched beyond the window barrier it ran under;
* every cross-partition message exchanged at a barrier arrives in a
  strictly later window than the one that sent it.

The dispatch-level properties instrument :class:`WindowRunner.run_window`
directly, so they hold for every worker split by construction (the
runner code is identical; only partition ownership differs).
"""

import random

import pytest

from repro.net.topology import LinkKind
from repro.sim.parallel import REPLICATED, PartitionPlan, WindowRunner
from repro.world import FuseWorld

MINUTE_MS = 60_000.0

#: (seed, n_nodes, n_partitions) — 50 random plan configurations.
_PLAN_CASES = [
    (seed, random.Random(seed * 7919).choice([24, 36, 60, 90, 150]),
     random.Random(seed * 104729).choice([2, 3, 4, 6]))
    for seed in range(50)
]


def _plan_world(seed: int, n_nodes: int) -> FuseWorld:
    world = FuseWorld(n_nodes=n_nodes, seed=seed, liveness_lanes="off")
    world.bootstrap()
    return world


class TestPartitionerProperties:
    @pytest.mark.parametrize("seed,n_nodes,n_partitions", _PLAN_CASES)
    def test_plan_invariants(self, seed, n_nodes, n_partitions):
        world = _plan_world(seed, n_nodes)
        plan = PartitionPlan.build(world, n_partitions)

        # Every host exactly once, across exactly the requested range.
        seen = [h for part in plan.partitions for h in part]
        assert sorted(seen) == sorted(world.node_ids)
        assert len(seen) == len(set(seen))
        assert set(plan.partition_of_host) == set(world.node_ids)
        assert all(
            0 <= p < n_partitions for p in plan.partition_of_host.values()
        )

        # AS-atomicity: one partition per autonomous system.
        by_as = {}
        for host, as_id in plan.as_of_host.items():
            by_as.setdefault(as_id, set()).add(plan.partition_of_host[host])
        assert all(len(parts) == 1 for parts in by_as.values())

        # Lookahead is positive and conservative w.r.t. every actual
        # cross-partition route: route latency = access + core + access,
        # and the core path crosses at least one partition-crossing link.
        assert plan.lookahead_ms is not None and plan.lookahead_ms > 0
        routes = world.net.routes
        rng = random.Random(seed)
        hosts = sorted(world.node_ids)
        checked = 0
        for _ in range(200):
            a, b = rng.sample(hosts, 2)
            if plan.partition_of_host[a] == plan.partition_of_host[b]:
                continue
            route = routes.route(a, b)
            assert plan.lookahead_ms <= route.current_latency() + 1e-9, (
                f"lookahead {plan.lookahead_ms} exceeds cross-partition "
                f"route {a}->{b} latency {route.current_latency()}"
            )
            checked += 1
            if checked >= 25:
                break
        assert checked > 0, "no cross-partition pair sampled"

    def test_lookahead_uses_min_crossing_link(self):
        """The bound equals min crossing core link + both access hops."""
        world = _plan_world(3, 60)
        plan = PartitionPlan.build(world, 4)
        topo = world.topology
        comp = topo.router_components([LinkKind.INTRA_AS])
        group_of = {}
        for router, as_id in comp.items():
            hosts = [h for h, a in plan.as_of_host.items() if a == as_id]
            group_of[router] = (
                plan.partition_of_host[hosts[0]] if hosts else -(as_id + 2)
            )
        min_cross = min(
            link.latency_ms
            for link in topo.links()
            if group_of.get(link.a) != group_of.get(link.b)
        )
        min_access = topo.min_access_latency()
        assert plan.lookahead_ms == pytest.approx(min_cross + 2 * min_access)


class _Probe:
    """Wraps run_window to audit barrier discipline and exchanges."""

    def __init__(self, runner: WindowRunner):
        self.runner = runner
        self.violations = []
        self.exchanged = 0
        self.windows = 0
        inner = runner.run_window

        def audited(w0, w1, slot):
            mark = len(runner.stream)
            out = inner(w0, w1, slot)
            self.windows += 1
            for _slot, _ctx, when, _label in runner.stream[mark:]:
                if when > w1 + 1e-9:
                    self.violations.append(
                        f"dispatch at {when} beyond barrier {w1}"
                    )
            for delivery in out["outbox"]:
                self.exchanged += 1
                # Strictly-later-window arrival: at or past the barrier,
                # so re-injection can never land in the sending window.
                if delivery[0] < w1 - 1e-9:
                    self.violations.append(
                        f"cross-partition arrival {delivery[0]} inside "
                        f"window ending {w1}"
                    )
            return out

        runner.run_window = audited


class TestWindowDispatchProperties:
    @pytest.mark.parametrize("seed", range(10))
    def test_barrier_and_exchange_discipline(self, seed):
        rng = random.Random(seed * 31337)
        n_nodes = rng.choice([36, 60, 90])
        n_partitions = rng.choice([2, 3, 4])
        world = _plan_world(seed, n_nodes)
        ids = world.node_ids
        probes = []

        def body(session):
            probe = _Probe(session.runner)
            probes.append(probe)
            for i in range(4):
                root = ids[(i * len(ids)) // 4]
                members = [ids[(i * 9 + k + 1) % len(ids)] for k in range(3)]
                world.create_group_sync(root, members)
            session.run_for(1.0 * MINUTE_MS)
            world.crash(ids[seed % len(ids)])
            session.run_for(1.0 * MINUTE_MS)

        world.run_partitioned(
            body, workers=1, partitions=n_partitions, record_stream=True
        )
        (probe,) = probes
        assert probe.windows > 0
        assert probe.violations == [], probe.violations[:5]
        # The workload spans partitions, so the conservative exchange
        # path must actually be exercised.
        assert probe.exchanged > 0

    def test_replicated_and_partition_contexts_both_used(self):
        world = _plan_world(2, 60)
        ids = world.node_ids

        def body(session):
            world.create_group_sync(ids[0], ids[1:5])
            # A replicated-context timer: closes over no host object.
            ticks = []
            world.sim.call_after(10_000.0, lambda: ticks.append(1))
            session.run_for(1.0 * MINUTE_MS)

        result = world.run_partitioned(
            body, workers=1, partitions=3, record_stream=True
        )
        contexts = {record[1] for record in result.stream}
        assert REPLICATED in contexts
        assert contexts - {REPLICATED}, "no partition-context dispatches"

"""Integration tests for the SkipNet overlay: join, routing, liveness."""

from repro.net import MercatorConfig, Network, build_mercator_topology
from repro.net.message import Message
from repro.net.node import Host
from repro.overlay import OverlayConfig, SkipNetOverlay
from repro.sim import Simulator


class Probe(Message):
    def __init__(self, tag: str = "") -> None:
        self.tag = tag


def build_overlay(n=20, seed=5, join_gap=300.0, config=None):
    sim = Simulator(seed=seed)
    topo, host_ids = build_mercator_topology(
        MercatorConfig(n_hosts=n, n_as=max(4, n // 5)), sim.rng.stream("topology")
    )
    net = Network(sim, topo)
    overlay = SkipNetOverlay(sim, net, config)
    nodes = []
    for h in host_ids:
        host = Host(net, h, name=f"node-{h:05d}")
        nodes.append(overlay.create_node(host))
    for i, node in enumerate(nodes):
        sim.call_at(i * join_gap, node.join)
    sim.run(until=n * join_gap + 5_000.0)
    return sim, net, overlay, nodes


class TestJoin:
    def test_all_nodes_join(self):
        _sim, _net, overlay, nodes = build_overlay()
        assert overlay.member_count == len(nodes)
        assert all(n.joined for n in nodes)

    def test_neighbor_counts_reasonable(self):
        """Paper: 400-node overlay had ~32 distinct neighbors per node
        with base 8 and leaf set 16; a 20-node overlay with the same leaf
        set sees most of the ring."""
        _sim, _net, overlay, _nodes = build_overlay()
        avg = overlay.average_neighbor_count()
        assert 8.0 <= avg <= 20.0

    def test_double_join_rejected(self):
        _sim, _net, _overlay, nodes = build_overlay(n=5)
        try:
            nodes[0].join()
            raised = False
        except RuntimeError:
            raised = True
        assert raised


class TestRouting:
    def test_exact_delivery(self):
        sim, _net, _overlay, nodes = build_overlay()
        got = []
        nodes[13].host.register_handler(Probe, lambda m: got.append((m.tag, m.sender)))
        nodes[2].route(nodes[13].name, Probe("x"))
        sim.run_for(10_000)
        assert got == [("x", nodes[2].host.node_id)]  # sender is the origin

    def test_route_makes_clockwise_progress(self):
        _sim, _net, overlay, nodes = build_overlay()
        members = sorted(overlay.members())
        src, dst = nodes[0].name, nodes[17].name
        path = overlay.overlay_route(src, dst)
        assert path[0] == src
        assert path[-1] == dst
        # Each hop strictly reduces clockwise distance to the destination.
        def cw(a, b):
            return (members.index(b) - members.index(a)) % len(members)

        distances = [cw(hop, dst) for hop in path]
        assert distances == sorted(distances, reverse=True)
        assert len(set(distances)) == len(distances)

    def test_route_hops_logarithmic(self):
        _sim, _net, overlay, nodes = build_overlay(n=40)
        lengths = []
        for i in range(0, 40, 7):
            for j in range(3, 40, 11):
                if i != j:
                    lengths.append(len(overlay.overlay_route(nodes[i].name, nodes[j].name)) - 1)
        assert max(lengths) <= 12  # log-ish, not linear in 40

    def test_upcalls_on_every_hop(self):
        sim, _net, overlay, nodes = build_overlay()
        path = None
        for candidate in range(1, len(nodes)):
            p = overlay.overlay_route(nodes[0].name, nodes[candidate].name)
            if len(p) >= 3:
                path = p
                dest = candidate
                break
        assert path is not None, "need a multi-hop route for this test"
        seen = []
        for node in nodes:
            node.register_upcall(
                lambda env, prev, nxt, done, node=node: seen.append((node.name, done))
                if isinstance(env.payload, Probe)
                else None
            )
        nodes[0].route(nodes[dest].name, Probe())
        sim.run_for(10_000)
        names = [n for n, _ in seen]
        assert names == path  # an upcall fired at every hop, in order
        assert seen[-1][1] is True  # terminal hop flagged as delivery

    def test_routing_table_visible(self):
        _sim, _net, _overlay, nodes = build_overlay()
        node = nodes[4]
        assert node.neighbors()
        nxt = node.next_hop_name(nodes[10].name)
        assert nxt is None or nxt in node.table.neighbor_names()


class TestLiveness:
    def test_pings_flow_in_steady_state(self):
        sim, _net, _overlay, _nodes = build_overlay(n=10)
        sim.metrics.reset_counters()
        sim.run_for(120_000)
        assert sim.metrics.counter("net.msg.OverlayPing").value > 0
        assert sim.metrics.counter("net.msg.OverlayPingAck").value > 0

    def test_crashed_node_removed_from_membership(self):
        sim, net, overlay, nodes = build_overlay(n=15)
        victim = nodes[7]
        net.crash_host(victim.host.node_id)
        sim.run_for(200_000)  # > ping period + timeout
        assert not overlay.is_member(victim.name)
        assert overlay.member_count == 14

    def test_failure_listener_fires_on_crash(self):
        sim, net, overlay, nodes = build_overlay(n=15)
        victim = nodes[7]
        reports = []
        for node in nodes:
            node.register_failure_listener(
                lambda nid, reason, node=node: reports.append((node.name, nid, reason))
            )
        net.crash_host(victim.host.node_id)
        sim.run_for(200_000)
        assert any(nid == victim.host.node_id for _, nid, _ in reports)

    def test_graceful_leave(self):
        sim, _net, overlay, nodes = build_overlay(n=15)
        nodes[3].leave()
        sim.run_for(5_000)
        assert not overlay.is_member(nodes[3].name)
        assert overlay.member_count == 14

    def test_routing_heals_after_crash(self):
        sim, net, overlay, nodes = build_overlay(n=15)
        victim = nodes[7]
        net.crash_host(victim.host.node_id)
        sim.run_for(200_000)
        # Any remaining pair still routes.
        got = []
        nodes[2].host.register_handler(Probe, lambda m: got.append(m.tag))
        nodes[11].route(nodes[2].name, Probe("after"))
        sim.run_for(10_000)
        assert got == ["after"]

    def test_rejoin_after_crash(self):
        sim, net, overlay, nodes = build_overlay(n=12)
        victim = nodes[5]
        net.crash_host(victim.host.node_id)
        sim.run_for(200_000)
        assert not overlay.is_member(victim.name)
        net.recover_host(victim.host.node_id)
        victim.join()
        sim.run_for(60_000)
        assert overlay.is_member(victim.name)

    def test_ping_payload_providers_and_listeners(self):
        sim, _net, _overlay, nodes = build_overlay(n=8)
        nodes[0].register_payload_provider(lambda neighbor: {"test": {"v": 1}})
        heard = []
        for node in nodes[1:]:
            node.register_ping_listener(
                lambda frm, payload, is_ack: heard.append(payload)
                if "test" in payload
                else None
            )
        sim.run_for(130_000)
        assert heard  # payload piggybacked on node 0's pings reached peers

"""The canonical workload used by the golden dispatch-trace fixture.

``run_golden_scenario`` drives a deterministic FUSE deployment through
bootstrap, group creation, crashes, a disconnect, an explicit signal, and
a long settle window — touching every scheduling surface the kernel
offers (call_at/call_after/call_soon, cancellation, timer reschedule,
retransmission backoff) — and reduces the run to a digest of the full
dispatch trace plus the metrics and notification times experiments report.

``tests/make_golden_trace.py`` ran this scenario against the pre-rewrite
event core and committed the result as ``tests/data/golden_dispatch.json``;
``tests/test_hotpath_determinism.py`` re-runs it against the current core
and requires byte-identical results.  Regenerate the fixture only when a
deliberate behavior change is being made, and say so in the commit.
"""

from __future__ import annotations

import hashlib
from typing import Dict

from repro.world import FuseWorld

GOLDEN_SEED = 1234


def run_golden_scenario(seed: int = GOLDEN_SEED) -> Dict:
    world = FuseWorld(n_nodes=30, seed=seed, trace=True)
    world.bootstrap()

    rng = world.sim.rng.stream("golden-workload")
    groups = []
    for _ in range(10):
        root, *members = rng.sample(world.node_ids, 5)
        fid, status, _latency = world.create_group_sync(root, members)
        groups.append((fid, status))
    world.run_for_minutes(3.0)

    world.crash(world.node_ids[3])
    world.run_for_minutes(2.0)
    world.disconnect(world.node_ids[11])
    world.run_for_minutes(2.0)
    world.crash(world.node_ids[17])
    for fid, status in groups:
        if status == "ok":
            world.fuse(world.node_ids[0]).signal_failure(fid)
            break
    world.run_for_minutes(12.0)

    digest = hashlib.sha256()
    for rec in world.sim.trace:
        digest.update(f"{rec.time!r}|{rec.category}|{rec.message}\n".encode())

    return {
        "seed": seed,
        "trace_records": len(world.sim.trace),
        "trace_sha256": digest.hexdigest(),
        "events_dispatched": world.sim.events_dispatched,
        "final_time_ms": world.sim.now,
        "counters": {
            name: counter.value
            for name, counter in sorted(world.sim.metrics.counters().items())
        },
        "group_status": [status for _fid, status in groups],
        # Every node's notifications (delegates included), read from the
        # world ledger — the replacement for the old per-node observers.
        "notifications": [
            [rec.when, int(rec.node), rec.fuse_id, rec.raw]
            for rec in sorted(
                world.ledger.notes, key=lambda r: (r.when, r.node, r.fuse_id, r.raw)
            )
        ],
    }

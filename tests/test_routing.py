"""Tests for shortest-latency routing and the route cache."""

import pytest

from repro.net.routing import RouteTable
from repro.net.topology import LinkKind, Topology


@pytest.fixture
def diamond():
    """Two host attachment points with a fast and a slow path between."""
    topo = Topology()
    a, b, c, d = (topo.add_router() for _ in range(4))
    topo.add_link(a, b, 10.0, LinkKind.OC3)   # fast upper path a-b-d: 20
    topo.add_link(b, d, 10.0, LinkKind.OC3)
    topo.add_link(a, c, 50.0, LinkKind.OC3)   # slow lower path a-c-d: 100
    topo.add_link(c, d, 50.0, LinkKind.OC3)
    topo.attach_host(0, a, access_latency_ms=1.0)
    topo.attach_host(1, d, access_latency_ms=1.0)
    return topo


class TestRouteTable:
    def test_prefers_lower_latency(self, diamond):
        table = RouteTable(diamond)
        route = table.route(0, 1)
        assert route.latency_ms == pytest.approx(22.0)
        assert route.hop_count == 4  # access, a-b, b-d, access

    def test_route_to_self_rejected(self, diamond):
        table = RouteTable(diamond)
        with pytest.raises(ValueError):
            table.route(0, 0)

    def test_latency_to_self_zero(self, diamond):
        assert RouteTable(diamond).latency(0, 0) == 0.0

    def test_rtt_is_double(self, diamond):
        table = RouteTable(diamond)
        assert table.rtt(0, 1) == pytest.approx(44.0)

    def test_symmetric_routes(self, diamond):
        table = RouteTable(diamond)
        fwd = table.route(0, 1)
        rev = table.route(1, 0)
        assert fwd.latency_ms == rev.latency_ms
        assert [l.endpoints() for l in fwd.links] == [
            l.endpoints() for l in reversed(rev.links)
        ]

    def test_cache_returns_same_object(self, diamond):
        table = RouteTable(diamond)
        assert table.route(0, 1) is table.route(0, 1)

    def test_invalidate_clears_cache(self, diamond):
        table = RouteTable(diamond)
        first = table.route(0, 1)
        table.invalidate()
        assert table.route(0, 1) is not first

    def test_unreachable_raises(self):
        topo = Topology()
        a = topo.add_router()
        b = topo.add_router()  # not linked to a
        topo.attach_host(0, a)
        topo.attach_host(1, b)
        with pytest.raises(ValueError):
            RouteTable(topo).route(0, 1)

    def test_current_loss_sees_late_loss_changes(self, diamond):
        """Experiments flip loss on after routes are cached (Fig 11/12)."""
        table = RouteTable(diamond)
        route = table.route(0, 1)
        assert route.current_loss() == 0.0
        diamond.set_uniform_loss(0.01)
        assert route.current_loss() > 0.0
        assert route.loss_static == 0.0  # snapshot untouched

    def test_router_path_endpoints(self, diamond):
        table = RouteTable(diamond)
        path = table.router_path(0, 3)
        assert path[0] == 0
        assert path[-1] == 3

"""Tests for group creation: success path, failure path, no orphans (§6.2)."""

from repro import FuseConfig, FuseWorld
from repro.net import MercatorConfig


class TestCreateSuccess:
    def test_creation_latency_is_rpc_scale(self, small_world):
        """§7.3: creation latency is an RPC to the furthest member, not a
        multiple of the liveness timeout."""
        _, status, latency = small_world.create_group_sync(0, [5, 10, 15])
        assert status == "ok"
        assert latency < 5_000.0

    def test_larger_groups_take_longer(self, small_world):
        """Fig 7's shape: more members -> higher chance of a slow path."""
        lat_small = []
        lat_large = []
        for seed_offset in range(6):
            root = (seed_offset * 3) % 30
            members_small = [(root + 1) % 30, (root + 2) % 30]
            members_large = [(root + k) % 30 for k in range(1, 13)]
            _, s1, l1 = small_world.create_group_sync(root, members_small)
            _, s2, l2 = small_world.create_group_sync(root, members_large)
            assert s1 == s2 == "ok"
            lat_small.append(l1)
            lat_large.append(l2)
        assert sum(lat_large) >= sum(lat_small)

    def test_install_checking_installs_delegate_state(self, small_world):
        fid, status, _ = small_world.create_group_sync(0, [17])
        assert status == "ok"
        small_world.run_for(5_000)
        path = small_world.overlay.overlay_route(
            small_world.overlay_node(17).name, small_world.overlay_node(0).name
        )
        if len(path) > 2:  # there are true delegates on this route
            delegate_names = path[1:-1]
            holders = [
                nid
                for nid in small_world.node_ids
                if fid in small_world.fuse(nid).groups
                and small_world.overlay_node(nid).name in delegate_names
            ]
            assert holders, "delegates on the route should hold checking state"

    def test_root_tracks_installs_complete(self, small_world):
        fid, status, _ = small_world.create_group_sync(0, [5, 10])
        assert status == "ok"
        small_world.run_for(10_000)
        state = small_world.fuse(0).groups[fid]
        assert not state.pending_installs


class TestCreateFailure:
    def test_unreachable_member_fails_creation(self, small_world):
        small_world.disconnect(9)
        fid, status, _ = small_world.create_group_sync(0, [5, 9], max_wait_ms=300_000)
        assert status != "ok"
        assert fid is None

    def test_failed_create_notifies_contacted_members(self, small_world):
        """§6.2: members that installed state for a failed creation hear a
        HardNotification — state is never orphaned."""
        small_world.disconnect(9)
        small_world.create_group_sync(0, [5, 9], max_wait_ms=300_000)
        small_world.run_for_minutes(3)
        assert not [
            fid
            for fid, st in small_world.fuse(5).groups.items()
            if st.root_id == 0
        ]

    def test_crashed_member_fails_creation(self, small_world):
        small_world.crash(9)
        fid, status, _ = small_world.create_group_sync(0, [5, 9], max_wait_ms=300_000)
        assert status != "ok"

    def test_create_failure_counted(self, small_world):
        small_world.disconnect(9)
        small_world.create_group_sync(0, [9], max_wait_ms=300_000)
        assert small_world.sim.metrics.counter("fuse.create_failures").value == 1

    def test_creation_failure_leaves_no_state_anywhere(self, small_world):
        small_world.disconnect(9)
        fid_attempt = small_world.fuse(0).create_group([5, 9]).fuse_id
        small_world.run_for_minutes(5)
        for nid in small_world.node_ids:
            assert fid_attempt not in small_world.fuse(nid).groups


class TestNonBlockingCreateAblation:
    def test_nonblocking_returns_immediately(self):
        world = FuseWorld(
            n_nodes=12,
            seed=3,
            mercator=MercatorConfig(n_hosts=12, n_as=4),
            fuse_config=FuseConfig(blocking_create=False),
        )
        world.bootstrap()
        fid, status, latency = world.create_group_sync(0, [4, 8])
        assert status == "ok"
        assert latency < 50.0  # no round trips awaited

    def test_nonblocking_with_dead_member_still_notifies(self):
        """Without blocking create the app may act on a group that can
        never form; FUSE must still deliver failure notifications."""
        world = FuseWorld(
            n_nodes=12,
            seed=3,
            mercator=MercatorConfig(n_hosts=12, n_as=4),
            fuse_config=FuseConfig(blocking_create=False),
        )
        world.bootstrap()
        world.disconnect(8)
        fid, status, _ = world.create_group_sync(0, [4, 8])
        assert status == "ok"
        world.run_for_minutes(5)
        assert fid in world.fuse(4).notifications or fid not in world.fuse(4).groups

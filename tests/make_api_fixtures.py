"""Generate the API-refactor identity fixtures.

The PR that introduced the first-class group API (``repro.fuse.api``) had
to prove that rewiring every consumer — apps, experiments, scenario
tracks — onto group handles and the world ledger changed **no** observable
output.  This script ran against the pre-refactor tree and committed its
output under ``tests/data/api_refactor/``; ``tests/test_api_identity.py``
re-runs the same workloads against the current tree and requires
byte-identical JSON.

The workloads are deliberately small (seconds each, tier-1 friendly) but
cover every figure experiment and all built-in scenarios at ``--quick``
shape.  Regenerate only on a *deliberate* behavior change, and say so in
the commit::

    PYTHONPATH=src python tests/make_api_fixtures.py
"""

from __future__ import annotations

import json
import pathlib

OUT_DIR = pathlib.Path(__file__).resolve().parent / "data" / "api_refactor"


def _fig6():
    from repro.experiments import calibration

    return calibration.run(calibration.CalibrationConfig(n_hosts=40, n_pairs=60))


def _fig7():
    from repro.experiments import creation_latency

    return creation_latency.run(
        creation_latency.CreationConfig(n_nodes=30, group_sizes=(2, 4), groups_per_size=3)
    )


def _fig8():
    from repro.experiments import notification_latency

    return notification_latency.run(
        notification_latency.NotificationConfig(
            n_nodes=30, group_sizes=(2, 4), groups_per_size=3
        )
    )


def _fig9():
    from repro.experiments import crash_notification

    return crash_notification.run(
        crash_notification.CrashConfig(
            n_nodes=20, n_groups=6, n_disconnected=2, observe_minutes=6.0
        )
    )


def _fig10():
    from repro.experiments import churn

    return churn.run(
        churn.ChurnConfig(
            n_stable=10, n_churning=10, n_groups=3, group_size=4, window_minutes=3.0
        )
    )


def _fig11():
    from repro.experiments import loss_rates

    return loss_rates.run(
        loss_rates.LossRatesConfig(n_hosts=40, n_pairs=60, per_link_loss=(0.004, 0.016))
    )


def _fig12():
    from repro.experiments import false_positives

    return false_positives.run(
        false_positives.FalsePositivesConfig(
            n_nodes=24,
            group_sizes=(2, 4),
            groups_per_size=2,
            per_link_loss=(0.0, 0.016),
            run_minutes=6.0,
        )
    )


def _agreement():
    from repro.experiments import agreement

    return agreement.run(
        agreement.AgreementConfig(
            n_nodes=30, n_groups=6, group_size=4, n_faults=4, observe_minutes=10.0
        )
    )


def _svtree():
    from repro.experiments import svtree_stats

    return svtree_stats.run(
        svtree_stats.SvtreeStatsConfig(n_nodes=30, n_topics=2, subscribers_per_topic=6)
    )


def _ablation_topologies():
    from repro.experiments import ablation

    return ablation.run_topology_ablation(
        ablation.TopologyAblationConfig(
            n_nodes=16, group_counts=(2, 4), group_size=3, window_minutes=3.0
        )
    )


def _ablation_repair():
    from repro.experiments import ablation

    return ablation.run_repair_ablation(
        ablation.RepairAblationConfig(
            n_nodes=20, n_groups=6, group_size=3, churn_events=2, observe_minutes=6.0
        )
    )


def _steady_state():
    from repro.experiments import steady_state

    return steady_state.run(
        steady_state.SteadyStateConfig(n_nodes=24, n_groups=10, group_size=4, window_minutes=3.0)
    )


#: name -> zero-arg factory returning the experiment's result object.
EXPERIMENTS = {
    "fig6_calibration": _fig6,
    "fig7_creation": _fig7,
    "fig8_notification": _fig8,
    "fig9_crash": _fig9,
    "fig10_churn": _fig10,
    "fig11_loss": _fig11,
    "fig12_false_positives": _fig12,
    "sec3_agreement": _agreement,
    "sec4_svtree": _svtree,
    "sec5_ablation_topologies": _ablation_topologies,
    "sec6_ablation_repair": _ablation_repair,
    "sec75_steady_state": _steady_state,
}


def experiment_json(name: str) -> str:
    result = EXPERIMENTS[name]()
    return result.result_set.to_json(include_timing=False, indent=2) + "\n"


def scenario_json(name: str) -> str:
    from repro.scenarios import BUILTIN, execute

    scenario = BUILTIN[name](True)  # the --quick shape
    measurements = execute(scenario)
    return json.dumps(measurements, indent=2, sort_keys=True) + "\n"


def main() -> None:
    import time

    from repro.scenarios import BUILTIN

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    for name in EXPERIMENTS:
        t0 = time.time()
        (OUT_DIR / f"{name}.json").write_text(experiment_json(name))
        print(f"{name}: {time.time() - t0:.1f}s")
    for name in sorted(BUILTIN):
        t0 = time.time()
        (OUT_DIR / f"scenario_{name}.json").write_text(scenario_json(name))
        print(f"scenario {name}: {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()

"""Tests for the host-level RPC facility and crash incarnation guards."""

import pytest

from repro.net import MercatorConfig, Network, build_mercator_topology
from repro.net.message import Message
from repro.net.node import Host, RpcReply, RpcRequest
from repro.sim import Simulator


class Ask(RpcRequest):
    def __init__(self, question: str = "") -> None:
        super().__init__()
        self.question = question


class Answer(RpcReply):
    def __init__(self, text: str = "") -> None:
        super().__init__()
        self.text = text


def build(seed=1):
    sim = Simulator(seed=seed)
    topo, host_ids = build_mercator_topology(
        MercatorConfig(n_hosts=6, n_as=3), sim.rng.stream("topology")
    )
    net = Network(sim, topo)
    hosts = [Host(net, h) for h in host_ids]
    return sim, net, hosts


class TestRpc:
    def test_round_trip(self):
        sim, _net, hosts = build()
        hosts[1].register_handler(Ask, lambda m: hosts[1].respond(m, Answer("42")))
        replies, failures = [], []
        hosts[0].rpc(1, Ask("q"), 60_000, replies.append, failures.append)
        sim.run()
        assert [r.text for r in replies] == ["42"]
        assert failures == []

    def test_reply_subclass_dispatch(self):
        """Replies dispatch via the RpcReply base handler (MRO lookup)."""
        sim, _net, hosts = build()
        hosts[1].register_handler(Ask, lambda m: hosts[1].respond(m, Answer("ok")))
        got = []
        hosts[0].rpc(1, Ask(), 60_000, lambda r: got.append(type(r).__name__), lambda w: None)
        sim.run()
        assert got == ["Answer"]

    def test_timeout_when_no_responder(self):
        sim, _net, hosts = build()
        # Host 1 has no Ask handler: the request is dropped.
        replies, failures = [], []
        hosts[0].rpc(1, Ask(), 5_000, replies.append, failures.append)
        sim.run()
        assert replies == []
        assert failures == ["timeout"]

    def test_broken_connection_reports_broken(self):
        sim, net, hosts = build()
        net.disconnect_host(1)
        failures = []
        hosts[0].rpc(1, Ask(), 120_000, lambda r: None, failures.append)
        sim.run()
        assert failures == ["broken"]

    def test_exactly_one_callback(self):
        """A late reply after timeout must not fire on_reply."""
        sim, _net, hosts = build()

        def slow_responder(m):
            hosts[1].call_after(10_000, lambda: hosts[1].respond(m, Answer("late")))

        hosts[1].register_handler(Ask, slow_responder)
        events = []
        hosts[0].rpc(1, Ask(), 1_000, lambda r: events.append("reply"), lambda w: events.append(w))
        sim.run()
        assert events == ["timeout"]

    def test_rpc_requires_request_type(self):
        _sim, _net, hosts = build()
        with pytest.raises(TypeError):
            hosts[0].rpc(1, Message(), 1_000, lambda r: None, lambda w: None)

    def test_respond_requires_delivered_request(self):
        _sim, _net, hosts = build()
        with pytest.raises(ValueError):
            hosts[0].respond(Ask(), Answer())

    def test_concurrent_rpcs_matched_by_id(self):
        sim, _net, hosts = build()
        hosts[1].register_handler(Ask, lambda m: hosts[1].respond(m, Answer(m.question)))
        hosts[2].register_handler(Ask, lambda m: hosts[2].respond(m, Answer(m.question)))
        got = {}
        hosts[0].rpc(1, Ask("one"), 60_000, lambda r: got.setdefault(1, r.text), lambda w: None)
        hosts[0].rpc(2, Ask("two"), 60_000, lambda r: got.setdefault(2, r.text), lambda w: None)
        sim.run()
        assert got == {1: "one", 2: "two"}


class TestCrashSemantics:
    def test_timers_squelched_after_crash(self):
        sim, net, hosts = build()
        fired = []
        hosts[0].call_after(1_000, lambda: fired.append(1))
        net.crash_host(0)
        sim.run()
        assert fired == []

    def test_recovered_incarnation_does_not_run_old_timers(self):
        sim, net, hosts = build()
        fired = []
        hosts[0].call_after(10_000, lambda: fired.append("old"))
        net.crash_host(0)
        net.recover_host(0)
        hosts[0].call_after(20_000, lambda: fired.append("new"))
        sim.run()
        assert fired == ["new"]

    def test_pending_rpc_dropped_on_crash(self):
        sim, net, hosts = build()
        hosts[1].register_handler(Ask, lambda m: hosts[1].respond(m, Answer()))
        events = []
        hosts[0].rpc(1, Ask(), 60_000, lambda r: events.append("reply"), lambda w: events.append(w))
        net.crash_host(0)
        sim.run()
        assert events == []

    def test_crash_purges_connections(self):
        sim, net, hosts = build()
        hosts[1].register_handler(Ask, lambda m: hosts[1].respond(m, Answer()))
        hosts[0].rpc(1, Ask(), 60_000, lambda r: None, lambda w: None)
        sim.run()
        assert net.has_connection(0, 1)
        net.crash_host(1)
        assert not net.has_connection(0, 1)

"""Wire codec round-trips for the protocol's message vocabulary."""

import pytest

from repro.net.backends import codec
from repro.fuse.messages import (
    FuseLinkList,
    GroupCreateRequest,
    HardNotification,
    InstallChecking,
)
from repro.net.message import Message
from repro.overlay.skipnet.messages import (
    OverlayPing,
    RouteEnvelope,
)


def roundtrip(message, src=3, dst=7, seq=42):
    frame = codec.encode_message(src, dst, seq, message)
    kind, rsrc, rdst, rseq, decoded = codec.decode_frame(frame)
    assert (kind, rsrc, rdst, rseq) == ("m", src, dst, seq)
    return decoded


class TestRoundTrip:
    def test_simple_fields_and_sender_stamp(self):
        msg = HardNotification(fuse_id="fuse-node-00001-1-abcd1234", reason="link-timeout")
        out = roundtrip(msg)
        assert type(out) is HardNotification
        assert out.fuse_id == msg.fuse_id and out.reason == msg.reason
        # The envelope's src stamps the sender, like the sim's stamp-on-copy.
        assert out.sender == 3
        assert msg.sender is None  # caller's object untouched

    def test_tuple_fields_survive(self):
        msg = GroupCreateRequest(
            fuse_id="fuse-x", root_name="node-00001", member_names=("node-00002", "node-00003")
        )
        out = roundtrip(msg)
        assert out.member_names == ("node-00002", "node-00003")
        assert isinstance(out.member_names, tuple)

    def test_int_keyed_dict_fields_survive(self):
        msg = FuseLinkList(groups={"fuse-a": 3, "fuse-b": 9})
        out = roundtrip(msg)
        assert out.groups == {"fuse-a": 3, "fuse-b": 9}

    def test_nested_message_route_envelope(self):
        inner = InstallChecking(
            fuse_id="fuse-y", seq=2, member_name="node-00004", root_name="node-00001"
        )
        env = RouteEnvelope(dest_name="node-00004", payload=inner, origin=1)
        out = roundtrip(env, src=1, dst=9)
        assert type(out) is RouteEnvelope
        assert out.dest_name == "node-00004"
        assert type(out.payload) is InstallChecking
        assert out.payload.fuse_id == "fuse-y" and out.payload.seq == 2
        assert out.sender == 1

    def test_liveness_ping_payload(self):
        ping = OverlayPing(nonce=17, payload={"fuse": {"hash": "ab12cd34"}})
        out = roundtrip(ping)
        assert out.nonce == 17
        assert out.payload == {"fuse": {"hash": "ab12cd34"}}
        assert out.is_liveness  # class attribute, not a wire field

    def test_ack_frame(self):
        frame = codec.encode_ack(7, 3, 42)
        kind, src, dst, seq, message = codec.decode_frame(frame)
        assert (kind, src, dst, seq, message) == ("a", 7, 3, 42, None)


class TestMalformedFrames:
    def test_short_frame(self):
        with pytest.raises(codec.CodecError):
            codec.decode_frame(b"\x00\x01")

    def test_torn_frame(self):
        frame = codec.encode_ack(1, 2, 3)
        with pytest.raises(codec.CodecError):
            codec.decode_frame(frame[:-2])

    def test_garbage_body(self):
        import struct

        body = b"not json at all"
        with pytest.raises(codec.CodecError):
            codec.decode_frame(struct.pack(">I", len(body)) + body)

    def test_unknown_message_type(self):
        frame = codec.encode_message(1, 2, 3, HardNotification(fuse_id="f", reason="r"))
        tampered = frame.replace(b"HardNotification", b"NoSuchMessageType")
        import struct

        body = tampered[4:]
        tampered = struct.pack(">I", len(body)) + body
        with pytest.raises(codec.CodecError):
            codec.decode_frame(tampered)

    def test_unencodable_value_raises(self):
        class Weird(Message):
            __slots__ = ("blob",)

            def __init__(self):
                self.blob = object()

        with pytest.raises(codec.CodecError):
            codec.encode_message(1, 2, 3, Weird())


def test_registry_covers_wire_messages():
    reg = codec.message_registry()
    for name in (
        "OverlayPing", "OverlayPingAck", "RouteEnvelope", "JoinProbe",
        "GroupCreateRequest", "InstallChecking", "SoftNotification",
        "HardNotification", "GroupRepairRequest", "FuseLinkList",
        "RpcRequest", "RpcReply",
    ):
        assert name in reg, name

"""Cross-mode determinism matrix for the parallel simulation engine.

The FUSE paper's guarantees are *global* (every member of an affected
group is notified), so a parallel execution is only trustworthy if it is
provably equivalent to the serial one.  This module pins that equivalence
as a matrix: one fixed workload per world size, executed serially and
under 2 and 4 workers, with liveness lanes off/on/py — every cell must
produce byte-identical artifacts:

* the canonical merged event stream ``(window slot, context, when, label)``,
* the full :class:`~repro.fuse.api.GroupLedger` (creates, notes,
  duplicates, as tuples),
* every metrics counter, and the total events dispatched.

The partition count is held fixed (P=4) while the worker count varies —
the window schedule is a function of the plan, so identical plans must
yield identical merged artifacts no matter how partitions are spread
over processes (the same golden-replay idea as
``test_hotpath_determinism``, with the serial windowed run as the golden
reference).  A separate anchor pins the single-partition fast path to
the classic ``world.run_for`` kernel loop.
"""

import pytest

from repro.engine.windows import run_partitioned
from repro.world import FuseWorld

MINUTE_MS = 60_000.0


def _build(n_nodes: int, seed: int, lanes: str) -> FuseWorld:
    world = FuseWorld(n_nodes=n_nodes, seed=seed, liveness_lanes=lanes)
    world.bootstrap()
    return world


def _workload(world: FuseWorld):
    """Fixed cross-partition workload: groups spread over the id space,
    two crashes mid-run, enough virtual time for detection + repair."""
    ids = world.node_ids
    n = len(ids)

    def body(session):
        for i in range(8):
            root = ids[(i * n) // 8]
            members = [ids[((i * n) // 8 + k * 7 + 1) % n] for k in range(4)]
            world.create_group_sync(root, members)
        session.run_for(1.5 * MINUTE_MS)
        world.crash(ids[n // 3])
        world.crash(ids[(2 * n) // 3])
        session.run_for(2.0 * MINUTE_MS)

    return body


def _artifacts(n_nodes: int, seed: int, workers: int, lanes: str, partitions: int = 4):
    world = _build(n_nodes, seed, lanes)
    result = run_partitioned(
        world, _workload(world),
        workers=workers, partitions=partitions, record_stream=True,
    )
    return {
        "stream": result.stream,
        "creates": tuple(world.ledger.creates),
        "notes": tuple(world.ledger.notes),
        "duplicates": tuple(world.ledger.duplicates),
        "counters": {
            name: c.value
            for name, c in sorted(world.sim.metrics.counters().items())
        },
        "events": result.events,
        "clock": world.sim.now,
    }


def _assert_identical(ref, got, label: str) -> None:
    for key in ref:
        assert got[key] == ref[key], f"{label}: {key} diverged"


class TestIdentityMatrix400:
    """n=400 — the classic-bootstrap reference size, full 3x3 matrix."""

    SEED = 11
    N = 400

    @pytest.fixture(scope="class")
    def reference(self):
        return _artifacts(self.N, self.SEED, workers=1, lanes="off")

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("lanes", ["off", "on", "py"])
    def test_workers_lanes_identical(self, reference, workers, lanes):
        got = _artifacts(self.N, self.SEED, workers=workers, lanes=lanes)
        _assert_identical(reference, got, f"workers={workers} lanes={lanes}")

    @pytest.mark.parametrize("lanes", ["on", "py"])
    def test_serial_lanes_identical(self, reference, lanes):
        got = _artifacts(self.N, self.SEED, workers=1, lanes=lanes)
        _assert_identical(reference, got, f"workers=1 lanes={lanes}")

    def test_stream_nonempty_and_windowed(self, reference):
        stream = reference["stream"]
        assert len(stream) > 1000
        # Slots must be non-decreasing and contexts ordered within a slot
        # (replicated phase sorts before partitions).
        assert stream == sorted(stream, key=lambda r: (r[0], r[1]))


class TestIdentityMatrix2000:
    """n=2000 — the scaled bootstrap regime; full worker x lanes matrix."""

    SEED = 23
    N = 2000

    @pytest.fixture(scope="class")
    def reference(self):
        return _artifacts(self.N, self.SEED, workers=1, lanes="off")

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("lanes", ["off", "on", "py"])
    def test_workers_lanes_identical(self, reference, workers, lanes):
        got = _artifacts(self.N, self.SEED, workers=workers, lanes=lanes)
        _assert_identical(reference, got, f"workers={workers} lanes={lanes}")


class TestSerialAnchor:
    """P=1 sessions run the classic kernel loop, byte-identical to
    ``world.run_for`` — anchoring the windowed modes to the pre-parallel
    engine the golden traces already pin."""

    def _classic(self, lanes: str):
        world = _build(400, 11, lanes)
        body = _workload(world)

        class _Serial:
            @staticmethod
            def run_for(ms):
                world.run_for(ms)

        body(_Serial())
        return {
            "creates": tuple(world.ledger.creates),
            "notes": tuple(world.ledger.notes),
            "duplicates": tuple(world.ledger.duplicates),
            "counters": {
                name: c.value
                for name, c in sorted(world.sim.metrics.counters().items())
            },
            "events": world.sim.events_dispatched,
            "clock": world.sim.now,
        }

    def test_single_partition_matches_classic(self):
        classic = self._classic("off")
        session = _artifacts(400, 11, workers=1, lanes="off", partitions=1)
        for key in classic:
            assert session[key] == classic[key], f"P=1 anchor: {key} diverged"

"""Tests for the three-call FUSE API surface (paper Fig 1, §3.1-§3.2)."""

from repro.fuse.ids import make_fuse_id


class TestCreateGroup:
    def test_create_returns_ok_and_id(self, tiny_world):
        fid, status, latency = tiny_world.create_group_sync(0, [1, 2, 3])
        assert status == "ok"
        assert fid is not None
        assert latency > 0.0

    def test_blocking_create_means_all_members_have_state(self, tiny_world):
        """§3.2: if creation returns successfully, all members were alive
        and reachable — and hold installed member state."""
        fid, status, _ = tiny_world.create_group_sync(0, [1, 2, 3])
        assert status == "ok"
        for member in (0, 1, 2, 3):
            assert fid in tiny_world.fuse(member).groups

    def test_fuse_ids_unique(self, tiny_world):
        ids = set()
        for _ in range(5):
            fid, status, _ = tiny_world.create_group_sync(0, [1, 2])
            assert status == "ok"
            ids.add(fid)
        assert len(ids) == 5

    def test_multiple_groups_same_nodes_independent(self, tiny_world):
        """§1: groups spanning the same node set fail independently."""
        fid_a, _, _ = tiny_world.create_group_sync(0, [1, 2])
        fid_b, _, _ = tiny_world.create_group_sync(0, [1, 2])
        tiny_world.fuse(1).signal_failure(fid_a)
        tiny_world.run_for_minutes(1)
        assert fid_a in tiny_world.fuse(2).notifications
        assert fid_b not in tiny_world.fuse(2).notifications
        assert fid_b in tiny_world.fuse(2).groups

    def test_group_of_root_only(self, tiny_world):
        fid, status, _ = tiny_world.create_group_sync(0, [])
        assert status == "ok"
        tiny_world.fuse(0).signal_failure(fid)
        tiny_world.run_for(1_000)
        assert fid in tiny_world.fuse(0).notifications

    def test_duplicate_members_deduplicated(self, tiny_world):
        fid, status, _ = tiny_world.create_group_sync(0, [1, 1, 2, 2])
        assert status == "ok"
        assert sorted(tiny_world.fuse(0).groups[fid].member_ids) == [1, 2]

    def test_root_in_member_list_ignored(self, tiny_world):
        fid, status, _ = tiny_world.create_group_sync(0, [0, 1])
        assert status == "ok"
        assert tiny_world.fuse(0).groups[fid].member_ids == [1]


class TestRegisterFailureHandler:
    def test_handler_fires_on_failure(self, tiny_world):
        fid, _, _ = tiny_world.create_group_sync(0, [1, 2])
        fired = []
        tiny_world.fuse(2).register_failure_handler(fid, fired.append)
        tiny_world.fuse(1).signal_failure(fid)
        tiny_world.run_for_minutes(1)
        assert fired == [fid]

    def test_unknown_id_invokes_immediately(self, tiny_world):
        """§3.2: registering against an already-signalled (or never-known)
        ID invokes the callback right away."""
        fired = []
        tiny_world.fuse(3).register_failure_handler("fuse-nonexistent", fired.append)
        tiny_world.run_for(100)
        assert fired == ["fuse-nonexistent"]

    def test_register_after_signal_invokes_immediately(self, tiny_world):
        fid, _, _ = tiny_world.create_group_sync(0, [1, 2])
        tiny_world.fuse(1).signal_failure(fid)
        tiny_world.run_for_minutes(1)
        fired = []
        tiny_world.fuse(2).register_failure_handler(fid, fired.append)
        tiny_world.run_for(100)
        assert fired == [fid]

    def test_handler_fires_exactly_once(self, tiny_world):
        fid, _, _ = tiny_world.create_group_sync(0, [1, 2])
        count = {m: 0 for m in (0, 1, 2)}

        def make_handler(m):
            def handler(_fid):
                count[m] += 1

            return handler

        for m in (0, 1, 2):
            tiny_world.fuse(m).register_failure_handler(fid, make_handler(m))
        tiny_world.fuse(1).signal_failure(fid)
        tiny_world.fuse(2).signal_failure(fid)  # concurrent double signal
        tiny_world.run_for_minutes(2)
        assert all(c == 1 for c in count.values()), count


class TestSignalFailure:
    def test_all_members_notified(self, tiny_world):
        fid, _, _ = tiny_world.create_group_sync(0, [1, 2, 3])
        tiny_world.fuse(3).signal_failure(fid)
        tiny_world.run_for_minutes(1)
        for m in (0, 1, 2, 3):
            assert fid in tiny_world.fuse(m).notifications

    def test_signal_unknown_id_is_noop(self, tiny_world):
        tiny_world.fuse(0).signal_failure("fuse-nonexistent")
        tiny_world.run_for(100)  # must not raise or notify anyone

    def test_signal_by_root(self, tiny_world):
        fid, _, _ = tiny_world.create_group_sync(0, [1, 2])
        tiny_world.fuse(0).signal_failure(fid)
        tiny_world.run_for_minutes(1)
        for m in (0, 1, 2):
            assert fid in tiny_world.fuse(m).notifications

    def test_repeated_signal_idempotent(self, tiny_world):
        fid, _, _ = tiny_world.create_group_sync(0, [1])
        tiny_world.fuse(1).signal_failure(fid)
        tiny_world.run_for_minutes(1)
        tiny_world.fuse(1).signal_failure(fid)
        tiny_world.run_for_minutes(1)
        assert fid in tiny_world.fuse(0).notifications

    def test_no_state_remains_after_notification(self, tiny_world):
        fid, _, _ = tiny_world.create_group_sync(0, [1, 2, 3])
        tiny_world.fuse(1).signal_failure(fid)
        tiny_world.run_for_minutes(3)
        for node_id in tiny_world.node_ids:
            assert fid not in tiny_world.fuse(node_id).groups


class TestFuseIds:
    def test_make_fuse_id_unique(self):
        ids = {make_fuse_id("root") for _ in range(100)}
        assert len(ids) == 100

    def test_id_embeds_root_name(self):
        assert "rootname" in make_fuse_id("rootname")

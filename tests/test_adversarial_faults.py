"""The adversarial fault vocabulary: bursts, gray failure, perf windows.

Pins the new primitives end to end:

* ``GilbertElliott`` — validation, the fixed two-draw-per-packet RNG
  contract (draw count must not depend on chain state, or installing a
  burst would perturb unrelated streams), and burst statefulness;
* ``Topology.set_uniform_burst`` / ``set_link_burst`` / ``clear_burst``
  and the per-route burst cache in ``net.routing``;
* gray failure — liveness stays green while application traffic
  blackholes, and detection-driven ledger rows classify as
  ``gray_fail``;
* latency-inflation / bandwidth-contention factors;
* ``FaultInjector.snapshot`` / ``restore`` / ``clear_all`` (including
  the stale one-way-cut-after-heal regression);
* lane-plane interactions: every new fault family ejects laned nodes
  before the next affected micro-event, bursts and perf faults refuse
  re-absorption while active, gray nodes re-lane (they answer pings).
"""

import pytest

from repro.fuse.api import NotificationReason
from repro.net.faults import FaultInjector
from repro.net.topology import GilbertElliott, Link, LinkKind, Topology
from repro.world import FuseWorld


class _CountingRng:
    """Deterministic stand-in that counts random() draws."""

    def __init__(self, values):
        self.values = list(values)
        self.draws = 0

    def random(self):
        self.draws += 1
        return self.values[(self.draws - 1) % len(self.values)]


class TestGilbertElliott:
    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliott(p_g2b=-0.1, p_b2g=0.5)
        with pytest.raises(ValueError):
            GilbertElliott(p_g2b=0.1, p_b2g=1.5)
        with pytest.raises(ValueError, match="NaN"):
            GilbertElliott(p_g2b=float("nan"), p_b2g=0.5)
        with pytest.raises(ValueError):
            GilbertElliott(p_g2b=0.1, p_b2g=0.5, loss_bad=1.0)  # losses are [0, 1)
        with pytest.raises(TypeError):
            GilbertElliott(p_g2b="high", p_b2g=0.5)
        # Transition probabilities may be exactly 1.0 (always flip).
        GilbertElliott(p_g2b=1.0, p_b2g=1.0)

    def test_two_draws_per_sample_in_both_states(self):
        model = GilbertElliott(p_g2b=1.0, p_b2g=0.0, loss_good=0.0, loss_bad=0.9)
        rng = _CountingRng([0.5])
        model.sample(rng)  # good state: no drop, transitions to bad
        assert rng.draws == 2
        assert model.bad
        model.sample(rng)  # bad state: 0.5 < 0.9 drops, stays bad
        assert rng.draws == 4
        assert model.bad

    def test_bursty_loss(self):
        import random

        model = GilbertElliott(p_g2b=0.05, p_b2g=0.3, loss_good=0.0, loss_bad=0.8)
        rng = random.Random(7)
        drops = [model.sample(rng) for _ in range(4000)]
        # Loss only happens in the bad state; the long-run rate sits
        # between loss_good and loss_bad, and drops arrive in runs.
        rate = sum(drops) / len(drops)
        assert 0.02 < rate < 0.4
        adjacent = sum(1 for a, b in zip(drops, drops[1:]) if a and b)
        assert adjacent > sum(drops) * 0.25  # far above independence


class TestTopologyBursts:
    def test_uniform_burst_install_and_clear(self):
        topo = Topology()
        a, b = topo.add_router(), topo.add_router()
        topo.add_link(a, b, 10.0, LinkKind.INTRA_AS)
        topo.attach_host(0, a)
        gen = topo.generation
        installed = topo.set_uniform_burst(0.02, 0.25)
        assert installed == topo.burst_link_count == 2  # core + access link
        assert topo.generation != gen
        gen = topo.generation
        assert topo.clear_burst() == 2
        assert topo.burst_link_count == 0
        assert topo.generation != gen

    def test_set_link_burst_type_checked(self):
        topo = Topology()
        a, b = topo.add_router(), topo.add_router()
        link = topo.add_link(a, b, 10.0, LinkKind.INTRA_AS)
        with pytest.raises(TypeError):
            topo.set_link_burst(link, 0.5)
        topo.set_link_burst(link, GilbertElliott(p_g2b=0.1, p_b2g=0.5))
        assert topo.burst_link_count == 1
        topo.set_link_burst(link, None)
        assert topo.burst_link_count == 0

    def test_route_burst_cache_tracks_generation(self):
        world = FuseWorld(n_nodes=8, seed=3)
        world.bootstrap()
        src, dst = world.node_ids[0], world.node_ids[1]
        route = world.net.routes.route(src, dst)
        assert route.current_burst() == ()
        world.topology.set_uniform_burst(0.02, 0.25)
        route = world.net.routes.route(src, dst)
        assert route.current_burst()
        world.topology.clear_burst()
        route = world.net.routes.route(src, dst)
        assert route.current_burst() == ()


class TestLossValidation:
    @pytest.mark.parametrize("bad", [float("nan"), -0.01, 1.0, 1.5])
    def test_set_uniform_loss_rejects(self, bad):
        topo = Topology()
        a, b = topo.add_router(), topo.add_router()
        topo.add_link(a, b, 10.0, LinkKind.INTRA_AS)
        with pytest.raises(ValueError):
            topo.set_uniform_loss(bad)

    @pytest.mark.parametrize("bad", [float("nan"), -0.01, 1.0])
    def test_set_link_loss_rejects(self, bad):
        topo = Topology()
        a, b = topo.add_router(), topo.add_router()
        link = topo.add_link(a, b, 10.0, LinkKind.INTRA_AS)
        with pytest.raises(ValueError):
            topo.set_link_loss(link, bad)

    def test_add_link_rejects_nan_loss(self):
        topo = Topology()
        a, b = topo.add_router(), topo.add_router()
        with pytest.raises(ValueError, match="NaN"):
            topo.add_link(a, b, 10.0, LinkKind.INTRA_AS, loss=float("nan"))

    def test_non_number_loss_is_type_error(self):
        with pytest.raises(TypeError):
            Link(0, 1, 1.0, LinkKind.OC3, loss="lossy")


class TestGrayFailure:
    def test_liveness_green_application_black(self):
        """The defining property: a gray node answers pings (overlay
        membership never drops it) while application traffic to it is
        silently dropped (the gray_drops counter)."""
        world = FuseWorld(n_nodes=10, seed=5)
        world.bootstrap()
        victim = world.node_ids[3]
        world.net.faults.gray_fail(victim)
        assert world.net.faults.can_communicate(world.node_ids[0], victim)
        world.run_for_minutes(4.0)
        assert world.overlay.member_count == 10  # no liveness suspicion
        # Application traffic: a blocking create through the victim
        # cannot complete — the create RPC blackholes.
        fid, status, _latency = world.create_group_sync(
            world.node_ids[0], [victim, world.node_ids[4]]
        )
        assert fid is None and status != "ok"
        assert world.sim.metrics.counter("net.gray_drops").value > 0

    def test_detection_rows_classify_as_gray_fail(self):
        world = FuseWorld(n_nodes=10, seed=5)
        world.bootstrap()
        fid, status, _latency = world.create_group_sync(
            world.node_ids[0], [world.node_ids[3], world.node_ids[4]]
        )
        assert status == "ok"
        world.net.faults.gray_fail(world.node_ids[3])
        # Detection-driven raw causes refine to GRAY_FAIL while a member
        # is gray; explicit signals stay SIGNALLED.
        assert world.ledger._classify(fid, "link-timeout") is NotificationReason.GRAY_FAIL
        assert world.ledger._classify(fid, "signaled") is NotificationReason.SIGNALLED

    def test_gray_recover_restores_delivery(self):
        world = FuseWorld(n_nodes=10, seed=5)
        world.bootstrap()
        victim = world.node_ids[3]
        faults = world.net.faults
        faults.gray_fail(victim)
        assert faults.is_gray_failed(victim)
        assert faults.has_link_faults()  # gray counts as a path-level fault
        assert not faults.any_faults()  # ...but not as a reachability fault
        faults.gray_recover(victim)
        assert not faults.is_gray_failed(victim)
        fid, status, _latency = world.create_group_sync(world.node_ids[0], [victim])
        assert fid is not None and status == "ok"


class TestPerfFaults:
    def test_factor_validation(self):
        faults = FaultInjector()
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                faults.inflate_latency(1, bad)
            with pytest.raises(ValueError):
                faults.contend_bandwidth(1, bad)

    def test_latency_factor_is_endpoint_product(self):
        faults = FaultInjector()
        assert faults.latency_factor(1, 2) == 1.0
        faults.inflate_latency(1, 3.0)
        faults.inflate_latency(2, 2.0)
        assert faults.latency_factor(1, 2) == pytest.approx(6.0)
        assert faults.latency_factor(1, 9) == pytest.approx(3.0)
        faults.restore_latency(1)
        assert faults.latency_factor(1, 2) == pytest.approx(2.0)

    def test_send_factor_and_visibility(self):
        faults = FaultInjector()
        assert not faults.has_perf_faults()
        faults.contend_bandwidth(4, 8.0)
        assert faults.send_factor(4) == 8.0
        assert faults.send_factor(5) == 1.0
        assert faults.has_perf_faults()
        assert not faults.any_faults()  # perf is not a reachability fault
        faults.restore_bandwidth(4)
        assert not faults.has_perf_faults()

    def test_inflated_latency_slows_delivery(self):
        def rpc_time(factor):
            world = FuseWorld(n_nodes=8, seed=11)
            world.bootstrap()
            if factor != 1.0:
                world.net.faults.inflate_latency(world.node_ids[2], factor)
            _fid, status, latency = world.create_group_sync(
                world.node_ids[0], [world.node_ids[2]]
            )
            assert status == "ok"
            return latency

        assert rpc_time(50.0) > rpc_time(1.0) * 5


class TestSnapshotRestore:
    def _populated(self):
        faults = FaultInjector()
        faults.crash(1)
        faults.disconnect(2)
        faults.block_pair(3, 4)
        faults.block_one_way(5, 6)
        faults.partition([[1, 2, 3], [4, 5, 6]])
        faults.gray_fail(7)
        faults.inflate_latency(8, 4.0)
        faults.contend_bandwidth(9, 8.0)
        return faults

    def test_round_trip(self):
        faults = self._populated()
        snap = faults.snapshot()
        before = repr(faults)
        faults.clear_all()
        assert not faults.any_faults() and not faults.has_link_faults()
        faults.restore(snap)
        assert repr(faults) == before
        assert faults.is_crashed(1) and faults.is_disconnected(2)
        assert faults.is_gray_failed(7)
        assert faults.latency_factor(8, 0) == 4.0
        assert faults.send_factor(9) == 8.0
        assert not faults.can_communicate(3, 4)
        assert not faults.can_communicate(1, 4)  # partition survives

    def test_snapshot_is_detached(self):
        faults = self._populated()
        snap = faults.snapshot()
        faults.crash(99)
        faults.restore(snap)
        assert not faults.is_crashed(99)

    def test_single_mutation_bump(self):
        faults = self._populated()
        snap = faults.snapshot()
        n = faults.mutation_count
        faults.restore(snap)
        assert faults.mutation_count == n + 1
        faults.clear_all()
        assert faults.mutation_count == n + 2

    def test_restore_missing_family_resets(self):
        faults = FaultInjector()
        snap = faults.snapshot()
        del snap["gray"]
        faults.gray_fail(3)
        faults.restore(snap)
        assert not faults.is_gray_failed(3)

    def test_gray_plus_burst_round_trip(self):
        """Regression: a snapshot of gray failure combined with bursty
        loss must round-trip *both* — burst chains live on the topology,
        and the injector-only snapshot silently dropped them (parameters
        and the good/bad state bit) on restore."""
        world = FuseWorld(n_nodes=8, seed=3)
        faults, topo = world.net.faults, world.topology
        faults.gray_fail(world.node_ids[2])
        installed = topo.set_uniform_burst(0.05, 0.4, loss_good=0.0, loss_bad=0.9)
        assert installed > 0
        # Drive some chains into the bad state so state (not just config)
        # is exercised by the round trip.
        rng = world.sim.rng.stream("test.burst")
        for link in list(topo.links())[:4]:
            for _ in range(50):
                link.burst.sample(rng)
        snap = faults.snapshot(topology=topo)
        bad_bits_before = [
            (key, params[4]) for key, params in sorted(snap["burst"].items(), key=repr)
        ]
        assert any(bad for _key, bad in bad_bits_before)

        faults.clear_all()
        cleared = topo.clear_burst()
        assert cleared == installed and topo.burst_link_count == 0

        faults.restore(snap, topology=topo)
        assert faults.is_gray_failed(world.node_ids[2])
        assert topo.burst_link_count == installed
        after = faults.snapshot(topology=topo)
        bad_bits_after = [
            (key, params[4]) for key, params in sorted(after["burst"].items(), key=repr)
        ]
        assert bad_bits_after == bad_bits_before

    def test_restore_without_burst_family_clears_chains(self):
        """Reset-absent semantics extend to the burst family: restoring a
        pre-burst snapshot against the topology removes the chains."""
        world = FuseWorld(n_nodes=8, seed=3)
        faults, topo = world.net.faults, world.topology
        snap = faults.snapshot(topology=topo)
        topo.set_uniform_burst(0.1, 0.5)
        faults.restore(snap, topology=topo)
        assert topo.burst_link_count == 0

    def test_clear_all_heals_stale_one_way_cuts(self):
        """Regression: healing via clear_all must drop one-way cuts too —
        a stale cut after 'heal everything' silently breaks agreement."""
        faults = FaultInjector()
        faults.block_one_way(1, 2)
        faults.block_one_way_sets([3], [4, 5])
        faults.clear_all()
        assert faults.can_communicate(1, 2)
        assert not faults.is_one_way_blocked(1, 2)
        assert not faults.is_one_way_blocked(3, 4)
        assert not faults.has_link_faults()


def _laned_world(n=16, seed=5):
    world = FuseWorld(n_nodes=n, seed=seed, liveness_lanes=True)
    world.bootstrap()
    world.run_for_minutes(1.5)
    plane = world.sim.lane_plane
    assert plane is not None and plane.lane_count == n
    return world, plane


class TestLaneInteractions:
    def test_gray_flushes_then_relanes(self):
        """Installing gray failure bumps the fault epoch (flush before
        the next micro-event), but gray nodes answer pings, so the lane
        plane re-absorbs them — lanes stay hot under gray failure."""
        world, plane = _laned_world()
        flushes = plane.flushes
        world.net.faults.gray_fail(world.node_ids[2])
        world.run_for_minutes(2.5)
        assert plane.flushes == flushes + 1
        assert plane.lane_count == 16

    def test_perf_faults_refuse_absorption(self):
        world, plane = _laned_world()
        world.net.faults.inflate_latency(world.node_ids[2], 4.0)
        world.run_for_minutes(2.5)
        assert plane.lane_count == 0  # flushed and never re-absorbed
        world.net.faults.restore_latency(world.node_ids[2])
        world.run_for_minutes(2.5)
        assert plane.lane_count == 16

    def test_burst_refuses_absorption_until_cleared(self):
        world, plane = _laned_world()
        world.topology.set_uniform_burst(0.0, 1.0, loss_bad=0.0)  # inert chain
        world.run_for_minutes(2.5)
        assert plane.lane_count == 0
        world.topology.clear_burst()
        world.run_for_minutes(2.5)
        assert plane.lane_count == 16

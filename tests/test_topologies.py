"""Shared semantics tests for the three alternative liveness topologies
(§5.1): every implementation must provide distributed one-way agreement."""

import pytest

from repro.fuse.api import GroupLedger
from repro.fuse.topologies import (
    AllToAllFuse,
    CentralServer,
    CentralServerFuse,
    DirectTreeFuse,
    TopologyConfig,
)
from repro.net import MercatorConfig, Network, build_mercator_topology
from repro.net.node import Host
from repro.sim import Simulator

FAST = TopologyConfig(ping_period_ms=10_000.0, ping_timeout_ms=4_000.0)


class Deployment:
    """A set of hosts running one alternative-topology implementation."""

    def __init__(self, kind: str, n: int = 10, seed: int = 9):
        self.sim = Simulator(seed=seed)
        topo, host_ids = build_mercator_topology(
            MercatorConfig(n_hosts=n + 1, n_as=4), self.sim.rng.stream("topology")
        )
        self.net = Network(self.sim, topo)
        self.hosts = [Host(self.net, h) for h in host_ids]
        self.kind = kind
        self.ledger = GroupLedger(self.sim, self.net.faults)
        if kind == "central":
            self.server = CentralServer(self.hosts[-1], FAST)
            self.services = [
                CentralServerFuse(h, self.hosts[-1].node_id, FAST, ledger=self.ledger)
                for h in self.hosts[:-1]
            ]
        elif kind == "direct":
            self.services = [DirectTreeFuse(h, FAST, ledger=self.ledger) for h in self.hosts[:-1]]
        else:
            self.services = [AllToAllFuse(h, FAST, ledger=self.ledger) for h in self.hosts[:-1]]

    def create_sync(self, root: int, members):
        outcome = {}
        handle = self.services[root].create_group(members)
        handle.on_live(lambda g: outcome.update(fid=g.fuse_id, status="ok"))
        handle.on_notified(
            lambda g, _reason: outcome.update(
                fid=None, status=g.create_failure_reason or "failed"
            )
            if "status" not in outcome
            else None
        )
        for _ in range(200_000):
            if "status" in outcome or not self.sim.step():
                break
        return outcome.get("fid"), outcome.get("status")

    def run_minutes(self, m: float):
        self.sim.run_for(m * 60_000.0)


@pytest.fixture(params=["direct", "all_to_all", "central"])
def deployment(request):
    return Deployment(request.param)


class TestAlternativeTopologies:
    def test_create_succeeds(self, deployment):
        fid, status = deployment.create_sync(0, [1, 2, 3])
        assert status == "ok"
        for m in (0, 1, 2, 3):
            assert fid in deployment.services[m].groups

    def test_create_fails_with_dead_member(self, deployment):
        deployment.net.disconnect_host(deployment.hosts[2].node_id)
        fid, status = deployment.create_sync(0, [1, 2])
        assert status != "ok"

    def test_explicit_signal_notifies_everyone(self, deployment):
        fid, status = deployment.create_sync(0, [1, 2, 3])
        assert status == "ok"
        deployment.services[2].signal_failure(fid)
        deployment.run_minutes(3)
        for m in (0, 1, 3):
            assert fid in deployment.services[m].notifications, (deployment.kind, m)

    def test_member_crash_notifies_survivors(self, deployment):
        fid, status = deployment.create_sync(0, [1, 2, 3])
        assert status == "ok"
        deployment.net.crash_host(deployment.hosts[3].node_id)
        deployment.run_minutes(5)
        for m in (0, 1, 2):
            assert fid in deployment.services[m].notifications, (deployment.kind, m)

    def test_handler_exactly_once(self, deployment):
        fid, status = deployment.create_sync(0, [1, 2])
        counts = {m: 0 for m in (0, 1, 2)}
        for m in counts:

            def handler(_f, m=m):
                counts[m] += 1

            deployment.services[m].register_failure_handler(fid, handler)
        deployment.services[1].signal_failure(fid)
        deployment.run_minutes(5)
        assert all(c == 1 for c in counts.values()), (deployment.kind, counts)

    def test_unknown_handler_fires_immediately(self, deployment):
        fired = []
        deployment.services[0].register_failure_handler("nope", fired.append)
        deployment.sim.run_for(100)
        assert fired == ["nope"]

    def test_shared_ledger_sees_every_member(self, deployment):
        """Handle/ledger parity with the overlay implementation: one
        deployment-wide ledger records every member's notification, so
        the creator's handle surface is complete."""
        fid, status = deployment.create_sync(0, [1, 2])
        assert status == "ok"
        deployment.services[1].signal_failure(fid)
        deployment.run_minutes(3)
        times = deployment.ledger.notification_times(fid)
        expected = {deployment.hosts[m].node_id for m in (0, 1, 2)}
        assert expected <= set(times), (deployment.kind, times)

    def test_independent_groups(self, deployment):
        fid_a, _ = deployment.create_sync(0, [1, 2])
        fid_b, _ = deployment.create_sync(0, [1, 2])
        deployment.services[1].signal_failure(fid_a)
        deployment.run_minutes(3)
        assert fid_a in deployment.services[2].notifications
        assert fid_b in deployment.services[2].groups


class TestTopologySpecifics:
    def test_all_to_all_latency_within_two_ping_periods(self):
        """§5.1: all-to-all reduces worst-case latency to ~2 ping periods."""
        dep = Deployment("all_to_all")
        fid, status = dep.create_sync(0, [1, 2, 3])
        assert status == "ok"
        times = {}
        for m in (0, 1, 2):

            def handler(_f, m=m):
                times[m] = dep.sim.now

            dep.services[m].register_failure_handler(fid, handler)
        t0 = dep.sim.now
        dep.net.crash_host(dep.hosts[3].node_id)
        dep.run_minutes(5)
        assert set(times) == {0, 1, 2}
        bound = 2 * FAST.ping_period_ms + FAST.ping_timeout_ms + FAST.silence_ms
        for m, t in times.items():
            assert t - t0 <= bound

    def test_central_server_death_fails_groups(self):
        """The server is a single point of trust: members detect its death
        and conservatively fail their groups."""
        dep = Deployment("central")
        fid, status = dep.create_sync(0, [1, 2])
        assert status == "ok"
        dep.net.crash_host(dep.server.host.node_id)
        dep.run_minutes(5)
        for m in (0, 1, 2):
            assert fid in dep.services[m].notifications

    def test_central_per_member_load_constant_in_groups(self):
        """Each member pings the server once per period no matter how
        many groups it belongs to."""
        dep = Deployment("central")
        for _ in range(5):
            fid, status = dep.create_sync(0, [1, 2])
            assert status == "ok"
        dep.sim.metrics.reset_counters()
        dep.run_minutes(5)
        pings = dep.sim.metrics.counter("net.msg.CsPing").value
        # 3 participating members x ~30 ten-second periods over 5 minutes,
        # independent of the 5 groups they all belong to.
        periods = (5 * 60_000.0) / FAST.ping_period_ms
        assert pings <= 3 * (periods + 1)

    def test_direct_tree_has_no_delegates(self):
        """Only group members ever hold state for a group."""
        dep = Deployment("direct")
        fid, status = dep.create_sync(0, [1, 2])
        assert status == "ok"
        dep.run_minutes(2)
        holders = [i for i, s in enumerate(dep.services) if fid in s.groups]
        assert sorted(holders) == [0, 1, 2]

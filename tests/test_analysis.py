"""Tests for the determinism-hazard static analyzer (repro.analysis).

Three layers:

* **red/green fixtures** under ``tests/data/analysis/`` — every rule has
  a file that must light up (with pinned finding counts, so a rule that
  silently stops matching fails here) and a file that must stay silent;
* **engine behaviour** — suppressions in both placements, the
  unused/unknown-suppression audit, rule-subset semantics, the
  tests/data walk exclusion (self-hosting safety), JSON schema, CLI
  exit codes;
* **the acceptance gate** — ``src/repro`` analyzes clean with zero
  unsuppressed findings and zero unused suppressions.  This test IS the
  contract in ISSUE 10; if it fails, a determinism hazard landed.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import subprocess
import sys

import pytest

from repro.analysis import (
    ALL_RULES,
    DEFAULT_CONFIG,
    RULES_BY_ID,
    analyze_paths,
    module_matches,
    selected_rules,
)

HERE = pathlib.Path(__file__).resolve().parent
DATA = HERE / "data" / "analysis"
REPO = HERE.parent
SRC = REPO / "src" / "repro"


def analyze_one(path, config=DEFAULT_CONFIG):
    return analyze_paths([path], config=config, root=REPO)


# ---------------------------------------------------------------------------
# Registry


def test_rule_registry_complete():
    ids = [rule.rule_id for rule in ALL_RULES]
    assert ids == ["DH001", "DH002", "DH003", "DH004", "DH005", "DH006"]
    assert len(set(ids)) == len(ids)
    assert all(rule.title for rule in ALL_RULES)
    assert set(RULES_BY_ID) == set(ids)


def test_selected_rules_rejects_unknown_ids():
    with pytest.raises(KeyError):
        selected_rules(dataclasses.replace(DEFAULT_CONFIG, rules=("DH042",)))


def test_module_matches_semantics():
    assert module_matches("src/repro/net/backends/codec.py", ("net/backends/",))
    assert module_matches("src/repro/sim/rng.py", ("sim/rng.py",))
    assert not module_matches("src/repro/sim/rng_helpers.py", ("sim/rng.py",))
    assert not module_matches("src/repro/net/backends.py", ("net/backends/",))


# ---------------------------------------------------------------------------
# Red/green fixtures, one pair per rule (counts pinned deliberately: a
# rule that stops matching a shape regresses loudly here).

RED_CASES = [
    ("DH001", DATA / "dh001_red.py", 5),
    ("DH002", DATA / "dh002_red.py", 6),
    ("DH003", DATA / "dh003_red.py", 5),
    ("DH004", DATA / "dh004_red.py", 4),
    ("DH005", DATA / "dh005_red.py", 3),
    ("DH005", DATA / "scenarios" / "module_state_red.py", 2),
    ("DH006", DATA / "engine" / "parallel.py", 3),
]

GREEN_FILES = [
    DATA / "dh001_green.py",
    DATA / "dh002_green.py",
    DATA / "dh003_green.py",
    DATA / "dh004_green.py",
    DATA / "dh005_green.py",
    DATA / "scenarios" / "module_state_green.py",
    DATA / "engine" / "windows.py",
]


@pytest.mark.parametrize(
    "rule_id,path,expected", RED_CASES, ids=[f"{r}-{p.name}" for r, p, _ in RED_CASES]
)
def test_red_fixture_fires(rule_id, path, expected):
    result = analyze_one(path)
    assert not result.clean
    assert [f.rule for f in result.findings] == [rule_id] * expected
    # Locations are real: every finding points into the file.
    n_lines = len(path.read_text().splitlines())
    assert all(1 <= f.line <= n_lines for f in result.findings)


@pytest.mark.parametrize("path", GREEN_FILES, ids=[p.name for p in GREEN_FILES])
def test_green_fixture_stays_silent(path):
    result = analyze_one(path)
    assert result.clean, [f.render() for f in result.findings]
    assert not result.suppressed


# ---------------------------------------------------------------------------
# Suppressions and the audit


def test_suppression_both_placements():
    result = analyze_one(DATA / "suppressed.py")
    assert result.clean
    assert [f.rule for f in result.suppressed] == ["DH001", "DH001"]


def test_unused_and_unknown_suppressions_are_findings():
    result = analyze_one(DATA / "unused_suppression.py")
    rules = sorted(f.rule for f in result.findings)
    assert rules == ["unknown-suppression", "unused-suppression"]


def test_rule_subset_does_not_condemn_foreign_allows():
    # Running only DH002 over a file with DH001 allows: the allows are
    # out of scope, neither used nor unused.
    config = dataclasses.replace(DEFAULT_CONFIG, rules=("DH002",))
    result = analyze_one(DATA / "suppressed.py", config=config)
    assert result.clean
    assert not result.suppressed


def test_suppression_docstring_text_is_not_a_suppression(tmp_path):
    # The allow syntax quoted inside a string literal must not suppress
    # (nor be audited): only real comment tokens count.
    snippet = tmp_path / "doc.py"
    snippet.write_text(
        '"""Docs may quote: # repro: allow[DH001] — not a suppression."""\n'
        "import random\n\n\n"
        "def jitter():\n"
        "    return random.random()\n"
    )
    result = analyze_one(snippet)
    assert [f.rule for f in result.findings] == ["DH001"]


# ---------------------------------------------------------------------------
# Walk semantics: self-hosting safety


def test_default_walk_excludes_fixture_data():
    # tests/data/ holds deliberately-hazardous snippets; a directory
    # walk must never pick them up...
    result = analyze_paths([DATA], config=DEFAULT_CONFIG, root=REPO)
    assert result.files_analyzed == 0
    assert result.clean
    # ...while naming a file explicitly always analyzes it.
    explicit = analyze_one(DATA / "dh001_red.py")
    assert explicit.files_analyzed == 1
    assert not explicit.clean


def test_strict_dict_order_audit_mode(tmp_path):
    snippet = tmp_path / "dictorder.py"
    snippet.write_text(
        "def drain(d, sim):\n"
        "    for key in d.keys():\n"
        "        sim.schedule_soon(key)\n"
    )
    assert analyze_one(snippet).clean  # insertion-ordered: fine by default
    strict = dataclasses.replace(DEFAULT_CONFIG, strict_dict_order=True)
    result = analyze_one(snippet, config=strict)
    assert [f.rule for f in result.findings] == ["DH003"]


def test_parse_error_is_a_finding_not_a_crash(tmp_path):
    snippet = tmp_path / "broken.py"
    snippet.write_text("def broken(:\n")
    result = analyze_one(snippet)
    assert [f.rule for f in result.findings] == ["parse-error"]


# ---------------------------------------------------------------------------
# JSON schema (version 1, consumed by the CI artifact)


def test_json_schema():
    result = analyze_paths(
        [DATA / "dh001_red.py", DATA / "suppressed.py"],
        config=DEFAULT_CONFIG,
        root=REPO,
    )
    doc = result.to_json_dict()
    assert set(doc) == {
        "version",
        "files_analyzed",
        "findings",
        "suppressed",
        "summary",
        "clean",
    }
    assert doc["version"] == 1
    assert doc["files_analyzed"] == 2
    assert doc["clean"] is False
    assert set(doc["summary"]) == {"by_rule", "findings", "suppressed"}
    assert doc["summary"]["by_rule"] == {"DH001": 5}
    assert doc["summary"]["suppressed"] == 2
    for finding in [*doc["findings"], *doc["suppressed"]]:
        assert set(finding) == {"rule", "path", "line", "col", "message"}
        assert isinstance(finding["line"], int) and finding["line"] >= 1
        assert finding["path"].startswith("tests/data/analysis/")
    json.dumps(doc)  # round-trippable


# ---------------------------------------------------------------------------
# CLI contract


def run_cli(*args, cwd=REPO):
    env_src = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )


def test_cli_exit_codes_and_json(tmp_path):
    red = DATA / "dh001_red.py"
    proc = run_cli(str(red), "--format=json")
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert doc["summary"]["by_rule"] == {"DH001": 5}

    proc = run_cli(str(DATA / "dh001_green.py"))
    assert proc.returncode == 0

    proc = run_cli(str(red), "--rules", "DH042")
    assert proc.returncode == 2

    proc = run_cli("no/such/path.py")
    assert proc.returncode == 2


def test_cli_out_writes_report_even_on_failure(tmp_path):
    out = tmp_path / "report.json"
    proc = run_cli(str(DATA / "dh001_red.py"), "--out", str(out))
    assert proc.returncode == 1
    doc = json.loads(out.read_text())
    assert doc["clean"] is False and doc["summary"]["findings"] == 5


def test_cli_list_rules():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule in ALL_RULES:
        assert rule.rule_id in proc.stdout


# ---------------------------------------------------------------------------
# The acceptance gate: the real tree is clean


def test_src_runs_clean():
    result = analyze_paths([SRC], config=DEFAULT_CONFIG, root=REPO)
    offenders = [f.render() for f in result.findings]
    assert not offenders, "determinism hazards in src/:\n" + "\n".join(offenders)
    assert result.files_analyzed > 90  # the walk really covered the tree
    # The deliberate, justified cases are suppressed — not invisible.
    assert len(result.suppressed) >= 9
    assert {f.rule for f in result.suppressed} == {"DH003", "DH004"}

"""Shared fixtures: small pre-built worlds so individual tests stay fast."""

from __future__ import annotations

import pytest

from repro import FuseWorld
from repro.net import MercatorConfig
from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=42)


@pytest.fixture
def small_world() -> FuseWorld:
    """A 30-node bootstrapped world; cheap enough to build per-test."""
    world = FuseWorld(n_nodes=30, seed=7, mercator=MercatorConfig(n_hosts=30, n_as=10))
    world.bootstrap()
    return world


@pytest.fixture
def tiny_world() -> FuseWorld:
    """A 12-node bootstrapped world for protocol-detail tests."""
    world = FuseWorld(n_nodes=12, seed=11, mercator=MercatorConfig(n_hosts=12, n_as=4))
    world.bootstrap()
    return world


def make_world(n_nodes: int, seed: int, **kwargs) -> FuseWorld:
    """Helper for tests that need custom sizes/configs."""
    mercator = kwargs.pop("mercator", None)
    if mercator is None:
        mercator = MercatorConfig(n_hosts=n_nodes, n_as=max(4, n_nodes // 5))
    world = FuseWorld(n_nodes=n_nodes, seed=seed, mercator=mercator, **kwargs)
    world.bootstrap()
    return world

"""Byte-identical outputs across the group-API redesign.

The first-class group API (``repro.fuse.api``) rewired every consumer of
``create_group``/``observe_notifications`` — apps, six experiment
modules, the scenario tracks, ``FuseWorld.create_group_sync`` — onto
group handles and the world ledger.  These tests prove the rewiring is
observationally invisible: every figure experiment and every built-in
scenario still produces byte-identical JSON against fixtures generated
by the pre-refactor tree (``tests/make_api_fixtures.py``).

A mismatch here means the refactor changed event timing, RNG draw order,
or accounting — regenerate the fixtures only for a *deliberate* behavior
change, and say so in the commit.
"""

import pytest

from repro.scenarios import BUILTIN
from tests.make_api_fixtures import EXPERIMENTS, OUT_DIR, experiment_json, scenario_json


def _fixture(name: str) -> str:
    path = OUT_DIR / f"{name}.json"
    assert path.is_file(), f"missing fixture {path}; run tests/make_api_fixtures.py"
    return path.read_text()


class TestExperimentIdentity:
    @pytest.mark.parametrize("name", sorted(EXPERIMENTS))
    def test_experiment_matches_fixture(self, name):
        assert experiment_json(name) == _fixture(name)


class TestScenarioIdentity:
    @pytest.mark.parametrize("name", sorted(BUILTIN))
    def test_builtin_scenario_matches_fixture(self, name):
        assert scenario_json(name) == _fixture(f"scenario_{name}")

"""FuseWorld: one-call assembly of a complete simulated deployment.

Everything the paper's testbed provides — a wide-area topology, a TCP-ish
messaging layer, a SkipNet overlay with N virtual nodes, and a FUSE
service on each — wired together and bootstrapped.  Tests, examples, and
the experiment harness all start from here::

    world = FuseWorld(n_nodes=400, seed=1)
    world.bootstrap()                      # all nodes join the overlay
    fid = world.create_group_sync(0, [5, 9, 13])
    world.net.disconnect_host(9)
    world.run_for_minutes(5)
    assert world.fuse(0).notifications[fid]
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.fuse.api import FuseGroup, GroupLedger, GroupStatus
from repro.fuse.config import FuseConfig
from repro.fuse.ids import FuseId
from repro.fuse.service import FuseService
from repro.net.address import NodeId
from repro.net.mercator import MercatorConfig, build_mercator_topology
from repro.net.network import Network
from repro.net.node import Host
from repro.net.transport import TransportConfig
from repro.overlay.skipnet.config import OverlayConfig
from repro.overlay.skipnet.node import OverlayNode
from repro.overlay.skipnet.overlay import SkipNetOverlay
from repro.sim.kernel import Simulator
from repro.sim.lanes import LanePlane, resolve_lanes_mode

MINUTE_MS = 60_000.0


class FuseWorld:
    """A fully wired simulated FUSE deployment."""

    def __init__(
        self,
        n_nodes: int = 400,
        seed: int = 0,
        mercator: Optional[MercatorConfig] = None,
        overlay_config: Optional[OverlayConfig] = None,
        fuse_config: Optional[FuseConfig] = None,
        transport: Optional[TransportConfig] = None,
        trace: bool = False,
        liveness_lanes: Optional[object] = None,
    ) -> None:
        self.sim = Simulator(seed=seed, trace=trace)
        self.mercator = mercator or MercatorConfig.scaled_for_hosts(n_nodes)
        if self.mercator.n_hosts < n_nodes:
            raise ValueError("mercator config has fewer hosts than requested nodes")
        topo, host_ids = build_mercator_topology(self.mercator, self.sim.rng.stream("topology"))
        self.topology = topo
        self.net = Network(self.sim, topo, config=transport)
        self.overlay = SkipNetOverlay(self.sim, self.net, overlay_config)
        self.fuse_config = fuse_config or FuseConfig()
        # The world-wide notification ledger: every FuseService records
        # group creations and per-member notifications here, making it
        # the single source of truth for agreement / false-positive /
        # latency accounting (see repro.fuse.api and docs/API.md).
        self.ledger = GroupLedger(self.sim, self.net.faults)

        self.node_ids: List[NodeId] = host_ids[:n_nodes]
        self.hosts: Dict[NodeId, Host] = {}
        self.overlay_nodes: Dict[NodeId, OverlayNode] = {}
        self.fuse_services: Dict[NodeId, FuseService] = {}
        for node_id in self.node_ids:
            host = Host(self.net, node_id, name=f"node-{node_id:05d}")
            overlay_node = self.overlay.create_node(host)
            self.hosts[node_id] = host
            self.overlay_nodes[node_id] = overlay_node
            self.fuse_services[node_id] = FuseService(
                overlay_node, self.fuse_config, ledger=self.ledger
            )

        # Liveness lanes: the batched fast path for steady-state ping
        # traffic (repro.sim.lanes).  ``liveness_lanes`` overrides the
        # REPRO_LIVENESS_LANES environment default ("on"); "py" forces
        # the pure-Python lane backend even when numpy is available.
        self.lanes_mode = resolve_lanes_mode(liveness_lanes)
        if self.lanes_mode != "off":
            plane = LanePlane(
                self.sim, self.net, self.overlay,
                force_python=(self.lanes_mode == "py"),
            )
            self.sim.lane_plane = plane
            self.overlay.lane_plane = plane

    # ------------------------------------------------------------------
    # Bootstrap and clock control
    # ------------------------------------------------------------------
    #: Node count up to which the default join schedule uses the classic
    #: 200 ms spacing (every committed fixture and test world is below
    #: this, so their event streams are bit-for-bit unchanged).
    CLASSIC_BOOTSTRAP_MAX_NODES = 400
    #: Target virtual length of the auto-scaled join window at scale.
    AUTO_JOIN_WINDOW_MS = 30_000.0
    #: Floor on auto-scaled join spacing (joins stay staggered, never a
    #: same-instant thundering herd).
    AUTO_JOIN_SPACING_MIN_MS = 2.0

    def default_join_spacing_ms(self) -> float:
        """The join spacing ``bootstrap()`` uses when none is given.

        200 ms per join — the spacing the paper-scale experiments were
        calibrated with — up to :data:`CLASSIC_BOOTSTRAP_MAX_NODES`.
        Beyond that the schedule is compressed so the whole join storm
        fits in :data:`AUTO_JOIN_WINDOW_MS` of virtual time: at 200 ms a
        16,000-node world would spend 53 virtual *minutes* joining, and
        the liveness sweeps of already-joined nodes during that window
        make bootstrap cost O(n²) pings.  Capping the window (at half a
        ping period — joins complete in well under a second of virtual
        time, so the window models a deployment ramp, not idle steady
        state) keeps it O(n).  Pass ``join_spacing_ms`` explicitly to
        override either regime.
        """
        n = len(self.node_ids)
        if n <= self.CLASSIC_BOOTSTRAP_MAX_NODES:
            return 200.0
        return max(self.AUTO_JOIN_SPACING_MIN_MS, self.AUTO_JOIN_WINDOW_MS / n)

    def bootstrap(
        self,
        join_spacing_ms: Optional[float] = None,
        settle_ms: float = 5_000.0,
    ) -> None:
        """Join every node into the overlay, staggered, then settle.

        ``join_spacing_ms`` defaults to :meth:`default_join_spacing_ms`:
        the classic 200 ms schedule for worlds up to 400 nodes (keeping
        historical event streams byte-identical), a compressed schedule
        above that so paper-scale worlds bootstrap in bounded virtual
        time.
        """
        if join_spacing_ms is None:
            join_spacing_ms = self.default_join_spacing_ms()
        if join_spacing_ms < 200.0:
            # Compressed flash-crowd regime: hold every node's first
            # liveness sweep until the join storm has ended.  A probe
            # fired mid-storm races thousands of queued joins; at 16k
            # nodes that raced a handful of members clean out of the
            # overlay (the 15,996/16,000 gap).  Classic 200 ms schedules
            # keep the floor at zero so historical event streams stay
            # byte-identical.
            self.overlay.first_sweep_floor_ms = len(self.node_ids) * join_spacing_ms
        plane = self.sim.lane_plane
        if plane is not None:
            # Join storms churn routing tables too fast for lanes to pay
            # off (every table push would eject); absorb only afterward.
            plane.suspend()
        try:
            for index, node_id in enumerate(self.node_ids):
                node = self.overlay_nodes[node_id]
                self.sim.call_at(index * join_spacing_ms, node.join)
            self.sim.run(until=len(self.node_ids) * join_spacing_ms + settle_ms)
        finally:
            if plane is not None:
                plane.resume()
        if join_spacing_ms < 200.0:
            # A probe routed into the churning mid-storm rings can
            # dead-end (hop-count drop), parking its joiner on the 30 s
            # join-retry timer — past the settle window.  Drive the
            # world until the stragglers' retries land so a compressed
            # bootstrap always ends with full membership (bounded: one
            # retry cycle plus slack).
            deadline = self.sim.now + 60_000.0
            while (
                self.overlay.member_count < len(self.node_ids)
                and self.sim.now < deadline
            ):
                self.sim.run_for(1_000.0)

    def run_for(self, duration_ms: float) -> None:
        self.sim.run_for(duration_ms)

    def run_for_minutes(self, minutes: float) -> None:
        self.sim.run_for(minutes * MINUTE_MS)

    @property
    def now(self) -> float:
        return self.sim.now

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def fuse(self, node_id: NodeId) -> FuseService:
        return self.fuse_services[node_id]

    def host(self, node_id: NodeId) -> Host:
        return self.hosts[node_id]

    def overlay_node(self, node_id: NodeId) -> OverlayNode:
        return self.overlay_nodes[node_id]

    def alive_node_ids(self) -> List[NodeId]:
        return [nid for nid in self.node_ids if self.hosts[nid].alive]

    # ------------------------------------------------------------------
    # Parallel (partitioned) execution
    # ------------------------------------------------------------------
    def partition_plan(self, n_partitions: int):
        """AS-atomic partition plan for this world (affinity-balanced;
        see :class:`repro.sim.parallel.PartitionPlan`)."""
        from repro.sim.parallel import PartitionPlan

        return PartitionPlan.build(self, n_partitions)

    def run_partitioned(self, body, workers: int = 1,
                        partitions: Optional[int] = None,
                        record_stream: bool = False):
        """Run ``body(session)`` over this world split across worker
        processes using the conservative window protocol.  ``body`` must
        advance virtual time only via ``session.run_for``; results are
        byte-identical for any ``workers`` at a fixed partition count.
        See :func:`repro.engine.windows.run_partitioned`."""
        from repro.engine.windows import run_partitioned

        return run_partitioned(
            self, body, workers=workers, partitions=partitions,
            record_stream=record_stream,
        )

    # ------------------------------------------------------------------
    # Group creation conveniences
    # ------------------------------------------------------------------
    def create_group(self, root: NodeId, members: Sequence[NodeId]) -> FuseGroup:
        """Start creating a group rooted at ``root`` and return its
        handle (asynchronous — drive the simulator to complete it, or use
        :meth:`create_group_sync`)."""
        return self.fuse(root).create_group(members)

    def create_group_sync(
        self,
        root: NodeId,
        members: Sequence[NodeId],
        max_wait_ms: float = 120_000.0,
    ) -> Tuple[Optional[FuseId], str, float]:
        """Create a group and run the simulator until creation completes.

        Thin shim over :meth:`create_group`: subscribes the handle's
        lifecycle callbacks and steps the simulator until one fires.
        Returns (fuse_id or None, status string, creation latency in ms).
        """
        outcome: Dict[str, object] = {}
        started = self.sim.now

        def live(group: FuseGroup) -> None:
            outcome["fuse_id"] = group.fuse_id
            outcome["status"] = "ok"
            outcome["latency"] = self.sim.now - started

        def notified(group: FuseGroup, _reason) -> None:
            if group.status is not GroupStatus.FAILED_CREATE or "status" in outcome:
                return
            outcome["fuse_id"] = None
            outcome["status"] = group.create_failure_reason or "create-failed"
            outcome["latency"] = self.sim.now - started

        self.create_group(root, members).on_live(live).on_notified(notified)
        deadline = started + max_wait_ms
        while "status" not in outcome and self.sim.now < deadline:
            if not self.sim.step():
                break
        if "status" not in outcome:
            return None, "no-completion", self.sim.now - started
        return (
            outcome.get("fuse_id"),  # type: ignore[return-value]
            str(outcome["status"]),
            float(outcome["latency"]),  # type: ignore[arg-type]
        )

    def crash(self, node_id: NodeId) -> None:
        self.net.crash_host(node_id)

    def disconnect(self, node_id: NodeId) -> None:
        self.net.disconnect_host(node_id)

    def restart(self, node_id: NodeId) -> None:
        """Recover a crashed node and rejoin it into the overlay."""
        self.net.recover_host(node_id)
        node = self.overlay_nodes[node_id]
        if not node.joined:
            node.join()

    def __repr__(self) -> str:
        return (
            f"FuseWorld(nodes={len(self.node_ids)}, t={self.sim.now / 1000.0:.1f}s, "
            f"members={self.overlay.member_count})"
        )


def make_world(backend: str = "sim", **kwargs):
    """Build a world on the requested backend with one call.

    ``backend="sim"`` returns a :class:`FuseWorld` on the deterministic
    simulator; ``backend="live"`` returns a
    :class:`repro.net.backends.liveworld.LiveWorld` running real asyncio
    UDP sockets (imported lazily so the simulated path never touches the
    backend package).  Both accept ``n_nodes``/``seed``/``overlay_config``/
    ``fuse_config``; backend-specific keywords (``mercator``, ``trace``,
    ``liveness_lanes`` vs ``time_scale``, ``transport``) pass through.
    """
    if backend == "sim":
        return FuseWorld(**kwargs)
    if backend == "live":
        from repro.net.backends.liveworld import LiveWorld

        return LiveWorld(**kwargs)
    raise ValueError(f"unknown backend {backend!r} (choose 'sim' or 'live')")

"""§7.5 (first experiment) — steady-state background load with and
without FUSE groups.

Paper numbers: a 400-node overlay generated 337 messages/second over a
10-minute window with no FUSE groups and 338 messages/second with 400
FUSE groups of 10 members each — i.e. FUSE added *no* messages, only a
20-byte hash piggybacked on existing pings.  This driver measures the
same two windows and also reports bytes/second so the hash cost is
visible.

Engine decomposition: a two-point grid over ``fuse_groups`` (off/on).
Both trials of a base seed build the *identical* world (seeded from the
base seed), so the with-FUSE window differs from the without-FUSE window
only by the live groups — the paper's same-deployment comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.engine import Measurements, ResultSet, Sweep, TrialSpec, run_trials
from repro.experiments.report import format_table
from repro.world import FuseWorld

EXPERIMENT = "steady-state"


@dataclass
class SteadyStateConfig:
    n_nodes: int = 100
    n_groups: int = 100
    group_size: int = 10
    window_minutes: float = 10.0
    seed: int = 5

    @classmethod
    def paper_scale(cls) -> "SteadyStateConfig":
        return cls(n_nodes=400, n_groups=400)


class SteadyStateResult:
    def __init__(self) -> None:
        self.msgs_per_sec_without: float = 0.0
        self.msgs_per_sec_with: float = 0.0
        self.bytes_per_sec_without: float = 0.0
        self.bytes_per_sec_with: float = 0.0
        self.groups_created: int = 0
        self.result_set: Optional[ResultSet] = None

    @property
    def message_overhead_pct(self) -> float:
        if self.msgs_per_sec_without == 0:
            return 0.0
        return 100.0 * (self.msgs_per_sec_with - self.msgs_per_sec_without) / self.msgs_per_sec_without

    def rows(self) -> List[Tuple]:
        return [
            ("msgs/sec, overlay only", self.msgs_per_sec_without),
            ("msgs/sec, + FUSE groups", self.msgs_per_sec_with),
            ("message overhead %", self.message_overhead_pct),
            ("bytes/sec, overlay only", self.bytes_per_sec_without),
            ("bytes/sec, + FUSE groups", self.bytes_per_sec_with),
            ("groups created", self.groups_created),
        ]

    def format_table(self) -> str:
        return format_table(
            ["metric", "value"],
            self.rows(),
            title="§7.5 — steady-state load (paper: 337 vs 338 msgs/s — "
            "FUSE adds no messages, only the 20-byte hash)",
        )


def _trial(spec: TrialSpec) -> Measurements:
    config: SteadyStateConfig = spec.context
    window_ms = config.window_minutes * 60_000.0
    # Seed from base_seed: the FUSE-on and FUSE-off arms measure the same
    # deployment, differing only in the live groups.
    world = FuseWorld(n_nodes=config.n_nodes, seed=spec.base_seed)
    world.bootstrap()

    groups_created = 0
    if spec["fuse_groups"]:
        rng = world.sim.rng.stream("steady-workload")
        for _ in range(config.n_groups):
            root, *members = rng.sample(world.node_ids, config.group_size)
            _fid, status, _ = world.create_group_sync(root, members)
            if status == "ok":
                groups_created += 1
        world.run_for_minutes(1.0)  # let InstallChecking traffic drain

    world.sim.metrics.reset_counters()
    world.run_for(window_ms)
    return {
        "msgs_per_sec": world.sim.metrics.counter("net.messages").rate_per_second(window_ms),
        "bytes_per_sec": world.sim.metrics.counter("net.bytes").rate_per_second(window_ms),
        "groups_created": groups_created,
    }


def sweep(config: SteadyStateConfig, seeds: Optional[Sequence[int]] = None) -> Sweep:
    return Sweep(
        grid={"fuse_groups": (False, True)},
        seeds=tuple(seeds) if seeds else (config.seed,),
    )


def run(
    config: Optional[SteadyStateConfig] = None,
    *,
    jobs: int = 1,
    seeds: Optional[Sequence[int]] = None,
) -> SteadyStateResult:
    config = config or SteadyStateConfig()
    specs = sweep(config, seeds).expand(EXPERIMENT, context=config)
    rs = ResultSet(run_trials(_trial, specs, jobs=jobs), experiment=EXPERIMENT)
    result = SteadyStateResult()
    without = rs.where(fuse_groups=False)
    with_groups = rs.where(fuse_groups=True)
    result.msgs_per_sec_without = without.mean("msgs_per_sec")
    result.bytes_per_sec_without = without.mean("bytes_per_sec")
    result.msgs_per_sec_with = with_groups.mean("msgs_per_sec")
    result.bytes_per_sec_with = with_groups.mean("bytes_per_sec")
    result.groups_created = int(rs.total("groups_created"))
    result.result_set = rs
    return result

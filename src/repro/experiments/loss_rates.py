"""Fig 11 — CDFs of per-route loss rates under per-link packet loss.

Paper setup: per-link loss of 0.4 %, 0.8 %, and 1.6 % over routes of
2-43 router hops (median 15) compounds into median end-to-end route loss
of 5.8 %, 11.4 % and 21.5 % respectively.  This experiment samples host
pairs, computes each route's compound loss, and reports the CDFs — a
direct check that our topology's hop-count distribution reproduces the
paper's loss-compounding regime, which Fig 12's false-positive behaviour
then depends on.

Engine decomposition: one trial per per-link loss rate.  Every trial of a
base seed rebuilds the *same* topology and pair sample (the topology is
seeded from the base seed, not the per-trial seed) so the three CDFs stay
comparable — exactly as if one topology had been measured three times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine import Measurements, ResultSet, Sweep, TrialSpec, run_trials
from repro.experiments.report import format_cdf, format_table
from repro.net import MercatorConfig, Network, build_mercator_topology
from repro.sim import CdfSeries, Simulator

EXPERIMENT = "fig11"


@dataclass
class LossRatesConfig:
    n_hosts: int = 400
    n_pairs: int = 800
    per_link_loss: Sequence[float] = (0.004, 0.008, 0.016)
    seed: int = 7

    @classmethod
    def paper_scale(cls) -> "LossRatesConfig":
        return cls()  # this experiment is cheap enough to run full-scale


class LossRatesResult:
    def __init__(self) -> None:
        self.route_loss: Dict[float, CdfSeries] = {}
        self.hop_counts = CdfSeries("hops")
        self.result_set: Optional[ResultSet] = None

    def rows(self) -> List[Tuple]:
        out = []
        for per_link in sorted(self.route_loss):
            cdf = self.route_loss[per_link]
            out.append(
                (
                    f"{per_link * 100:.1f}%",
                    100.0 * cdf.value_at_fraction(0.25),
                    100.0 * cdf.value_at_fraction(0.5),
                    100.0 * cdf.value_at_fraction(0.75),
                    100.0 * cdf.value_at_fraction(0.95),
                )
            )
        return out

    def format_table(self) -> str:
        table = format_table(
            ["per-link loss", "route p25 %", "route median %", "route p75 %", "route p95 %"],
            self.rows(),
            title="Fig 11 — per-route loss CDFs "
            "(paper medians: 5.8% / 11.4% / 21.5%; median route 15 hops)",
        )
        table += "\nhops: median %.0f, min %.0f, max %.0f" % (
            self.hop_counts.value_at_fraction(0.5),
            self.hop_counts.value_at_fraction(0.001),
            self.hop_counts.value_at_fraction(1.0),
        )
        for per_link, cdf in sorted(self.route_loss.items()):
            table += "\n" + format_cdf(
                f"route-loss@{per_link * 100:.1f}%",
                [(100.0 * v, f) for v, f in cdf.points(40)],
            )
        return table


def _trial(spec: TrialSpec) -> Measurements:
    config: LossRatesConfig = spec.context
    per_link = spec["per_link_loss"]
    # Seed from base_seed so every loss rate measures the same topology
    # and pair sample (route-loss compounding is deterministic per route).
    sim = Simulator(seed=spec.base_seed)
    topo, hosts = build_mercator_topology(
        MercatorConfig.scaled_for_hosts(config.n_hosts), sim.rng.stream("topology")
    )
    net = Network(sim, topo)
    rng = sim.rng.stream("loss-pairs")
    topo.set_uniform_loss(per_link)
    route_loss: List[float] = []
    hops: List[float] = []
    for _ in range(config.n_pairs):
        a, b = rng.sample(hosts, 2)
        route = net.routes.route(a, b)
        hops.append(route.hop_count)
        route_loss.append(route.current_loss())
    return {"route_loss": route_loss, "hops": hops}


def sweep(config: LossRatesConfig, seeds: Optional[Sequence[int]] = None) -> Sweep:
    return Sweep(
        grid={"per_link_loss": tuple(config.per_link_loss)},
        seeds=tuple(seeds) if seeds else (config.seed,),
    )


def run(
    config: Optional[LossRatesConfig] = None,
    *,
    jobs: int = 1,
    seeds: Optional[Sequence[int]] = None,
) -> LossRatesResult:
    config = config or LossRatesConfig()
    specs = sweep(config, seeds).expand(EXPERIMENT, context=config)
    rs = ResultSet(run_trials(_trial, specs, jobs=jobs), experiment=EXPERIMENT)
    result = LossRatesResult()
    for per_link, subset in rs.group_by("per_link_loss").items():
        result.route_loss[per_link] = subset.cdf("route_loss", f"loss-{per_link}")
    # All trials of one seed share a pair sample; use the first grid
    # point's trials so hops are not multiple-counted per loss rate.
    first_axis = rs.axis("per_link_loss")
    if first_axis:
        result.hop_counts = rs.where(per_link_loss=first_axis[0]).cdf("hops", "hops")
    result.result_set = rs
    return result

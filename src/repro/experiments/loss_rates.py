"""Fig 11 — CDFs of per-route loss rates under per-link packet loss.

Paper setup: per-link loss of 0.4 %, 0.8 %, and 1.6 % over routes of
2-43 router hops (median 15) compounds into median end-to-end route loss
of 5.8 %, 11.4 % and 21.5 % respectively.  This experiment samples host
pairs, computes each route's compound loss, and reports the CDFs — a
direct check that our topology's hop-count distribution reproduces the
paper's loss-compounding regime, which Fig 12's false-positive behaviour
then depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.report import format_cdf, format_table
from repro.net import MercatorConfig, Network, build_mercator_topology
from repro.sim import CdfSeries, Simulator


@dataclass
class LossRatesConfig:
    n_hosts: int = 400
    n_pairs: int = 800
    per_link_loss: Sequence[float] = (0.004, 0.008, 0.016)
    seed: int = 7

    @classmethod
    def paper_scale(cls) -> "LossRatesConfig":
        return cls()  # this experiment is cheap enough to run full-scale


class LossRatesResult:
    def __init__(self) -> None:
        self.route_loss: Dict[float, CdfSeries] = {}
        self.hop_counts = CdfSeries("hops")

    def rows(self) -> List[Tuple]:
        out = []
        for per_link in sorted(self.route_loss):
            cdf = self.route_loss[per_link]
            out.append(
                (
                    f"{per_link * 100:.1f}%",
                    100.0 * cdf.value_at_fraction(0.25),
                    100.0 * cdf.value_at_fraction(0.5),
                    100.0 * cdf.value_at_fraction(0.75),
                    100.0 * cdf.value_at_fraction(0.95),
                )
            )
        return out

    def format_table(self) -> str:
        table = format_table(
            ["per-link loss", "route p25 %", "route median %", "route p75 %", "route p95 %"],
            self.rows(),
            title="Fig 11 — per-route loss CDFs "
            "(paper medians: 5.8% / 11.4% / 21.5%; median route 15 hops)",
        )
        table += "\nhops: median %.0f, min %.0f, max %.0f" % (
            self.hop_counts.value_at_fraction(0.5),
            self.hop_counts.value_at_fraction(0.001),
            self.hop_counts.value_at_fraction(1.0),
        )
        for per_link, cdf in sorted(self.route_loss.items()):
            table += "\n" + format_cdf(
                f"route-loss@{per_link * 100:.1f}%",
                [(100.0 * v, f) for v, f in cdf.points(40)],
            )
        return table


def run(config: LossRatesConfig = LossRatesConfig()) -> LossRatesResult:
    sim = Simulator(seed=config.seed)
    topo, hosts = build_mercator_topology(
        MercatorConfig.scaled_for_hosts(config.n_hosts), sim.rng.stream("topology")
    )
    net = Network(sim, topo)
    rng = sim.rng.stream("loss-pairs")
    result = LossRatesResult()
    pairs = []
    for _ in range(config.n_pairs):
        a, b = rng.sample(hosts, 2)
        route = net.routes.route(a, b)
        pairs.append(route)
        result.hop_counts.add(route.hop_count)
    for per_link in config.per_link_loss:
        topo.set_uniform_loss(per_link)
        cdf = result.route_loss.setdefault(per_link, CdfSeries(f"loss-{per_link}"))
        for route in pairs:
            cdf.add(route.current_loss())
    topo.set_uniform_loss(0.0)
    return result

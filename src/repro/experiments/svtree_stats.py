"""§4 — FUSE group size statistics under the SV-tree workload.

Paper numbers: simulating a 2000-subscriber tree on a 16,000-node overlay
needed an average of 2.9 members per FUSE group with a maximum of 13, and
the distribution depends only weakly on tree size (it grows slowly with
overlay size).  Group size is 2 (link endpoints) plus the RPF nodes the
content link bypasses, so this statistic is a direct probe of overlay
route lengths between subscribers and their attach points.

Engine decomposition: one trial per base seed; seed replicas merge their
group-size samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.apps.svtree import SVTreeService
from repro.engine import Measurements, ResultSet, Sweep, TrialSpec, run_trials
from repro.experiments.report import format_table
from repro.sim.metrics import Histogram
from repro.world import FuseWorld

EXPERIMENT = "svtree"


@dataclass
class SvtreeStatsConfig:
    n_nodes: int = 100
    n_topics: int = 4
    subscribers_per_topic: int = 25
    seed: int = 9

    @classmethod
    def paper_scale(cls) -> "SvtreeStatsConfig":
        # The paper's 16k-node simulation; expensive but runnable.
        return cls(n_nodes=16_000, n_topics=1, subscribers_per_topic=2_000)


class SvtreeStatsResult:
    def __init__(self) -> None:
        self.sizes = Histogram("svtree-group-sizes")
        self.subscriptions = 0
        self.delivered_ok = 0
        self.result_set: Optional[ResultSet] = None

    def rows(self) -> List[Tuple]:
        if not len(self.sizes):
            return [("groups", 0)]
        s = self.sizes.summary()
        return [
            ("groups created", int(s["count"])),
            ("mean size", s["mean"]),
            ("median size", s["p50"]),
            ("max size", s["max"]),
            ("subscriptions", self.subscriptions),
        ]

    def format_table(self) -> str:
        return format_table(
            ["metric", "value"],
            self.rows(),
            title="§4 — SV-tree FUSE group sizes "
            "(paper: mean 2.9, max 13 at 2000 subscribers / 16k nodes)",
        )


def _trial(spec: TrialSpec) -> Measurements:
    config: SvtreeStatsConfig = spec.context
    world = FuseWorld(n_nodes=config.n_nodes, seed=spec.seed)
    world.bootstrap()
    services = {nid: SVTreeService(world.fuse(nid)) for nid in world.node_ids}
    rng = world.sim.rng.stream("svtree-workload")
    subscriptions = 0

    for t in range(config.n_topics):
        topic = f"topic-{t}"
        subscribers = rng.sample(world.node_ids, config.subscribers_per_topic)
        for sub in subscribers:
            services[sub].subscribe(topic, lambda _t, _e: None)
            subscriptions += 1
        world.run_for_minutes(1.0)
    world.run_for_minutes(2.0)

    sizes: List[float] = []
    for service in services.values():
        sizes.extend(service.group_sizes)
    return {"sizes": sizes, "subscriptions": subscriptions}


def sweep(config: SvtreeStatsConfig, seeds: Optional[Sequence[int]] = None) -> Sweep:
    return Sweep(seeds=tuple(seeds) if seeds else (config.seed,))


def run(
    config: Optional[SvtreeStatsConfig] = None,
    *,
    jobs: int = 1,
    seeds: Optional[Sequence[int]] = None,
) -> SvtreeStatsResult:
    config = config or SvtreeStatsConfig()
    specs = sweep(config, seeds).expand(EXPERIMENT, context=config)
    rs = ResultSet(run_trials(_trial, specs, jobs=jobs), experiment=EXPERIMENT)
    result = SvtreeStatsResult()
    result.sizes = rs.histogram("sizes", "svtree-group-sizes")
    result.subscriptions = int(rs.total("subscriptions"))
    result.result_set = rs
    return result

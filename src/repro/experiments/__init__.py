"""Experiment drivers reproducing every figure and table in the paper's
evaluation (§7) plus the §4 application statistics.

Each module exposes a config dataclass (with a scaled-down default that
runs in seconds and a ``paper_scale()`` preset matching the paper's
parameters), a module-level trial function plus ``sweep()`` declaration
for the shared trial engine (:mod:`repro.engine`), and a
``run(config, *, jobs=1, seeds=None)`` function returning a result
object with ``rows()``, ``format_table()``, and a ``result_set``
(:class:`repro.engine.ResultSet`) for JSON archiving.  ``jobs`` fans the
sweep's independent trials across worker processes with aggregate
results identical to a serial run.  The benchmarks/ directory wraps each
driver in a pytest-benchmark target; EXPERIMENTS.md records the
paper-vs-measured comparison.

| Paper result | Module |
|---|---|
| Fig 6  RPC latency CDFs           | :mod:`repro.experiments.calibration` |
| Fig 7  group creation latency     | :mod:`repro.experiments.creation_latency` |
| Fig 8  signalled notification     | :mod:`repro.experiments.notification_latency` |
| Fig 9  crash notification CDF     | :mod:`repro.experiments.crash_notification` |
| Fig 10 churn message load         | :mod:`repro.experiments.churn` |
| Fig 11 route loss CDFs            | :mod:`repro.experiments.loss_rates` |
| Fig 12 false positives vs loss    | :mod:`repro.experiments.false_positives` |
| §7.5  steady-state load           | :mod:`repro.experiments.steady_state` |
| §4    SV-tree group sizes         | :mod:`repro.experiments.svtree_stats` |
| §3    agreement latency bound     | :mod:`repro.experiments.agreement` |
| §5.1  topology ablation           | :mod:`repro.experiments.ablation` |
"""

from repro.experiments.report import format_cdf, format_table

__all__ = ["format_cdf", "format_table"]

"""Fig 10 — message cost of overlay churn, with and without FUSE groups.

Paper setup: 200 stable nodes plus 200 churning nodes killed/restarted so
that ~100 churners are alive on average (system half-life 30 minutes —
7x harsher than the measured OverNet churn).  100 FUSE groups of 10 live
on the stable nodes.  Three measurements:

* stable overlay, no churn, no FUSE  -> 238 msg/s (at 300 nodes)
* churning overlay, no FUSE          -> 270 msg/s (+13 %)
* churning overlay + FUSE groups     -> 523 msg/s (+94 % over churn-only)

The FUSE increase is group repair traffic: churn moves overlay routes, so
liveness-checking trees must be reinstalled, repeatedly.  The shape to
reproduce: churn alone adds a modest percentage; churn + FUSE roughly
doubles the message rate; and no FUSE group suffers a false positive.

Engine decomposition: the three measurements are a three-point grid over
``scenario`` — each builds its own world, so they regenerate concurrently
under ``--jobs``.

Since the scenario layer landed, this module is a thin wrapper: each
grid point builds the matching declarative scenario
(:func:`repro.scenarios.fig10_scenario` — a Poisson churn track with the
paper's pre-killed steady-state population, plus a root-observed group
workload for the ``churn-fuse`` variant) and executes it.  Stream names
and track order replicate the original hand-written trial's RNG draw
sequence, so measurements are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.engine import Measurements, ResultSet, Sweep, TrialSpec, run_trials
from repro.experiments.report import format_table
from repro.scenarios import execute, fig10_scenario

EXPERIMENT = "fig10"

SCENARIOS = ("stable", "churn", "churn-fuse")


@dataclass
class ChurnConfig:
    n_stable: int = 50
    n_churning: int = 50
    n_groups: int = 25
    group_size: int = 10
    window_minutes: float = 10.0
    half_life_minutes: float = 30.0
    seed: int = 6

    @classmethod
    def paper_scale(cls) -> "ChurnConfig":
        return cls(n_stable=200, n_churning=200, n_groups=100, window_minutes=10.0)


class ChurnResult:
    def __init__(self) -> None:
        self.stable_msgs_per_sec: float = 0.0
        self.churn_msgs_per_sec: float = 0.0
        self.churn_fuse_msgs_per_sec: float = 0.0
        self.false_positives: int = 0
        self.groups_created: int = 0
        self.result_set: Optional[ResultSet] = None

    def rows(self) -> List[Tuple]:
        churn_pct = (
            100.0 * (self.churn_msgs_per_sec - self.stable_msgs_per_sec) / self.stable_msgs_per_sec
            if self.stable_msgs_per_sec
            else 0.0
        )
        fuse_pct = (
            100.0 * (self.churn_fuse_msgs_per_sec - self.churn_msgs_per_sec) / self.churn_msgs_per_sec
            if self.churn_msgs_per_sec
            else 0.0
        )
        return [
            ("no churn (msgs/s)", self.stable_msgs_per_sec),
            ("with churn (msgs/s)", self.churn_msgs_per_sec),
            ("churn with FUSE (msgs/s)", self.churn_fuse_msgs_per_sec),
            ("churn overhead %", churn_pct),
            ("FUSE-under-churn overhead %", fuse_pct),
            ("false positives", self.false_positives),
            ("groups", self.groups_created),
        ]

    def format_table(self) -> str:
        return format_table(
            ["metric", "value"],
            self.rows(),
            title="Fig 10 — churn message load (paper: 238 / 270 / 523 msg/s; "
            "churn +13%, FUSE under churn +94%, zero false positives)",
        )


def _trial(spec: TrialSpec) -> Measurements:
    config: ChurnConfig = spec.context
    m = execute(fig10_scenario(config, spec["scenario"]), seed=spec.seed)
    return {
        "msgs_per_sec": m["msgs_per_sec"],
        # Stable FUSE groups must survive churn: any notified group is a
        # false positive (groups only exist in the churn-fuse variant).
        "false_positives": m["spurious_groups"],
        "groups_created": m["groups_created"],
    }


def sweep(config: ChurnConfig, seeds: Optional[Sequence[int]] = None) -> Sweep:
    return Sweep(
        grid={"scenario": SCENARIOS},
        seeds=tuple(seeds) if seeds else (config.seed,),
    )


def run(
    config: Optional[ChurnConfig] = None,
    *,
    jobs: int = 1,
    seeds: Optional[Sequence[int]] = None,
) -> ChurnResult:
    config = config or ChurnConfig()
    specs = sweep(config, seeds).expand(EXPERIMENT, context=config)
    rs = ResultSet(run_trials(_trial, specs, jobs=jobs), experiment=EXPERIMENT)
    result = ChurnResult()
    result.stable_msgs_per_sec = rs.where(scenario="stable").mean("msgs_per_sec")
    result.churn_msgs_per_sec = rs.where(scenario="churn").mean("msgs_per_sec")
    result.churn_fuse_msgs_per_sec = rs.where(scenario="churn-fuse").mean("msgs_per_sec")
    result.false_positives = int(rs.total("false_positives"))
    result.groups_created = int(rs.total("groups_created"))
    result.result_set = rs
    return result

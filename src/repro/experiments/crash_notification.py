"""Fig 9 — combined latency of ping timeout, repair timeout, and failure
notification after node crashes.

Paper setup: 400 FUSE groups of size 5 on 400 nodes; the network is then
disconnected on one physical machine, taking down 10 of the 400 virtual
nodes.  42 groups contained a disconnected member; the 163 notifications
delivered to their remaining live members form the reported CDF.

Expected shape (§7.4): the ping interval (60 s) + ping timeout (20 s)
put first detection uniformly in 20-80 s; the repair attempt then has to
fail (member timeout 1 min, root timeout 2 min) before HardNotifications
flow, so the CDF spans roughly 0.5 to 4 minutes and is dominated by the
two timeouts rather than by propagation.

Engine decomposition: one trial per base seed — each replica runs the
whole disconnect scenario in its own world, and replicas' notification
CDFs merge.  ``run(..., seeds=[...])`` (or ``--seeds`` on the CLI) turns
this figure into an embarrassingly parallel fan-out.

Since the scenario layer landed, this module is a thin wrapper: the
trial builds the declarative ``paper-fig9`` scenario
(:func:`repro.scenarios.fig9_scenario` — a group workload plus a
disconnect wave sharing the ``crash-workload`` RNG stream) and executes
it.  The scenario reproduces the original hand-written loop's draw
order and event schedule exactly, so measurements are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.engine import Measurements, ResultSet, Sweep, TrialSpec, run_trials
from repro.experiments.report import format_cdf, format_table
from repro.scenarios import execute, fig9_scenario
from repro.sim import CdfSeries

EXPERIMENT = "fig9"


@dataclass
class CrashConfig:
    n_nodes: int = 100
    n_groups: int = 100
    group_size: int = 5
    n_disconnected: int = 4
    observe_minutes: float = 12.0
    seed: int = 4

    @classmethod
    def paper_scale(cls) -> "CrashConfig":
        return cls(n_nodes=400, n_groups=400, group_size=5, n_disconnected=10)


class CrashResult:
    def __init__(self) -> None:
        self.latency = CdfSeries("crash-notification-minutes")
        self.groups_created = 0
        self.groups_affected = 0
        self.notifications_expected = 0
        self.notifications_delivered = 0
        self.result_set: Optional[ResultSet] = None

    def rows(self) -> List[Tuple]:
        rows = [
            ("groups created", self.groups_created),
            ("groups with a disconnected member", self.groups_affected),
            ("notifications expected", self.notifications_expected),
            ("notifications delivered", self.notifications_delivered),
        ]
        if len(self.latency):
            for pct in (0.25, 0.5, 0.75, 0.95, 1.0):
                rows.append(
                    (f"latency p{int(pct * 100)} (min)", self.latency.value_at_fraction(pct))
                )
        return rows

    def format_table(self) -> str:
        table = format_table(
            ["metric", "value"],
            self.rows(),
            title="Fig 9 — crash notification latency "
            "(paper: 42/400 groups affected, 163 notifications, 0.3-4 min)",
        )
        if len(self.latency):
            table += "\n" + format_cdf("minutes-cdf", self.latency.points(40))
        return table


def _trial(spec: TrialSpec) -> Measurements:
    config: CrashConfig = spec.context
    m = execute(fig9_scenario(config), seed=spec.seed)
    return {
        "groups_created": m["groups_created"],
        "groups_affected": m["groups_affected"],
        "notifications_expected": m["notifications_expected"],
        "notifications_delivered": m["notifications_delivered"],
        "latency_min": m["latency_min"],
    }


def sweep(config: CrashConfig, seeds: Optional[Sequence[int]] = None) -> Sweep:
    return Sweep(seeds=tuple(seeds) if seeds else (config.seed,))


def run(
    config: Optional[CrashConfig] = None,
    *,
    jobs: int = 1,
    seeds: Optional[Sequence[int]] = None,
) -> CrashResult:
    config = config or CrashConfig()
    specs = sweep(config, seeds).expand(EXPERIMENT, context=config)
    rs = ResultSet(run_trials(_trial, specs, jobs=jobs), experiment=EXPERIMENT)
    result = CrashResult()
    result.latency = rs.cdf("latency_min", "crash-notification-minutes")
    result.groups_created = int(rs.total("groups_created"))
    result.groups_affected = int(rs.total("groups_affected"))
    result.notifications_expected = int(rs.total("notifications_expected"))
    result.notifications_delivered = int(rs.total("notifications_delivered"))
    result.result_set = rs
    return result

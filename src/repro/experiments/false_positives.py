"""Fig 12 — FUSE group failures caused by packet loss (false positives).

Paper setup: 20 groups of each size (2, 4, 8, 16, 32); per-link loss is
then enabled at 0.4 % / 0.8 % / 1.6 % (median route loss 5.8 % / 11.4 %
/ 21.5 %) and the system runs for 30 minutes.

Expected shape: *zero* failures at 0 % and 5.8 % median route loss — TCP
retransmission masks the drops entirely — while at 11.4 % and 21.5 %
some sockets break and a fraction of groups (growing with group size,
since bigger groups expose more links) receive notifications even though
every node is alive.

Engine decomposition: one trial per per-link loss rate (× seed) — each
builds its own lossy world and observes all group sizes over the run
window.  Per-size outcomes are reported as ``failed[size]``/``total[size]``
measurement pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine import Measurements, ResultSet, Sweep, TrialSpec, run_trials
from repro.experiments.report import format_table
from repro.world import FuseWorld

EXPERIMENT = "fig12"


@dataclass
class FalsePositivesConfig:
    n_nodes: int = 80
    group_sizes: Sequence[int] = (2, 4, 8, 16, 32)
    groups_per_size: int = 10
    per_link_loss: Sequence[float] = (0.0, 0.004, 0.008, 0.016)
    run_minutes: float = 30.0
    seed: int = 8

    @classmethod
    def paper_scale(cls) -> "FalsePositivesConfig":
        return cls(n_nodes=400, groups_per_size=20)


class FalsePositivesResult:
    def __init__(self) -> None:
        # per (per_link_loss, size): (groups_failed, groups_total)
        self.outcomes: Dict[Tuple[float, int], Tuple[int, int]] = {}
        self.median_route_loss: Dict[float, float] = {}
        self.result_set: Optional[ResultSet] = None

    def failure_pct(self, per_link: float, size: int) -> float:
        failed, total = self.outcomes.get((per_link, size), (0, 0))
        return 100.0 * failed / total if total else 0.0

    def rows(self) -> List[Tuple]:
        sizes = sorted({size for (_pl, size) in self.outcomes})
        out = []
        for per_link in sorted({pl for (pl, _s) in self.outcomes}):
            row = [
                f"{per_link * 100:.1f}%",
                f"{100 * self.median_route_loss.get(per_link, 0):.1f}%",
            ]
            row.extend(round(self.failure_pct(per_link, s), 1) for s in sizes)
            out.append(tuple(row))
        return out

    def format_table(self) -> str:
        sizes = sorted({size for (_pl, size) in self.outcomes})
        return format_table(
            ["per-link", "median route"] + [f"size {s} fail%" for s in sizes],
            self.rows(),
            title="Fig 12 — group failures due to packet loss "
            "(paper: none at 0/5.8% median route loss, some at 11.4/21.5%)",
        )


def _trial(spec: TrialSpec) -> Measurements:
    config: FalsePositivesConfig = spec.context
    per_link = spec["per_link_loss"]
    world = FuseWorld(n_nodes=config.n_nodes, seed=spec.seed)
    world.bootstrap()
    rng = world.sim.rng.stream("fp-workload")

    groups: Dict[int, List[str]] = {}
    for size in config.group_sizes:
        for _ in range(config.groups_per_size):
            root, *members = rng.sample(world.node_ids, size)
            fid, status, _ = world.create_group_sync(root, members)
            if status == "ok":
                groups.setdefault(size, []).append(fid)

    # Record the median route loss this per-link rate produces.
    world.topology.set_uniform_loss(per_link)
    sample_losses = []
    for _ in range(200):
        a, b = rng.sample(world.node_ids, 2)
        sample_losses.append(world.net.routes.route(a, b).current_loss())
    sample_losses.sort()
    median_route_loss = sample_losses[len(sample_losses) // 2]

    world.run_for_minutes(config.run_minutes)

    measurements: Measurements = {"median_route_loss": median_route_loss}
    # A group "failed" if any node — member or delegate — recorded a
    # notification for it: exactly what the world ledger indexes.
    notified = world.ledger.notified_group_ids()
    for size, fids in groups.items():
        failed = sum(1 for fid in fids if fid in notified)
        measurements[f"failed[{size}]"] = failed
        measurements[f"total[{size}]"] = len(fids)
    return measurements


def sweep(config: FalsePositivesConfig, seeds: Optional[Sequence[int]] = None) -> Sweep:
    return Sweep(
        grid={"per_link_loss": tuple(config.per_link_loss)},
        seeds=tuple(seeds) if seeds else (config.seed,),
    )


def run(
    config: Optional[FalsePositivesConfig] = None,
    *,
    jobs: int = 1,
    seeds: Optional[Sequence[int]] = None,
) -> FalsePositivesResult:
    config = config or FalsePositivesConfig()
    specs = sweep(config, seeds).expand(EXPERIMENT, context=config)
    rs = ResultSet(run_trials(_trial, specs, jobs=jobs), experiment=EXPERIMENT)
    result = FalsePositivesResult()
    for per_link, subset in rs.group_by("per_link_loss").items():
        result.median_route_loss[per_link] = subset.mean("median_route_loss")
        for size in config.group_sizes:
            failed = int(subset.total(f"failed[{size}]"))
            total = int(subset.total(f"total[{size}]"))
            if total:
                result.outcomes[(per_link, size)] = (failed, total)
    result.result_set = rs
    return result

"""§5/§5.1 ablations — liveness topology trade-offs and design switches.

Two studies the paper argues qualitatively, measured here:

1. **Topology scaling** (§5.1): steady-state message load as the number
   of groups grows, for the overlay implementation (shared pings — load
   flat in group count) versus direct spanning trees, all-to-all pinging
   (n² per group), and a central server (per-member flat, server
   bottleneck).

2. **Repair ablation** (§6 intro): with repair disabled, delegate
   failures convert directly into group failures; the paper chose repair
   precisely to avoid these false positives.

Engine decomposition: the topology study is a ``topology × n_groups``
grid (one world per cell), the repair study a two-point grid over
``repair_enabled`` — the widest fan-outs in the suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine import Measurements, ResultSet, Sweep, TrialSpec, run_trials
from repro.experiments.report import format_table
from repro.fuse.api import GroupLedger
from repro.fuse.config import FuseConfig
from repro.fuse.topologies import (
    AllToAllFuse,
    CentralServer,
    CentralServerFuse,
    DirectTreeFuse,
    TopologyConfig,
)
from repro.net import MercatorConfig, Network, build_mercator_topology
from repro.net.node import Host
from repro.sim import Simulator
from repro.world import FuseWorld

TOPOLOGY_EXPERIMENT = "ablation-topologies"
REPAIR_EXPERIMENT = "ablation-repair"

TOPOLOGIES = ("overlay (paper)", "direct-tree", "all-to-all", "central")


@dataclass
class TopologyAblationConfig:
    n_nodes: int = 40
    group_counts: Tuple[int, ...] = (5, 10, 20, 40)
    group_size: int = 6
    window_minutes: float = 10.0
    seed: int = 11


class TopologyAblationResult:
    def __init__(self) -> None:
        # (topology, n_groups) -> msgs/sec
        self.load: Dict[Tuple[str, int], float] = {}
        self.result_set: Optional[ResultSet] = None

    def rows(self) -> List[Tuple]:
        topologies = sorted({t for t, _ in self.load})
        counts = sorted({c for _, c in self.load})
        out = []
        for topology in topologies:
            row = [topology] + [round(self.load.get((topology, c), 0.0), 1) for c in counts]
            out.append(tuple(row))
        return out

    def format_table(self) -> str:
        counts = sorted({c for _, c in self.load})
        return format_table(
            ["topology"] + [f"{c} groups msg/s" for c in counts],
            self.rows(),
            title="§5.1 ablation — steady-state load vs group count "
            "(overlay: flat; direct/all-to-all: grows; all-to-all fastest growth)",
        )


def _run_overlay(n_nodes: int, n_groups: int, group_size: int,
                 window_ms: float, seed: int) -> float:
    """The paper's implementation: FUSE trees over the SkipNet overlay."""
    world = FuseWorld(n_nodes=n_nodes, seed=seed)
    world.bootstrap()
    rng = world.sim.rng.stream("ablation-groups")
    for _ in range(n_groups):
        root, *members = rng.sample(world.node_ids, group_size)
        world.create_group_sync(root, members)
    world.run_for_minutes(1.0)
    world.sim.metrics.reset_counters()
    world.run_for(window_ms)
    return world.sim.metrics.counter("net.messages").rate_per_second(window_ms)


def _run_alternative(kind: str, n_nodes: int, n_groups: int, group_size: int,
                     window_ms: float, seed: int) -> float:
    sim = Simulator(seed=seed)
    topo, host_ids = build_mercator_topology(
        MercatorConfig.scaled_for_hosts(n_nodes + 1), sim.rng.stream("topology")
    )
    net = Network(sim, topo)
    hosts = [Host(net, h) for h in host_ids[: n_nodes + 1]]
    cfg = TopologyConfig()
    # One ledger per deployment (as FuseWorld does) so handles see every
    # member's notifications, not just the local node's.
    ledger = GroupLedger(sim, net.faults)
    if kind == "central":
        CentralServer(hosts[-1], cfg)
        services = [
            CentralServerFuse(h, hosts[-1].node_id, cfg, ledger=ledger)
            for h in hosts[:-1]
        ]
    elif kind == "direct-tree":
        services = [DirectTreeFuse(h, cfg, ledger=ledger) for h in hosts[:-1]]
    else:
        services = [AllToAllFuse(h, cfg, ledger=ledger) for h in hosts[:-1]]
    rng = sim.rng.stream("ablation-groups")
    for _ in range(n_groups):
        indices = rng.sample(range(len(services)), group_size)
        root, members = indices[0], [hosts[i].node_id for i in indices[1:]]
        done = []
        handle = services[root].create_group(members)
        handle.on_live(lambda _g: done.append("ok"))
        handle.on_notified(lambda _g, reason: done.append(reason.value))
        while not done and sim.step():
            pass
    sim.metrics.reset_counters()
    sim.run(until=sim.now + window_ms)
    return sim.metrics.counter("net.messages").rate_per_second(window_ms)


def _topology_trial(spec: TrialSpec) -> Measurements:
    config: TopologyAblationConfig = spec.context
    kind = spec["topology"]
    n_groups = spec["n_groups"]
    window_ms = config.window_minutes * 60_000.0
    if kind == "overlay (paper)":
        rate = _run_overlay(
            config.n_nodes, n_groups, config.group_size, window_ms, spec.seed
        )
    else:
        rate = _run_alternative(
            kind, config.n_nodes, n_groups, config.group_size, window_ms, spec.seed
        )
    return {"msgs_per_sec": rate}


def topology_sweep(
    config: TopologyAblationConfig, seeds: Optional[Sequence[int]] = None
) -> Sweep:
    return Sweep(
        grid={"topology": TOPOLOGIES, "n_groups": tuple(config.group_counts)},
        seeds=tuple(seeds) if seeds else (config.seed,),
    )


def run_topology_ablation(
    config: Optional[TopologyAblationConfig] = None,
    *,
    jobs: int = 1,
    seeds: Optional[Sequence[int]] = None,
) -> TopologyAblationResult:
    config = config or TopologyAblationConfig()
    specs = topology_sweep(config, seeds).expand(TOPOLOGY_EXPERIMENT, context=config)
    rs = ResultSet(run_trials(_topology_trial, specs, jobs=jobs), experiment=TOPOLOGY_EXPERIMENT)
    result = TopologyAblationResult()
    for topology, by_topology in rs.group_by("topology").items():
        for n_groups, cell in by_topology.group_by("n_groups").items():
            result.load[(topology, n_groups)] = cell.mean("msgs_per_sec")
    result.result_set = rs
    return result


@dataclass
class RepairAblationConfig:
    n_nodes: int = 40
    n_groups: int = 12
    group_size: int = 4
    churn_events: int = 6
    observe_minutes: float = 12.0
    seed: int = 12


class RepairAblationResult:
    def __init__(self) -> None:
        self.false_positives: Dict[str, int] = {}
        self.groups: Dict[str, int] = {}
        self.result_set: Optional[ResultSet] = None

    def rows(self) -> List[Tuple]:
        return [
            (mode, self.groups.get(mode, 0), self.false_positives.get(mode, 0))
            for mode in sorted(self.groups)
        ]

    def format_table(self) -> str:
        return format_table(
            ["mode", "groups", "false positives"],
            self.rows(),
            title="§6 ablation — repair vs signal-on-delegate-failure "
            "(paper chose repair to avoid false positives)",
        )


def _repair_trial(spec: TrialSpec) -> Measurements:
    config: RepairAblationConfig = spec.context
    world = FuseWorld(
        n_nodes=config.n_nodes,
        seed=spec.seed,
        fuse_config=FuseConfig(repair_enabled=spec["repair_enabled"]),
    )
    world.bootstrap()
    rng = world.sim.rng.stream("repair-ablation")
    group_members: List[Tuple[str, List[int]]] = []
    stable = world.node_ids[: config.n_nodes // 2]
    for _ in range(config.n_groups):
        root, *members = rng.sample(stable, config.group_size)
        fid, status, _ = world.create_group_sync(root, members)
        if status == "ok":
            group_members.append((fid, [root] + members))
    world.run_for_minutes(1.0)
    fids = {fid for fid, _m in group_members}
    member_nodes = {m for _fid, members in group_members for m in members}
    for _ in range(config.churn_events):
        # Crash a node that is currently a *delegate* (holds checking
        # state for one of our groups without being a member of it).
        delegates = sorted(
            nid
            for nid in world.node_ids
            if nid not in member_nodes
            and world.host(nid).alive
            and any(f in fids for f in world.fuse(nid).groups)
        )
        if not delegates:
            world.run_for_minutes(config.observe_minutes / config.churn_events)
            continue
        victim = rng.choice(delegates)
        world.crash(victim)
        world.run_for_minutes(config.observe_minutes / config.churn_events)
        world.restart(victim)
        world.run_for_minutes(1.0)
    world.run_for_minutes(2.0)
    # Ledger accounting: a false positive is any group one of its own
    # members was notified about (no member was ever faulted here).
    false_positives = sum(
        1
        for fid, members in group_members
        if any(world.ledger.was_notified(fid, m) for m in members)
    )
    return {"groups": len(group_members), "false_positives": false_positives}


def repair_sweep(
    config: RepairAblationConfig, seeds: Optional[Sequence[int]] = None
) -> Sweep:
    return Sweep(
        grid={"repair_enabled": (True, False)},
        seeds=tuple(seeds) if seeds else (config.seed,),
    )


def run_repair_ablation(
    config: Optional[RepairAblationConfig] = None,
    *,
    jobs: int = 1,
    seeds: Optional[Sequence[int]] = None,
) -> RepairAblationResult:
    config = config or RepairAblationConfig()
    specs = repair_sweep(config, seeds).expand(REPAIR_EXPERIMENT, context=config)
    rs = ResultSet(run_trials(_repair_trial, specs, jobs=jobs), experiment=REPAIR_EXPERIMENT)
    result = RepairAblationResult()
    for enabled, subset in rs.group_by("repair_enabled").items():
        mode = "repair-enabled" if enabled else "repair-disabled"
        result.groups[mode] = int(subset.total("groups"))
        result.false_positives[mode] = int(subset.total("false_positives"))
    result.result_set = rs
    return result

"""§5/§5.1 ablations — liveness topology trade-offs and design switches.

Two studies the paper argues qualitatively, measured here:

1. **Topology scaling** (§5.1): steady-state message load as the number
   of groups grows, for the overlay implementation (shared pings — load
   flat in group count) versus direct spanning trees, all-to-all pinging
   (n² per group), and a central server (per-member flat, server
   bottleneck).

2. **Repair ablation** (§6 intro): with repair disabled, delegate
   failures convert directly into group failures; the paper chose repair
   precisely to avoid these false positives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.report import format_table
from repro.fuse.config import FuseConfig
from repro.fuse.topologies import (
    AllToAllFuse,
    CentralServer,
    CentralServerFuse,
    DirectTreeFuse,
    TopologyConfig,
)
from repro.net import MercatorConfig, Network, build_mercator_topology
from repro.net.node import Host
from repro.sim import Simulator
from repro.world import FuseWorld


@dataclass
class TopologyAblationConfig:
    n_nodes: int = 40
    group_counts: Tuple[int, ...] = (5, 10, 20, 40)
    group_size: int = 6
    window_minutes: float = 10.0
    seed: int = 11


class TopologyAblationResult:
    def __init__(self) -> None:
        # (topology, n_groups) -> msgs/sec
        self.load: Dict[Tuple[str, int], float] = {}

    def rows(self) -> List[Tuple]:
        topologies = sorted({t for t, _ in self.load})
        counts = sorted({c for _, c in self.load})
        out = []
        for topology in topologies:
            row = [topology] + [round(self.load.get((topology, c), 0.0), 1) for c in counts]
            out.append(tuple(row))
        return out

    def format_table(self) -> str:
        counts = sorted({c for _, c in self.load})
        return format_table(
            ["topology"] + [f"{c} groups msg/s" for c in counts],
            self.rows(),
            title="§5.1 ablation — steady-state load vs group count "
            "(overlay: flat; direct/all-to-all: grows; all-to-all fastest growth)",
        )


def _run_alternative(kind: str, n_nodes: int, n_groups: int, group_size: int,
                     window_ms: float, seed: int) -> float:
    sim = Simulator(seed=seed)
    topo, host_ids = build_mercator_topology(
        MercatorConfig.scaled_for_hosts(n_nodes + 1), sim.rng.stream("topology")
    )
    net = Network(sim, topo)
    hosts = [Host(net, h) for h in host_ids[: n_nodes + 1]]
    cfg = TopologyConfig()
    if kind == "central":
        CentralServer(hosts[-1], cfg)
        services = [CentralServerFuse(h, hosts[-1].node_id, cfg) for h in hosts[:-1]]
    elif kind == "direct-tree":
        services = [DirectTreeFuse(h, cfg) for h in hosts[:-1]]
    else:
        services = [AllToAllFuse(h, cfg) for h in hosts[:-1]]
    rng = sim.rng.stream("ablation-groups")
    created = []
    for _ in range(n_groups):
        indices = rng.sample(range(len(services)), group_size)
        root, members = indices[0], [hosts[i].node_id for i in indices[1:]]
        done = []
        services[root].create_group(members, lambda fid, st: done.append(st))
        while not done and sim.step():
            pass
        created.append(done and done[0] == "ok")
    sim.metrics.reset_counters()
    sim.run(until=sim.now + window_ms)
    return sim.metrics.counter("net.messages").rate_per_second(window_ms)


def run_topology_ablation(
    config: TopologyAblationConfig = TopologyAblationConfig(),
) -> TopologyAblationResult:
    result = TopologyAblationResult()
    window_ms = config.window_minutes * 60_000.0

    for n_groups in config.group_counts:
        # Overlay implementation (the paper's): load should stay flat.
        world = FuseWorld(n_nodes=config.n_nodes, seed=config.seed)
        world.bootstrap()
        rng = world.sim.rng.stream("ablation-groups")
        for _ in range(n_groups):
            root, *members = rng.sample(world.node_ids, config.group_size)
            world.create_group_sync(root, members)
        world.run_for_minutes(1.0)
        world.sim.metrics.reset_counters()
        world.run_for(window_ms)
        result.load[("overlay (paper)", n_groups)] = world.sim.metrics.counter(
            "net.messages"
        ).rate_per_second(window_ms)

        for kind in ("direct-tree", "all-to-all", "central"):
            result.load[(kind, n_groups)] = _run_alternative(
                kind, config.n_nodes, n_groups, config.group_size, window_ms, config.seed
            )
    return result


@dataclass
class RepairAblationConfig:
    n_nodes: int = 40
    n_groups: int = 12
    group_size: int = 4
    churn_events: int = 6
    observe_minutes: float = 12.0
    seed: int = 12


class RepairAblationResult:
    def __init__(self) -> None:
        self.false_positives: Dict[str, int] = {}
        self.groups: Dict[str, int] = {}

    def rows(self) -> List[Tuple]:
        return [
            (mode, self.groups.get(mode, 0), self.false_positives.get(mode, 0))
            for mode in sorted(self.groups)
        ]

    def format_table(self) -> str:
        return format_table(
            ["mode", "groups", "false positives"],
            self.rows(),
            title="§6 ablation — repair vs signal-on-delegate-failure "
            "(paper chose repair to avoid false positives)",
        )


def run_repair_ablation(
    config: RepairAblationConfig = RepairAblationConfig(),
) -> RepairAblationResult:
    result = RepairAblationResult()
    for mode, repair in [("repair-enabled", True), ("repair-disabled", False)]:
        world = FuseWorld(
            n_nodes=config.n_nodes,
            seed=config.seed,
            fuse_config=FuseConfig(repair_enabled=repair),
        )
        world.bootstrap()
        rng = world.sim.rng.stream("repair-ablation")
        group_members: List[Tuple[str, List[int]]] = []
        stable = world.node_ids[: config.n_nodes // 2]
        for _ in range(config.n_groups):
            root, *members = rng.sample(stable, config.group_size)
            fid, status, _ = world.create_group_sync(root, members)
            if status == "ok":
                group_members.append((fid, [root] + members))
        result.groups[mode] = len(group_members)
        world.run_for_minutes(1.0)
        fids = {fid for fid, _m in group_members}
        member_nodes = {m for _fid, members in group_members for m in members}
        for _ in range(config.churn_events):
            # Crash a node that is currently a *delegate* (holds checking
            # state for one of our groups without being a member of it).
            delegates = sorted(
                nid
                for nid in world.node_ids
                if nid not in member_nodes
                and world.host(nid).alive
                and any(f in fids for f in world.fuse(nid).groups)
            )
            if not delegates:
                world.run_for_minutes(config.observe_minutes / config.churn_events)
                continue
            victim = rng.choice(delegates)
            world.crash(victim)
            world.run_for_minutes(config.observe_minutes / config.churn_events)
            world.restart(victim)
            world.run_for_minutes(1.0)
        world.run_for_minutes(2.0)
        fp = sum(
            1
            for fid, members in group_members
            if any(fid in world.fuse(m).notifications for m in members)
        )
        result.false_positives[mode] = fp
    return result

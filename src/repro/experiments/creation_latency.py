"""Fig 7 — latency of FUSE group creation vs group size.

Paper setup: group sizes 2, 4, 8, 16, 32 with members uniformly
distributed over a 400-node overlay, 20 groups per size; reported as
25th/50th/75th percentile bars.  Creation latency grows with size because
a bigger group is more likely to include a member across a slow (T3)
path, and creation blocks on the furthest member; by size 32 the
quartiles converge because some slow path is almost certain.

Engine decomposition: one trial per group size (× seed); each trial
bootstraps its own world and creates ``groups_per_size`` groups, so the
five sizes regenerate concurrently under ``--jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine import Measurements, ResultSet, Sweep, TrialSpec, run_trials
from repro.experiments.report import format_table
from repro.sim.metrics import Histogram
from repro.world import FuseWorld

EXPERIMENT = "fig7"


@dataclass
class CreationConfig:
    n_nodes: int = 100
    group_sizes: Sequence[int] = (2, 4, 8, 16, 32)
    groups_per_size: int = 10
    seed: int = 2

    @classmethod
    def paper_scale(cls) -> "CreationConfig":
        return cls(n_nodes=400, groups_per_size=20)


class CreationResult:
    def __init__(self) -> None:
        self.by_size: Dict[int, Histogram] = {}
        self.failures: int = 0
        self.result_set: Optional[ResultSet] = None

    def rows(self) -> List[Tuple]:
        out = []
        for size in sorted(self.by_size):
            hist = self.by_size[size]
            s = hist.summary()
            out.append((size, s["p25"], s["p50"], s["p75"], s["max"], int(s["count"])))
        return out

    def format_table(self) -> str:
        return format_table(
            ["group size", "p25 ms", "median ms", "p75 ms", "max ms", "n"],
            self.rows(),
            title="Fig 7 — group creation latency vs size "
            "(paper: grows with size; ~0.4-3 s at 400 nodes)",
        )


def _trial(spec: TrialSpec) -> Measurements:
    config: CreationConfig = spec.context
    size = spec["group_size"]
    world = FuseWorld(n_nodes=config.n_nodes, seed=spec.seed)
    world.bootstrap()
    rng = world.sim.rng.stream("creation-workload")
    latencies: List[float] = []
    failures = 0
    for _ in range(config.groups_per_size):
        root, *members = rng.sample(world.node_ids, size)
        _fid, status, latency = world.create_group_sync(root, members)
        if status == "ok":
            latencies.append(latency)
        else:
            failures += 1
    return {"latency_ms": latencies, "failures": failures}


def sweep(config: CreationConfig, seeds: Optional[Sequence[int]] = None) -> Sweep:
    return Sweep(
        grid={"group_size": tuple(config.group_sizes)},
        seeds=tuple(seeds) if seeds else (config.seed,),
    )


def run(
    config: Optional[CreationConfig] = None,
    *,
    jobs: int = 1,
    seeds: Optional[Sequence[int]] = None,
) -> CreationResult:
    config = config or CreationConfig()
    specs = sweep(config, seeds).expand(EXPERIMENT, context=config)
    rs = ResultSet(run_trials(_trial, specs, jobs=jobs), experiment=EXPERIMENT)
    result = CreationResult()
    for size, subset in rs.group_by("group_size").items():
        result.by_size[size] = subset.histogram("latency_ms", f"create-{size}")
    result.failures = int(rs.total("failures"))
    result.result_set = rs
    return result

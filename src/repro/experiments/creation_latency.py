"""Fig 7 — latency of FUSE group creation vs group size.

Paper setup: group sizes 2, 4, 8, 16, 32 with members uniformly
distributed over a 400-node overlay, 20 groups per size; reported as
25th/50th/75th percentile bars.  Creation latency grows with size because
a bigger group is more likely to include a member across a slow (T3)
path, and creation blocks on the furthest member; by size 32 the
quartiles converge because some slow path is almost certain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.report import format_table
from repro.sim.metrics import Histogram
from repro.world import FuseWorld


@dataclass
class CreationConfig:
    n_nodes: int = 100
    group_sizes: Sequence[int] = (2, 4, 8, 16, 32)
    groups_per_size: int = 10
    seed: int = 2

    @classmethod
    def paper_scale(cls) -> "CreationConfig":
        return cls(n_nodes=400, groups_per_size=20)


class CreationResult:
    def __init__(self) -> None:
        self.by_size: Dict[int, Histogram] = {}
        self.failures: int = 0

    def rows(self) -> List[Tuple]:
        out = []
        for size in sorted(self.by_size):
            hist = self.by_size[size]
            s = hist.summary()
            out.append((size, s["p25"], s["p50"], s["p75"], s["max"], int(s["count"])))
        return out

    def format_table(self) -> str:
        return format_table(
            ["group size", "p25 ms", "median ms", "p75 ms", "max ms", "n"],
            self.rows(),
            title="Fig 7 — group creation latency vs size "
            "(paper: grows with size; ~0.4-3 s at 400 nodes)",
        )


def run(config: CreationConfig = CreationConfig()) -> CreationResult:
    world = FuseWorld(n_nodes=config.n_nodes, seed=config.seed)
    world.bootstrap()
    rng = world.sim.rng.stream("creation-workload")
    result = CreationResult()
    for size in config.group_sizes:
        hist = result.by_size.setdefault(size, Histogram(f"create-{size}"))
        for _ in range(config.groups_per_size):
            root, *members = rng.sample(world.node_ids, size)
            fid, status, latency = world.create_group_sync(root, members)
            if status == "ok":
                hist.add(latency)
            else:
                result.failures += 1
    return result

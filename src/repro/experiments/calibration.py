"""Fig 6 — RPC latency calibration.

The paper measured 2400 RPCs between random node pairs three ways: first
RPC on the cluster (pays TCP connection setup), second RPC on the cluster
(cached connection), and the simulator (no connection model).  The
second-RPC curve tracked the simulator closely and the first-RPC curve
sat roughly 2x higher; the median was ~130 ms with a T3 heavy tail.

Our equivalent three series over the same synthetic Mercator topology:
*first RPC* (connection setup + request/reply), *second RPC* (cached
connection), and *topology RTT* (the pure two-way path latency the
simulator curve represents).  The expected shape: second ≈ RTT and
first ≈ 2 × second.

Engine decomposition: one trial per base seed; each trial builds its own
world and measures ``n_pairs`` RPC pairs.  Extra seeds replicate the
whole measurement and their samples merge into the reported CDFs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.engine import Measurements, ResultSet, Sweep, TrialSpec, run_trials
from repro.experiments.report import format_cdf, format_table
from repro.net import MercatorConfig, Network, build_mercator_topology
from repro.net.node import Host, RpcReply, RpcRequest
from repro.sim import CdfSeries, Simulator

EXPERIMENT = "fig6"


class _CalPing(RpcRequest):
    size_bytes = 128


class _CalPong(RpcReply):
    size_bytes = 128


@dataclass
class CalibrationConfig:
    n_hosts: int = 120
    n_pairs: int = 400
    seed: int = 1

    @classmethod
    def paper_scale(cls) -> "CalibrationConfig":
        return cls(n_hosts=400, n_pairs=2400)


class CalibrationResult:
    def __init__(self, first: CdfSeries, second: CdfSeries, rtt: CdfSeries) -> None:
        self.first = first
        self.second = second
        self.rtt = rtt
        self.result_set: Optional[ResultSet] = None

    def rows(self) -> List[tuple]:
        out = []
        for pct in (0.25, 0.50, 0.75, 0.90, 0.99):
            out.append(
                (
                    f"p{int(pct * 100)}",
                    self.first.value_at_fraction(pct),
                    self.second.value_at_fraction(pct),
                    self.rtt.value_at_fraction(pct),
                )
            )
        return out

    def format_table(self) -> str:
        table = format_table(
            ["percentile", "first RPC ms", "second RPC ms", "topology RTT ms"],
            self.rows(),
            title="Fig 6 — RPC latency calibration (paper: median ~130 ms, first ~2x second)",
        )
        cdfs = "\n".join(
            format_cdf(name, series.points(max_points=60))
            for name, series in [
                ("first-rpc", self.first),
                ("second-rpc", self.second),
                ("topology-rtt", self.rtt),
            ]
        )
        return table + "\n" + cdfs


def _trial(spec: TrialSpec) -> Measurements:
    config: CalibrationConfig = spec.context
    sim = Simulator(seed=spec.seed)
    topo, host_ids = build_mercator_topology(
        MercatorConfig.scaled_for_hosts(config.n_hosts), sim.rng.stream("topology")
    )
    net = Network(sim, topo)
    hosts = {h: Host(net, h) for h in host_ids}
    for host in hosts.values():
        host.register_handler(_CalPing, lambda m, h=host: h.respond(m, _CalPong()))

    first: List[float] = []
    second: List[float] = []
    rtt: List[float] = []
    rng = sim.rng.stream("calibration-pairs")

    for _ in range(config.n_pairs):
        a, b = rng.sample(host_ids, 2)
        rtt.append(net.routes.rtt(a, b))
        for series in (first, second):
            start = sim.now
            done = []
            hosts[a].rpc(
                b,
                _CalPing(),
                timeout_ms=60_000.0,
                on_reply=lambda _r, s=series, t0=start: (done.append(1), s.append(sim.now - t0)),
                on_failure=lambda why: done.append(why),
            )
            while not done and sim.step():
                pass
            if not done:
                raise RuntimeError("calibration RPC never completed")
        # Forget the cached connection so the next pair's 'first' is cold.
        net._break_connection(a, b)

    return {"first_ms": first, "second_ms": second, "rtt_ms": rtt}


def sweep(config: CalibrationConfig, seeds: Optional[Sequence[int]] = None) -> Sweep:
    return Sweep(seeds=tuple(seeds) if seeds else (config.seed,))


def run(
    config: Optional[CalibrationConfig] = None,
    *,
    jobs: int = 1,
    seeds: Optional[Sequence[int]] = None,
) -> CalibrationResult:
    config = config or CalibrationConfig()
    specs = sweep(config, seeds).expand(EXPERIMENT, context=config)
    rs = ResultSet(run_trials(_trial, specs, jobs=jobs), experiment=EXPERIMENT)
    result = CalibrationResult(
        rs.cdf("first_ms", "first-rpc"),
        rs.cdf("second_ms", "second-rpc"),
        rs.cdf("rtt_ms", "topology-rtt"),
    )
    result.result_set = rs
    return result

"""§3 — distributed one-way agreement under adversarial fault schedules.

The paper's core guarantee is qualitative: whenever a failure condition
affects a group, *every* live member hears exactly one notification
within a bounded period of time, for any pattern of crashes, partitions,
and intransitive failures.  This experiment quantifies it on our
implementation: random groups, a randomized fault schedule drawn from
all fault classes, and a check that (a) every live member of every
affected group was notified, (b) no handler fired twice, and (c) the
worst-case latency stays within the analytic bound (detection window +
member repair timeout + root repair timeout + propagation slack).

Engine decomposition: one trial per base seed — each seed draws an
independent adversarial schedule, so ``--seeds 1,2,3,...`` fans the
verdict over many schedules concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.engine import Measurements, ResultSet, Sweep, TrialSpec, run_trials
from repro.experiments.report import format_table
from repro.sim.metrics import Histogram
from repro.world import FuseWorld

EXPERIMENT = "agreement"


@dataclass
class AgreementConfig:
    n_nodes: int = 60
    n_groups: int = 20
    group_size: int = 5
    n_faults: int = 6
    observe_minutes: float = 14.0
    seed: int = 10


class AgreementResult:
    def __init__(self, bound_minutes: float) -> None:
        self.bound_minutes = bound_minutes
        self.groups_affected = 0
        self.notifications = Histogram("agreement-latency-min")
        self.missed: List[Tuple[str, int]] = []
        self.duplicates: List[Tuple[str, int]] = []
        self.result_set: Optional[ResultSet] = None

    @property
    def agreement_holds(self) -> bool:
        return not self.missed and not self.duplicates

    def rows(self) -> List[Tuple]:
        rows = [
            ("groups affected", self.groups_affected),
            ("missed notifications", len(self.missed)),
            ("duplicate notifications", len(self.duplicates)),
            ("analytic bound (min)", self.bound_minutes),
        ]
        if len(self.notifications):
            rows.append(("worst observed latency (min)", self.notifications.max()))
            rows.append(("median latency (min)", self.notifications.pct(50)))
        return rows

    def format_table(self) -> str:
        return format_table(
            ["metric", "value"],
            self.rows(),
            title="§3 — one-way agreement under adversarial faults "
            "(paper: notifications never fail; bounded latency)",
        )


def _trial(spec: TrialSpec) -> Measurements:
    config: AgreementConfig = spec.context
    world = FuseWorld(n_nodes=config.n_nodes, seed=spec.seed)
    world.bootstrap()
    rng = world.sim.rng.stream("agreement-faults")

    # Analytic bound: one liveness window to detect, one member repair
    # timeout, one root repair timeout, and propagation slack.
    cfg = world.fuse_config
    silence = world.overlay.config.liveness_silence_ms
    bound_ms = (
        silence
        + cfg.member_repair_timeout_ms
        + cfg.root_repair_timeout_ms
        + cfg.repair_backoff_cap_ms
        + 30_000.0
    )

    groups: List[Tuple[str, List[int]]] = []
    for _ in range(config.n_groups):
        root, *members = rng.sample(world.node_ids, config.group_size)
        fid, status, _ = world.create_group_sync(root, members)
        if status != "ok":
            continue
        groups.append((fid, [root] + members))

    world.run_for_minutes(2.0)

    # Adversarial schedule: a mix of crashes, disconnects, intransitive
    # failures between group members, and a partial partition.
    t0 = world.now
    victims: Set[int] = set()
    all_members = sorted({m for _fid, members in groups for m in members})
    for _ in range(config.n_faults):
        kind = rng.choice(["crash", "disconnect", "intransitive", "partition"])
        when = world.now + rng.uniform(0.0, 120_000.0)
        if kind == "crash" and all_members:
            node = rng.choice(all_members)
            victims.add(node)
            world.sim.call_at(when, lambda n=node: world.net.crash_host(n))
        elif kind == "disconnect" and all_members:
            node = rng.choice(all_members)
            victims.add(node)
            world.sim.call_at(when, lambda n=node: world.net.disconnect_host(n))
        elif kind == "intransitive":
            _fid, members = groups[rng.randrange(len(groups))]
            a, b = rng.sample(members, 2)
            world.sim.call_at(when, lambda a=a, b=b: world.net.faults.block_pair(a, b))
            # The application notices on send and signals (§3.4).
            world.sim.call_at(
                when + 5_000.0, lambda fid=_fid, a=a: world.fuse(a).signal_failure(fid)
            )
        else:
            cut = rng.sample(world.node_ids, max(2, len(world.node_ids) // 6))
            world.sim.call_at(
                when, lambda cut=cut: world.net.faults.partition([cut])
            )
            heal = when + 180_000.0
            world.sim.call_at(heal, world.net.faults.heal_partition)

    world.run_for_minutes(config.observe_minutes)

    # Verdict: every live member of every affected group heard exactly
    # once — read straight off the world ledger (first-cause rows are the
    # deliveries; a second report for the same (group, member) lands in
    # ledger.duplicates, which is exactly the exactly-once violation).
    # Violations are encoded as flat "fid:node" strings to honor the
    # engine's scalar-or-flat-list measurement contract.
    ledger = world.ledger
    dup_pairs = {
        (rec.fuse_id, rec.node) for rec in ledger.duplicates if rec.role != "delegate"
    }
    groups_affected = 0
    missed: List[str] = []
    duplicates: List[str] = []
    latency_min: List[float] = []
    for fid, members in groups:
        times = ledger.notification_times(fid)
        affected = bool(times) or any(m in victims for m in members)
        if not affected:
            continue
        groups_affected += 1
        for node in members:
            if not world.host(node).alive:
                continue  # crashed processes are exempt (fail-stop)
            if node not in times:
                missed.append(f"{fid}:{node}")
            elif (fid, node) in dup_pairs:
                duplicates.append(f"{fid}:{node}")
            else:
                latency_min.append((times[node] - t0) / 60_000.0)
    return {
        "bound_minutes": bound_ms / 60_000.0,
        "groups_affected": groups_affected,
        "missed": missed,
        "duplicates": duplicates,
        "latency_min": latency_min,
    }


def sweep(config: AgreementConfig, seeds: Optional[Sequence[int]] = None) -> Sweep:
    return Sweep(seeds=tuple(seeds) if seeds else (config.seed,))


def run(
    config: Optional[AgreementConfig] = None,
    *,
    jobs: int = 1,
    seeds: Optional[Sequence[int]] = None,
) -> AgreementResult:
    config = config or AgreementConfig()
    specs = sweep(config, seeds).expand(EXPERIMENT, context=config)
    rs = ResultSet(run_trials(_trial, specs, jobs=jobs), experiment=EXPERIMENT)
    bounds = rs.scalars("bound_minutes")
    result = AgreementResult(bound_minutes=max(bounds) if bounds else 0.0)
    result.groups_affected = int(rs.total("groups_affected"))

    def decode(entry: str) -> Tuple[str, int]:
        fid, _, node = entry.rpartition(":")
        return (fid, int(node))

    result.missed = [decode(e) for e in rs.samples("missed")]
    result.duplicates = [decode(e) for e in rs.samples("duplicates")]
    result.notifications.extend(rs.samples("latency_min"))
    result.result_set = rs
    return result

"""Plain-text rendering of experiment results.

The paper's figures are bar charts and CDFs; benchmark runs print them as
aligned text tables / (value, fraction) series so results live in the
pytest output and EXPERIMENTS.md without a plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Monospace table with right-aligned numeric columns."""
    str_rows: List[List[str]] = []
    for row in rows:
        str_rows.append([_cell(value) for value in row])
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_cdf(name: str, points: Sequence[Tuple[float, float]], max_points: int = 12) -> str:
    """Compact text rendering of a CDF: value@fraction pairs."""
    if not points:
        return f"{name}: (empty)"
    step = max(1, len(points) // max_points)
    sampled = points[::step]
    if sampled[-1] != points[-1]:
        sampled = list(sampled) + [points[-1]]
    pairs = "  ".join(f"{v:.0f}@{f * 100:.0f}%" for v, f in sampled)
    return f"{name}: {pairs}"

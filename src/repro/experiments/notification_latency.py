"""Fig 8 — latency of explicitly signalled failure notification vs size.

Paper setup: for the same group sizes as Fig 7, a random member calls
SignalFailure; the time until members hear the notification is reported
(25th/50th/75th percentiles over 20 create/notify cycles per size).

Expected shape (§7.4): notification is much faster than creation —
one-way messages over cached TCP connections, taking effect per-member on
arrival; the median rises from size 2 to 8 (the extra member->root->member
forwarding hop), then creeps up at 16/32 from per-message serialization
at the root (the paper measured 2.8 ms per send).  Paper max: 1165 ms.

Engine decomposition: one trial per group size (× seed), each in its own
bootstrapped world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine import Measurements, ResultSet, Sweep, TrialSpec, run_trials
from repro.experiments.report import format_table
from repro.sim.metrics import Histogram
from repro.world import FuseWorld

EXPERIMENT = "fig8"


@dataclass
class NotificationConfig:
    n_nodes: int = 100
    group_sizes: Sequence[int] = (2, 4, 8, 16, 32)
    groups_per_size: int = 10
    seed: int = 3

    @classmethod
    def paper_scale(cls) -> "NotificationConfig":
        return cls(n_nodes=400, groups_per_size=20)


class NotificationResult:
    def __init__(self) -> None:
        # Latency until the LAST member hears (per group).
        self.group_latency: Dict[int, Histogram] = {}
        # Latency of each individual member notification.
        self.member_latency: Dict[int, Histogram] = {}
        self.max_observed_ms: float = 0.0
        self.result_set: Optional[ResultSet] = None

    def rows(self) -> List[Tuple]:
        out = []
        for size in sorted(self.group_latency):
            g = self.group_latency[size].summary()
            m = self.member_latency[size].summary()
            out.append((size, m["p25"], m["p50"], m["p75"], g["p50"], g["max"]))
        return out

    def format_table(self) -> str:
        return format_table(
            [
                "group size",
                "member p25 ms",
                "member p50 ms",
                "member p75 ms",
                "group p50 ms",
                "group max ms",
            ],
            self.rows(),
            title="Fig 8 — explicitly signalled notification latency "
            "(paper: well under creation latency; max 1165 ms)",
        )


def _trial(spec: TrialSpec) -> Measurements:
    config: NotificationConfig = spec.context
    size = spec["group_size"]
    world = FuseWorld(n_nodes=config.n_nodes, seed=spec.seed)
    world.bootstrap()
    rng = world.sim.rng.stream("notify-workload")
    member_ms: List[float] = []
    group_ms: List[float] = []
    for _ in range(config.groups_per_size):
        root, *members = rng.sample(world.node_ids, size)
        fid, status, _ = world.create_group_sync(root, members)
        if status != "ok":
            continue
        everyone = [root] + members
        # The world ledger records every member's first notification; the
        # live view replaces the per-node observer bookkeeping.
        times: Dict[int, float] = world.ledger.notification_times(fid)
        signaller = rng.choice(everyone)
        t0 = world.now
        world.fuse(signaller).signal_failure(fid)
        # Run until every member heard (bounded patience).
        deadline = t0 + 120_000.0
        while len(times) < len(everyone) and world.now < deadline:
            if not world.sim.step():
                break
        for node, when in times.items():
            if node != signaller:
                member_ms.append(when - t0)
        if times:
            group_ms.append(max(times.values()) - t0)
    return {"member_ms": member_ms, "group_ms": group_ms}


def sweep(config: NotificationConfig, seeds: Optional[Sequence[int]] = None) -> Sweep:
    return Sweep(
        grid={"group_size": tuple(config.group_sizes)},
        seeds=tuple(seeds) if seeds else (config.seed,),
    )


def run(
    config: Optional[NotificationConfig] = None,
    *,
    jobs: int = 1,
    seeds: Optional[Sequence[int]] = None,
) -> NotificationResult:
    config = config or NotificationConfig()
    specs = sweep(config, seeds).expand(EXPERIMENT, context=config)
    rs = ResultSet(run_trials(_trial, specs, jobs=jobs), experiment=EXPERIMENT)
    result = NotificationResult()
    for size, subset in rs.group_by("group_size").items():
        result.group_latency[size] = subset.histogram("group_ms", f"group-{size}")
        result.member_latency[size] = subset.histogram("member_ms", f"member-{size}")
    group_samples = rs.samples("group_ms")
    result.max_observed_ms = max(group_samples) if group_samples else 0.0
    result.result_set = rs
    return result

"""Command-line experiment runner.

Regenerate any paper figure/table from a shell::

    python -m repro.experiments.run fig7
    python -m repro.experiments.run fig9 --paper-scale
    python -m repro.experiments.run all

``--paper-scale`` uses the paper's parameters (400 nodes; 16,000 for the
§4 simulation) and can take minutes; the default scaled-down configs run
in seconds each.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Tuple

from repro.experiments import (
    ablation,
    agreement,
    calibration,
    crash_notification,
    creation_latency,
    churn,
    false_positives,
    loss_rates,
    notification_latency,
    steady_state,
    svtree_stats,
)

# name -> (module.run, default config factory, paper-scale config factory)
EXPERIMENTS: Dict[str, Tuple[Callable, Callable, Callable]] = {
    "fig6": (
        calibration.run,
        calibration.CalibrationConfig,
        calibration.CalibrationConfig.paper_scale,
    ),
    "fig7": (
        creation_latency.run,
        creation_latency.CreationConfig,
        creation_latency.CreationConfig.paper_scale,
    ),
    "fig8": (
        notification_latency.run,
        notification_latency.NotificationConfig,
        notification_latency.NotificationConfig.paper_scale,
    ),
    "fig9": (
        crash_notification.run,
        crash_notification.CrashConfig,
        crash_notification.CrashConfig.paper_scale,
    ),
    "fig10": (churn.run, churn.ChurnConfig, churn.ChurnConfig.paper_scale),
    "fig11": (
        loss_rates.run,
        loss_rates.LossRatesConfig,
        loss_rates.LossRatesConfig.paper_scale,
    ),
    "fig12": (
        false_positives.run,
        false_positives.FalsePositivesConfig,
        false_positives.FalsePositivesConfig.paper_scale,
    ),
    "steady-state": (
        steady_state.run,
        steady_state.SteadyStateConfig,
        steady_state.SteadyStateConfig.paper_scale,
    ),
    "svtree": (
        svtree_stats.run,
        svtree_stats.SvtreeStatsConfig,
        svtree_stats.SvtreeStatsConfig.paper_scale,
    ),
    "agreement": (agreement.run, agreement.AgreementConfig, agreement.AgreementConfig),
    "ablation-topologies": (
        ablation.run_topology_ablation,
        ablation.TopologyAblationConfig,
        ablation.TopologyAblationConfig,
    ),
    "ablation-repair": (
        ablation.run_repair_ablation,
        ablation.RepairAblationConfig,
        ablation.RepairAblationConfig,
    ),
}


def run_one(name: str, paper_scale: bool) -> None:
    runner, default_cfg, paper_cfg = EXPERIMENTS[name]
    config = paper_cfg() if paper_scale else default_cfg()
    started = time.time()
    result = runner(config)
    elapsed = time.time() - started
    print(result.format_table())
    print(f"[{name}: {elapsed:.1f}s wall clock]")
    print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.run",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full parameters (slow)",
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        run_one(name, args.paper_scale)
    return 0


if __name__ == "__main__":
    sys.exit(main())

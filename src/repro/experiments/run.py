"""Command-line experiment runner.

Regenerate any paper figure/table from a shell::

    python -m repro.experiments.run fig7
    python -m repro.experiments.run fig9 --paper-scale --jobs 4
    python -m repro.experiments.run fig7 --seeds 1,2,3 --json --out fig7.json
    python -m repro.experiments.run all --jobs 8 --out results/

Every experiment runs through the shared trial engine
(:mod:`repro.engine`): ``--jobs N`` fans its independent trials across N
worker processes (aggregate results are seed-for-seed identical to
``--jobs 1``), ``--seeds`` replicates the sweep over extra base seeds,
and ``--json`` / ``--out`` archive machine-readable per-trial results.

``--paper-scale`` uses the paper's parameters (400 nodes; 16,000 for the
§4 simulation) and can take minutes; the default scaled-down configs run
in seconds each.

For fault timelines beyond the paper's figures — arbitrary churn /
partition / loss compositions — use the scenario CLI instead:
``python -m repro.scenarios.run`` (docs/SCENARIOS.md).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.backends.wallclock import wall_seconds
from repro.experiments import (
    ablation,
    agreement,
    calibration,
    crash_notification,
    creation_latency,
    churn,
    false_positives,
    loss_rates,
    notification_latency,
    steady_state,
    svtree_stats,
)

# name -> (module.run, default config factory, paper-scale config factory)
EXPERIMENTS: Dict[str, Tuple[Callable, Callable, Callable]] = {
    "fig6": (
        calibration.run,
        calibration.CalibrationConfig,
        calibration.CalibrationConfig.paper_scale,
    ),
    "fig7": (
        creation_latency.run,
        creation_latency.CreationConfig,
        creation_latency.CreationConfig.paper_scale,
    ),
    "fig8": (
        notification_latency.run,
        notification_latency.NotificationConfig,
        notification_latency.NotificationConfig.paper_scale,
    ),
    "fig9": (
        crash_notification.run,
        crash_notification.CrashConfig,
        crash_notification.CrashConfig.paper_scale,
    ),
    "fig10": (churn.run, churn.ChurnConfig, churn.ChurnConfig.paper_scale),
    "fig11": (
        loss_rates.run,
        loss_rates.LossRatesConfig,
        loss_rates.LossRatesConfig.paper_scale,
    ),
    "fig12": (
        false_positives.run,
        false_positives.FalsePositivesConfig,
        false_positives.FalsePositivesConfig.paper_scale,
    ),
    "steady-state": (
        steady_state.run,
        steady_state.SteadyStateConfig,
        steady_state.SteadyStateConfig.paper_scale,
    ),
    "svtree": (
        svtree_stats.run,
        svtree_stats.SvtreeStatsConfig,
        svtree_stats.SvtreeStatsConfig.paper_scale,
    ),
    "agreement": (agreement.run, agreement.AgreementConfig, agreement.AgreementConfig),
    "ablation-topologies": (
        ablation.run_topology_ablation,
        ablation.TopologyAblationConfig,
        ablation.TopologyAblationConfig,
    ),
    "ablation-repair": (
        ablation.run_repair_ablation,
        ablation.RepairAblationConfig,
        ablation.RepairAblationConfig,
    ),
}


def _parse_seeds(text: Optional[str]) -> Optional[List[int]]:
    if not text:
        return None
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise SystemExit(f"--seeds expects comma-separated integers: {exc}")


def run_one(
    name: str,
    paper_scale: bool,
    jobs: int = 1,
    seeds: Optional[List[int]] = None,
    as_json: bool = False,
) -> Tuple[str, object]:
    """Run one experiment; returns (rendered output, result object)."""
    runner, default_cfg, paper_cfg = EXPERIMENTS[name]
    config = paper_cfg() if paper_scale else default_cfg()
    started = wall_seconds()
    result = runner(config, jobs=jobs, seeds=seeds)
    elapsed = wall_seconds() - started
    if as_json:
        payload = result.result_set.to_json_dict()
        payload["config"] = dataclasses.asdict(config)
        payload["wall_seconds"] = round(elapsed, 3)
        payload["jobs"] = jobs
        rendered = json.dumps(payload, indent=2, sort_keys=True, default=str)
    else:
        rendered = (
            result.format_table()
            + f"\n[{name}: {elapsed:.1f}s wall clock, jobs={jobs}, "
            f"{len(result.result_set)} trials]"
        )
    return rendered, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.run",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full parameters (slow)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent trials (default: 1, serial)",
    )
    parser.add_argument(
        "--seeds",
        metavar="S1,S2,...",
        help="comma-separated base seeds replacing the config default; "
        "the whole sweep is replicated per seed",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable per-trial results instead of tables",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="write output to PATH (a directory when running 'all') "
        "instead of only printing it",
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    seeds = _parse_seeds(args.seeds)
    jobs = max(1, args.jobs)

    out_dir: Optional[pathlib.Path] = None
    out_file: Optional[pathlib.Path] = None
    if args.out:
        path = pathlib.Path(args.out)
        if args.experiment == "all":
            out_dir = path
            out_dir.mkdir(parents=True, exist_ok=True)
        else:
            out_file = path
            if out_file.parent != pathlib.Path(""):
                out_file.parent.mkdir(parents=True, exist_ok=True)

    suffix = "json" if args.json else "txt"
    for name in names:
        rendered, _result = run_one(
            name, args.paper_scale, jobs=jobs, seeds=seeds, as_json=args.json
        )
        # Archive before printing: a closed stdout pipe (| head, | less)
        # must not lose the --out artifact to BrokenPipeError.
        if out_dir is not None:
            (out_dir / f"{name}.{suffix}").write_text(rendered + "\n")
        elif out_file is not None:
            out_file.write_text(rendered + "\n")
        print(rendered)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())

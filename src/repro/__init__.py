"""Reproduction of *FUSE: Lightweight Guaranteed Distributed Failure
Notification* (Dunagan, Harvey, Jones, Kostic, Theimer, Wolman -- OSDI
2004).

Quickstart::

    from repro import FuseWorld

    world = FuseWorld(n_nodes=50, seed=1)
    world.bootstrap()
    fid, status, _ = world.create_group_sync(root=0, members=[3, 7])
    world.fuse(3).register_failure_handler(fid, lambda f: print("failed:", f))
    world.fuse(7).signal_failure(fid)
    world.run_for_minutes(1)

Package map:

* :mod:`repro.sim`     -- deterministic discrete-event kernel;
* :mod:`repro.net`     -- wide-area topology, faults, TCP-like transport;
* :mod:`repro.overlay` -- SkipNet structured overlay;
* :mod:`repro.fuse`    -- the FUSE failure-notification service itself;
* :mod:`repro.apps`    -- SV-tree event delivery and other applications;
* :mod:`repro.engine`  -- shared trial engine (sweeps x seeds x processes);
* :mod:`repro.scenarios` -- declarative, composable fault timelines;
* :mod:`repro.experiments` -- drivers reproducing every figure/table.

The layer map with per-module paper-section cross-references lives in
``docs/ARCHITECTURE.md``; the scenario DSL in ``docs/SCENARIOS.md``.
"""

from repro.fuse import FuseConfig, FuseId, FuseService
from repro.net import MercatorConfig, TransportConfig
from repro.overlay import OverlayConfig
from repro.world import FuseWorld

__version__ = "1.0.0"

__all__ = [
    "FuseConfig",
    "FuseId",
    "FuseService",
    "FuseWorld",
    "MercatorConfig",
    "OverlayConfig",
    "TransportConfig",
    "__version__",
]

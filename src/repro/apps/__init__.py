"""Applications built on FUSE, mirroring §4 of the paper.

* :mod:`repro.apps.svtree`     — Subscriber/Volunteer multicast trees, the
  Herald event-delivery application that motivated FUSE.  Demonstrates
  the paper's central design pattern: garbage-collect out-of-date
  distributed state via FUSE, then retry with a new group.
* :mod:`repro.apps.membership` — a SWIM-style weakly consistent
  membership service, the related-work baseline (§2) FUSE is contrasted
  against.
* :mod:`repro.apps.cdn`        — a CDN update-push replicator (§4.1's
  second suggested application) using per-document FUSE groups for
  replica fate-sharing.
"""

from repro.apps.cdn import CdnOrigin, CdnReplica
from repro.apps.membership import SwimMember, SwimConfig
from repro.apps.svtree import SVTreeService

__all__ = ["CdnOrigin", "CdnReplica", "SVTreeService", "SwimConfig", "SwimMember"]

"""CDN update push with FUSE-guarded replica sets (§4.1).

The paper's second suggested application: a content delivery network that
replicates many documents and pushes updates along per-document
replication topologies.  Instead of per-tree heartbeats, each document's
replica set is fate-shared in one FUSE group:

* the origin creates a FUSE group over {origin} ∪ replicas when it
  places a document;
* updates are pushed directly to each replica, version-stamped;
* if *any* replica becomes unreachable — or a replica detects it is not
  receiving updates and signals — the group fails, every replica
  invalidates its copy (no stale serving), and the origin re-replicates
  onto a fresh replica set with a new group.

This is exactly the "fate-sharing of distributed data items" use of FUSE
(§2): invalidating one item invalidates all of them, with no per-document
heartbeat traffic.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence

from repro.fuse.api import GroupStatus
from repro.fuse.service import FuseService
from repro.net.address import NodeId
from repro.net.message import Message


class DocPlace(Message):
    """Origin -> replica: store this document version."""

    size_bytes = 1024

    def __init__(self, doc: str, version: int, content: str, fuse_id: str) -> None:
        self.doc = doc
        self.version = version
        self.content = content
        self.fuse_id = fuse_id


class DocUpdate(Message):
    """Origin -> replica: new version of a document you hold."""

    size_bytes = 1024

    def __init__(self, doc: str, version: int, content: str) -> None:
        self.doc = doc
        self.version = version
        self.content = content


class CdnReplica:
    """Replica-side: stores documents while their FUSE group lives."""

    def __init__(self, fuse: FuseService) -> None:
        self.fuse = fuse
        self.host = fuse.host
        self.store: Dict[str, tuple] = {}  # doc -> (version, content)
        self.invalidations: List[str] = []
        self.host.on_crash(self.store.clear)
        self.host.register_handler(DocPlace, self._on_place)
        self.host.register_handler(DocUpdate, self._on_update)

    def _on_place(self, message: Message) -> None:
        place = message
        self.store[place.doc] = (place.version, place.content)
        self.fuse.register_failure_handler(
            place.fuse_id, lambda _f, doc=place.doc: self._invalidate(doc)
        )

    def _on_update(self, message: Message) -> None:
        update = message
        held = self.store.get(update.doc)
        if held is None or held[0] >= update.version:
            return  # not ours, or a stale/reordered update
        self.store[update.doc] = (update.version, update.content)

    def _invalidate(self, doc: str) -> None:
        """Fate-sharing: the group failed, so the copy must not be served."""
        if self.store.pop(doc, None) is not None:
            self.invalidations.append(doc)

    def get(self, doc: str) -> Optional[str]:
        held = self.store.get(doc)
        return held[1] if held is not None else None


class CdnOrigin:
    """Origin-side: places documents, pushes updates, re-replicates on
    group failure."""

    def __init__(self, fuse: FuseService, on_replicas_lost: Optional[Callable[[str], None]] = None) -> None:
        self.fuse = fuse
        self.host = fuse.host
        self.sim = fuse.sim
        self.docs: Dict[str, dict] = {}  # doc -> {version, content, replicas, fuse_id}
        self.on_replicas_lost = on_replicas_lost
        self._version = itertools.count(1)

    def place(self, doc: str, content: str, replicas: Sequence[NodeId],
              on_done: Optional[Callable[[bool], None]] = None) -> None:
        """Replicate ``doc`` onto ``replicas`` under a fresh FUSE group."""
        version = next(self._version)
        origin_id = self.host.node_id

        def on_live(group) -> None:
            fuse_id = group.fuse_id
            self.docs[doc] = {
                "version": version,
                "content": content,
                "replicas": list(replicas),
                "fuse_id": fuse_id,
            }
            # Fate-sharing at the origin: react to the origin's *own*
            # notification (same instant the old per-node failure handler
            # fired), not to the first notification anywhere.
            group.on_member_notified(
                lambda _g, node, _reason, d=doc, fid=fuse_id: self._on_group_failed(d, fid)
                if node == origin_id
                else None
            )
            for replica in replicas:
                self.host.send(replica, DocPlace(doc, version, content, fuse_id))
            if on_done is not None:
                on_done(True)

        def on_notified(group, _reason) -> None:
            if group.status is GroupStatus.FAILED_CREATE and on_done is not None:
                on_done(False)

        self.fuse.create_group(list(replicas)).on_live(on_live).on_notified(on_notified)

    def push_update(self, doc: str, content: str) -> bool:
        """Push a new version to the current replica set.  Returns False
        if the document currently has no live replica group."""
        entry = self.docs.get(doc)
        if entry is None:
            return False
        entry["version"] = next(self._version)
        entry["content"] = content
        for replica in entry["replicas"]:
            self.host.send(replica, DocUpdate(doc, entry["version"], content))
        return True

    def _on_group_failed(self, doc: str, fuse_id: str) -> None:
        entry = self.docs.get(doc)
        if entry is None or entry["fuse_id"] != fuse_id:
            return  # stale notification for a superseded replica set
        self.docs.pop(doc, None)
        if self.on_replicas_lost is not None:
            self.on_replicas_lost(doc)

    def live_documents(self) -> List[str]:
        return sorted(self.docs)

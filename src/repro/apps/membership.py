"""SWIM-style weakly consistent membership service (§2 baseline).

The paper positions FUSE against membership services: a membership list
says which *nodes* are up, while FUSE says whether a particular *group of
state* is still intact.  This module implements the classic SWIM
construction (Das et al., DSN 2002) so the comparison benches can measure
both abstractions on the same substrate:

* each protocol period, every member probes one random peer;
* an unanswered probe triggers ``k`` indirect probes through proxies;
* a peer that fails both direct and indirect probing is declared failed
  and the verdict is disseminated by gossip piggybacked on probes.

The deliberate limitation (the paper's point, §2): an intransitive
connectivity failure between A and B either goes unnoticed (some third
party can still reach B) or force-fails one node globally.  FUSE instead
scopes the failure to the groups that span the broken path —
tests/test_membership.py exercises exactly this contrast.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.net.address import NodeId
from repro.net.message import Message
from repro.net.node import Host

StatusListener = Callable[[NodeId, str], None]


@dataclass
class SwimConfig:
    protocol_period_ms: float = 10_000.0
    probe_timeout_ms: float = 3_000.0
    indirect_probes: int = 3
    gossip_fanout: int = 3


class SwimProbe(Message):
    size_bytes = 64

    def __init__(self, nonce: int = 0, gossip: Sequence[NodeId] = ()) -> None:
        self.nonce = nonce
        self.gossip = tuple(gossip)  # node ids declared failed


class SwimProbeAck(Message):
    size_bytes = 64

    def __init__(self, nonce: int = 0, gossip: Sequence[NodeId] = ()) -> None:
        self.nonce = nonce
        self.gossip = tuple(gossip)


class SwimIndirectProbe(Message):
    """Ask a proxy to probe ``target`` on our behalf."""

    size_bytes = 64

    def __init__(self, target: NodeId = -1, nonce: int = 0) -> None:
        self.target = target
        self.nonce = nonce


class SwimIndirectAck(Message):
    """Proxy -> requester: the target answered my probe."""

    size_bytes = 64

    def __init__(self, target: NodeId = -1, nonce: int = 0) -> None:
        self.target = target
        self.nonce = nonce


class SwimMember:
    """One node's SWIM instance."""

    def __init__(self, host: Host, peers: Sequence[NodeId], config: Optional[SwimConfig] = None) -> None:
        self.host = host
        self.sim = host.network.sim
        self.config = config or SwimConfig()
        self.alive_view: Set[NodeId] = {p for p in peers if p != host.node_id}
        self.failed_view: Set[NodeId] = set()
        self._listeners: List[StatusListener] = []
        self._nonce = itertools.count(1)
        self._pending_direct: Dict[int, NodeId] = {}
        self._pending_indirect: Dict[int, NodeId] = {}
        # proxy-side relay bookkeeping: our nonce -> (requester, target,
        # requester's nonce).
        self._relay: Dict[int, tuple] = {}
        self._rng = self.sim.rng.stream(f"swim:{host.name}")
        self._running = False
        host.on_crash(self._on_crash)
        host.register_handler(SwimProbe, self._on_probe)
        host.register_handler(SwimProbeAck, self._on_probe_ack)
        host.register_handler(SwimIndirectProbe, self._on_indirect_probe)
        host.register_handler(SwimIndirectAck, self._on_indirect_ack)

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        phase = self._rng.uniform(0.0, self.config.protocol_period_ms)
        self.host.call_after(phase, self._period)

    def on_status_change(self, listener: StatusListener) -> None:
        """listener(node, "failed") whenever the local view declares a
        node failed (directly or via gossip)."""
        self._listeners.append(listener)

    def is_alive(self, node: NodeId) -> bool:
        return node in self.alive_view

    # ------------------------------------------------------------------
    # Protocol period
    # ------------------------------------------------------------------
    def _period(self) -> None:
        if not self._running:
            return
        candidates = sorted(self.alive_view)
        if candidates:
            target = self._rng.choice(candidates)
            self._probe(target)
        self.host.call_after(self.config.protocol_period_ms, self._period)

    def _probe(self, target: NodeId) -> None:
        nonce = next(self._nonce)
        self._pending_direct[nonce] = target
        self.host.send(
            target,
            SwimProbe(nonce, self._gossip_sample()),
            on_fail=lambda *_: self._direct_failed(nonce),
        )
        self.host.call_after(self.config.probe_timeout_ms, lambda: self._direct_failed(nonce))

    def _direct_failed(self, nonce: int) -> None:
        target = self._pending_direct.pop(nonce, None)
        if target is None:
            return  # already answered
        proxies = [p for p in sorted(self.alive_view) if p != target]
        self._rng.shuffle(proxies)
        proxies = proxies[: self.config.indirect_probes]
        if not proxies:
            self._declare_failed(target)
            return
        inonce = next(self._nonce)
        self._pending_indirect[inonce] = target
        for proxy in proxies:
            self.host.send(proxy, SwimIndirectProbe(target, inonce))
        self.host.call_after(
            2.0 * self.config.probe_timeout_ms, lambda: self._indirect_failed(inonce)
        )

    def _indirect_failed(self, nonce: int) -> None:
        target = self._pending_indirect.pop(nonce, None)
        if target is not None:
            self._declare_failed(target)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _on_probe(self, message: Message) -> None:
        probe = message
        if probe.sender is None:
            return
        self._absorb_gossip(probe.gossip)
        self.host.send(probe.sender, SwimProbeAck(probe.nonce, self._gossip_sample()))

    def _on_probe_ack(self, message: Message) -> None:
        ack = message
        self._absorb_gossip(ack.gossip)
        self._pending_direct.pop(ack.nonce, None)
        relay = self._relay.pop(ack.nonce, None)
        if relay is not None:
            requester, target, orig_nonce = relay
            self.host.send(requester, SwimIndirectAck(target, orig_nonce))

    def _on_indirect_probe(self, message: Message) -> None:
        """Proxy role: probe the target on the requester's behalf and
        relay a positive answer back."""
        req = message
        requester = req.sender
        if requester is None or req.target == self.host.node_id:
            return
        nonce = next(self._nonce)
        self._relay[nonce] = (requester, req.target, req.nonce)
        self.host.send(req.target, SwimProbe(nonce, ()))

    def _on_indirect_ack(self, message: Message) -> None:
        ack = message
        self._pending_indirect.pop(ack.nonce, None)

    # ------------------------------------------------------------------
    # Verdicts and gossip
    # ------------------------------------------------------------------
    def _declare_failed(self, node: NodeId) -> None:
        if node not in self.alive_view:
            return
        self.alive_view.discard(node)
        self.failed_view.add(node)
        self.sim.metrics.counter("swim.failures_declared").increment()
        for listener in self._listeners:
            listener(node, "failed")

    def _absorb_gossip(self, failed_nodes: Sequence[NodeId]) -> None:
        for node in failed_nodes:
            if node != self.host.node_id:
                self._declare_failed(node)

    def _gossip_sample(self) -> List[NodeId]:
        recent = sorted(self.failed_view)
        return recent[: self.config.gossip_fanout]

    def _on_crash(self) -> None:
        self._running = False
        self._pending_direct.clear()
        self._pending_indirect.clear()
        self._relay.clear()

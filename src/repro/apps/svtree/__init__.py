"""Subscriber/Volunteer trees: FUSE-based event delivery (§4)."""

from repro.apps.svtree.service import SVTreeService
from repro.apps.svtree.messages import ContentForward, Publish, SubscribeAck, SubscribeJoin

__all__ = ["ContentForward", "Publish", "SVTreeService", "SubscribeAck", "SubscribeJoin"]

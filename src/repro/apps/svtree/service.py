"""SV-tree service: FUSE-guarded application-level multicast (§4).

The paper's design pattern, verbatim: *garbage collect out-of-date state
using FUSE and retry by establishing a new FUSE group and installing new
application-level state.*  Concretely:

* a subscriber routes a SubscribeJoin toward the topic's root name; the
  first on-tree node (or the terminal node, which becomes the topic
  root) adopts it as a child;
* the content-forwarding link (parent -> child) *and* the RPF-path nodes
  it bypasses are fate-shared in one FUSE group, created by the
  subscriber that requested the link;
* on any failure notification the child tears down the link state and
  re-subscribes with a bumped version stamp; version stamps stop
  late-arriving notifications from acting on new links (§3.3);
* voluntary leaves explicitly signal the same FUSE groups a failure
  would have signalled, reusing the repair path (§4).

Group sizes are 2 + |bypassed|, which is how the paper gets its "mean
2.9, max 13" group-size distribution; :mod:`repro.experiments.svtree_stats`
reproduces that measurement.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Any, Callable, Dict, List, Optional, Set

from repro.apps.svtree.messages import (
    ContentForward,
    LinkReady,
    Publish,
    SubscribeAck,
    SubscribeJoin,
)
from repro.fuse.api import GroupStatus
from repro.fuse.service import FuseService
from repro.net.address import NodeId
from repro.net.message import Message

EventCallback = Callable[[str, Any], None]


class _TopicState:
    """One node's role on one topic tree."""

    __slots__ = (
        "topic",
        "is_root",
        "is_subscriber",
        "version",
        "parent",
        "parent_fuse_id",
        "children",
        "on_event",
        "delivered_ids",
    )

    def __init__(self, topic: str) -> None:
        self.topic = topic
        self.is_root = False
        self.is_subscriber = False
        self.version = 0
        self.parent: Optional[NodeId] = None
        self.parent_fuse_id: Optional[str] = None
        # child node -> fuse id guarding that content link (None until
        # LinkReady arrives).
        self.children: Dict[NodeId, Optional[str]] = {}
        self.on_event: Optional[EventCallback] = None
        self.delivered_ids: Set[int] = set()


def topic_root_name(topic: str) -> str:
    """Content-addressable root: route to the hash of the topic name."""
    return "t-" + hashlib.sha1(topic.encode()).hexdigest()[:12]


class SVTreeService:
    """Event delivery over SV trees, one instance per node."""

    def __init__(self, fuse: FuseService) -> None:
        self.fuse = fuse
        self.overlay = fuse.overlay
        self.host = fuse.host
        self.sim = fuse.sim
        self.topics: Dict[str, _TopicState] = {}
        self.group_sizes: List[int] = []  # instrumentation for §4 stats
        self._publish_seq = itertools.count(1)

        self.host.on_crash(self._on_crash)
        self.host.register_handler(SubscribeJoin, self._on_join_delivered)
        self.host.register_handler(SubscribeAck, self._on_subscribe_ack)
        self.host.register_handler(LinkReady, self._on_link_ready)
        self.host.register_handler(Publish, self._on_publish_delivered)
        self.host.register_handler(ContentForward, self._on_content)
        self.overlay.register_upcall(self._on_upcall)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def subscribe(self, topic: str, on_event: EventCallback) -> None:
        """Join the topic's tree; ``on_event(topic, payload)`` per event."""
        state = self.topics.setdefault(topic, _TopicState(topic))
        state.is_subscriber = True
        state.on_event = on_event
        if state.is_root or state.parent is not None:
            return  # already attached
        self._send_join(state)

    def unsubscribe(self, topic: str) -> None:
        """Voluntary leave: explicitly signal the link groups, exactly as
        a failure would (§4's non-failure FUSE use)."""
        state = self.topics.get(topic)
        if state is None:
            return
        if state.parent_fuse_id is not None:
            self.fuse.signal_failure(state.parent_fuse_id)
        for fuse_id in list(state.children.values()):
            if fuse_id is not None:
                self.fuse.signal_failure(fuse_id)
        self.topics.pop(topic, None)

    def publish(self, topic: str, payload: Any) -> None:
        """Deliver ``payload`` to every subscriber of ``topic``."""
        # Publish ids must be unique across publishers — subscribers use
        # them to deduplicate redundant forwards.
        publish_id = (self.host.node_id << 32) | next(self._publish_seq)
        self.overlay.route(topic_root_name(topic), Publish(topic, payload, publish_id))

    def subscribed_topics(self) -> List[str]:
        return sorted(t for t, s in self.topics.items() if s.is_subscriber)

    # ------------------------------------------------------------------
    # Subscription path
    # ------------------------------------------------------------------
    def _send_join(self, state: _TopicState) -> None:
        state.version += 1
        self.overlay.route(
            topic_root_name(state.topic),
            SubscribeJoin(state.topic, self.host.node_id, state.version),
        )

    def _on_upcall(self, envelope, prev_hop, next_hop, delivered) -> bool:
        payload = envelope.payload
        if not isinstance(payload, SubscribeJoin):
            return False
        if payload.subscriber == self.host.node_id:
            return False  # origin hop: record nothing, keep routing
        state = self.topics.get(payload.topic)
        on_tree = state is not None and (state.is_root or state.parent is not None)
        if on_tree and not delivered:
            # First on-tree node adopts the subscriber (SV short-circuit).
            self._adopt(state, payload)
            return True
        if not delivered:
            payload.path.append(self.host.node_id)  # we are a bypassed hop
        return False

    def _on_join_delivered(self, message: Message) -> None:
        """Terminal hop of a SubscribeJoin: this node becomes the topic
        root (it may already be on the tree)."""
        join = message
        state = self.topics.setdefault(join.topic, _TopicState(join.topic))
        state.is_root = True
        if join.subscriber == self.host.node_id:
            return  # we subscribed to a topic rooted at ourselves
        self._adopt(state, join)

    def _adopt(self, state: _TopicState, join: SubscribeJoin) -> None:
        state.children.setdefault(join.subscriber, None)
        self.host.send(
            join.subscriber, SubscribeAck(state.topic, join.version, join.path)
        )

    def _on_subscribe_ack(self, message: Message) -> None:
        ack = message
        state = self.topics.get(ack.topic)
        if state is None or ack.version != state.version:
            return  # stale ack from a superseded subscription attempt
        parent = ack.sender
        if parent is None or state.parent is not None:
            return
        state.parent = parent
        # Fate-share the content link with the bypassed RPF nodes (§4).
        members = [parent] + [b for b in ack.bypassed if b != self.host.node_id]
        version = state.version
        self_id = self.host.node_id

        def on_live(group) -> None:
            current = self.topics.get(ack.topic)
            if current is None or current.version != version:
                return  # a newer subscription superseded this attempt
            current.parent_fuse_id = group.fuse_id
            self.group_sizes.append(1 + len(members))
            # Garbage-collect-and-retry on the *local* notification (§4):
            # same instant the old per-node failure handler fired.
            group.on_member_notified(
                lambda _g, node, _reason: self._on_link_failed(ack.topic, version)
                if node == self_id
                else None
            )
            self.host.send(parent, LinkReady(ack.topic, version, group.fuse_id))

        def on_notified(group, _reason) -> None:
            if group.status is not GroupStatus.FAILED_CREATE:
                return
            current = self.topics.get(ack.topic)
            if current is None or current.version != version:
                return
            current.parent = None
            self._retry_subscribe(current)

        self.fuse.create_group(members).on_live(on_live).on_notified(on_notified)

    def _on_link_ready(self, message: Message) -> None:
        ready = message
        state = self.topics.get(ready.topic)
        child = ready.sender
        if state is None or child not in state.children:
            return
        state.children[child] = ready.fuse_id
        self.fuse.register_failure_handler(
            ready.fuse_id, lambda _f: self._on_child_link_failed(ready.topic, child, ready.fuse_id)
        )

    # ------------------------------------------------------------------
    # Failure handling: garbage collect, then retry (§4)
    # ------------------------------------------------------------------
    def _on_link_failed(self, topic: str, version: int) -> None:
        state = self.topics.get(topic)
        if state is None or state.version != version:
            return  # version stamp: a late notification for an old link
        state.parent = None
        state.parent_fuse_id = None
        if state.is_subscriber:
            self._retry_subscribe(state)

    def _on_child_link_failed(self, topic: str, child: NodeId, fuse_id: str) -> None:
        state = self.topics.get(topic)
        if state is None:
            return
        if state.children.get(child) == fuse_id:
            state.children.pop(child, None)

    def _retry_subscribe(self, state: _TopicState) -> None:
        # Small delay avoids hammering a freshly failed region.
        self.host.call_after(2_000.0, lambda: self._retry_if_detached(state.topic))

    def _retry_if_detached(self, topic: str) -> None:
        state = self.topics.get(topic)
        if state is None or not state.is_subscriber:
            return
        if state.parent is None and not state.is_root:
            self._send_join(state)

    def _on_crash(self) -> None:
        self.topics.clear()

    # ------------------------------------------------------------------
    # Content path
    # ------------------------------------------------------------------
    def _on_publish_delivered(self, message: Message) -> None:
        pub = message
        state = self.topics.setdefault(pub.topic, _TopicState(pub.topic))
        state.is_root = True
        self._dispatch_content(state, pub.payload, pub.publish_id, from_node=None)

    def _on_content(self, message: Message) -> None:
        fwd = message
        state = self.topics.get(fwd.topic)
        if state is None:
            return
        self._dispatch_content(state, fwd.payload, fwd.publish_id, from_node=fwd.sender)

    def _dispatch_content(self, state: _TopicState, payload: Any, publish_id: int, from_node) -> None:
        if publish_id in state.delivered_ids:
            return
        state.delivered_ids.add(publish_id)
        if state.is_subscriber and state.on_event is not None:
            state.on_event(state.topic, payload)
        for child in sorted(state.children):
            if child != from_node:
                self.host.send(child, ContentForward(state.topic, payload, publish_id))

    def __repr__(self) -> str:
        return f"SVTreeService({self.host.name}, topics={sorted(self.topics)})"

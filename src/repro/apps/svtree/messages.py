"""SV-tree wire messages.

Paper cross-reference: §4 — subscribe/adopt/content traffic of the
Subscriber/Volunteer trees; each content link's fate is shared with a
FUSE group, which is the design pattern §4 demonstrates.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.net.address import NodeId
from repro.net.message import Message


class SubscribeJoin(Message):
    """Routed from a subscriber toward the topic's root name.  Each hop
    appends itself to ``path``; the first on-tree node consumes the
    message and becomes the parent.  ``version`` is the subscriber's
    per-topic version stamp, the paper's race-condition guard (§3.3/§4)."""

    size_bytes = 160

    def __init__(self, topic: str, subscriber: NodeId, version: int) -> None:
        self.topic = topic
        self.subscriber = subscriber
        self.version = version
        self.path: List[NodeId] = []


class SubscribeAck(Message):
    """Parent -> subscriber, direct: you are attached; here are the RPF
    nodes your content link bypasses (the future FUSE group members)."""

    size_bytes = 160

    def __init__(self, topic: str, version: int, bypassed: Sequence[NodeId]) -> None:
        self.topic = topic
        self.version = version
        self.bypassed = tuple(bypassed)


class LinkReady(Message):
    """Subscriber -> parent, direct: the FUSE group guarding our content
    link exists; associate the child link with it."""

    size_bytes = 128

    def __init__(self, topic: str, version: int, fuse_id: str) -> None:
        self.topic = topic
        self.version = version
        self.fuse_id = fuse_id


class Publish(Message):
    """Routed toward the topic root, which injects it into the tree."""

    size_bytes = 256

    def __init__(self, topic: str, payload: Any, publish_id: int) -> None:
        self.topic = topic
        self.payload = payload
        self.publish_id = publish_id


class ContentForward(Message):
    """Content flowing down a content-forwarding link (parent -> child)."""

    size_bytes = 256

    def __init__(self, topic: str, payload: Any, publish_id: int) -> None:
        self.topic = topic
        self.payload = payload
        self.publish_id = publish_id

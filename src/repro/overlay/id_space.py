"""SkipNet identifier spaces.

SkipNet nodes have two identifiers:

* a **name ID** (a string — DNS-style in the original system); the root
  ring is sorted lexicographically by name, giving path locality;
* a **numeric ID** — a uniformly random digit string; sharing a numeric
  prefix of length *l* places nodes in the same level-*l* ring.

We derive numeric IDs deterministically by hashing the name, exactly as
SkipNet does for unmodified nodes, so a node's ring memberships are a pure
function of its name.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

NameId = str
NumericId = Sequence[int]

DEFAULT_BASE = 8
DEFAULT_DIGITS = 16


def numeric_id_for(name: NameId, base: int = DEFAULT_BASE, digits: int = DEFAULT_DIGITS) -> List[int]:
    """Uniform digit string in [0, base) derived from ``name`` via SHA-1."""
    if base < 2:
        raise ValueError(f"base must be >= 2: {base}")
    if digits < 1:
        raise ValueError(f"digits must be >= 1: {digits}")
    raw = hashlib.sha1(name.encode()).digest()
    value = int.from_bytes(raw, "big")
    out: List[int] = []
    for _ in range(digits):
        out.append(value % base)
        value //= base
    return out


def shared_prefix_length(a: NumericId, b: NumericId) -> int:
    """Number of leading digits the two numeric IDs share."""
    n = 0
    for da, db in zip(a, b):
        if da != db:
            break
        n += 1
    return n


def name_distance_clockwise(src: NameId, dst: NameId, ring: Sequence[NameId]) -> int:
    """Clockwise hop distance from src to dst around a sorted name ring.

    Used by tests to assert that routing makes monotone progress.
    """
    ordered = sorted(ring)
    if src not in ordered or dst not in ordered:
        raise ValueError("src and dst must be ring members")
    return (ordered.index(dst) - ordered.index(src)) % len(ordered)


def clockwise_between(a: NameId, x: NameId, b: NameId) -> bool:
    """True if ``x`` lies in the clockwise half-open interval (a, b].

    The root ring is circular in lexicographic order; this predicate is
    the routing primitive: forward to the neighbor that lands in
    (current, destination] and is closest to the destination.
    """
    if a == b:
        # Degenerate interval: only x == b (== a) qualifies.
        return x == b
    if a < b:
        return a < x <= b
    # Interval wraps around the top of the name space.
    return x > a or x <= b

"""Multi-level ring structure and R-table computation.

A SkipNet deployment's rings form a trie over numeric-ID digits: the root
ring (level 0) contains every node sorted by name; the level-l rings
partition nodes by their first l numeric digits.  A node's routing table
(R-table) holds its clockwise and counter-clockwise neighbor in each ring
it belongs to, and its leaf set holds the nearest ``leaf_set_half`` nodes
on each side of the root ring.

This module maintains the rings as sorted name lists with bisect-based
insert/remove, and computes, for any membership change, the set of nodes
whose tables are affected — so table recomputation under churn is
O(affected) rather than O(deployment).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.overlay.id_space import NameId, numeric_id_for


class NodeTable:
    """One node's computed routing state."""

    __slots__ = ("name", "leaf_set", "ring_neighbors", "levels")

    def __init__(
        self,
        name: NameId,
        leaf_set: Sequence[NameId],
        ring_neighbors: Sequence[Tuple[int, NameId, NameId]],
    ) -> None:
        self.name = name
        self.leaf_set = tuple(leaf_set)
        # (level, clockwise, counterclockwise) per level with >= 2 members.
        self.ring_neighbors = tuple(ring_neighbors)
        self.levels = len(self.ring_neighbors)

    def neighbor_names(self) -> Set[NameId]:
        """All distinct neighbors (leaf set union ring pointers)."""
        names: Set[NameId] = set(self.leaf_set)
        for _level, cw, ccw in self.ring_neighbors:
            names.add(cw)
            names.add(ccw)
        names.discard(self.name)
        return names

    def __repr__(self) -> str:
        return f"NodeTable({self.name}, levels={self.levels}, leaf={len(self.leaf_set)})"


class RingStructure:
    """Sorted rings over the current membership."""

    def __init__(self, base: int, numeric_digits: int, leaf_set_half: int) -> None:
        self._base = base
        self._digits = numeric_digits
        self._leaf_half = leaf_set_half
        self._numeric: Dict[NameId, Tuple[int, ...]] = {}
        # prefix tuple -> sorted list of member names; () is the root ring.
        self._rings: Dict[Tuple[int, ...], List[NameId]] = {(): []}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def __contains__(self, name: NameId) -> bool:
        return name in self._numeric

    def __len__(self) -> int:
        return len(self._numeric)

    def members(self) -> List[NameId]:
        return list(self._rings[()])

    def _prefixes(self, name: NameId):
        """Yield the name's ring prefixes level by level.

        A generator, not a list: every consumer breaks out after the
        first ring with fewer than two members, which at realistic
        membership sizes is level ~log_base(n) of the 17 possible —
        building all 17 prefix tuples per call was a join-storm hot spot.
        """
        digits = self._numeric[name]
        for level in range(self._digits + 1):
            yield digits[:level]

    def add(self, name: NameId) -> Set[NameId]:
        """Insert ``name``; returns the set of *other* nodes whose tables
        are affected by the insertion."""
        if name in self._numeric:
            raise ValueError(f"{name} already joined")
        self._numeric[name] = tuple(numeric_id_for(name, self._base, self._digits))
        affected: Set[NameId] = set()
        for level, prefix in enumerate(self._prefixes(name)):
            ring = self._rings.setdefault(prefix, [])
            affected |= self._adjacent(ring, name, level)
            bisect.insort(ring, name)
            if len(ring) == 1 and level > 0:
                # Singleton non-root ring: no pointers exist at this level
                # or above for anyone, so we can stop walking prefixes.
                break
        affected.discard(name)
        return affected

    def remove(self, name: NameId) -> Set[NameId]:
        """Remove ``name``; returns the set of nodes whose tables change."""
        if name not in self._numeric:
            return set()
        affected: Set[NameId] = set()
        for level, prefix in enumerate(self._prefixes(name)):
            ring = self._rings.get(prefix)
            if ring is None or name not in ring:
                break
            index = bisect.bisect_left(ring, name)
            ring.pop(index)
            if not ring:
                if prefix:
                    del self._rings[prefix]
                break
            affected |= self._adjacent(ring, name, level, removed=True)
        self._numeric.pop(name, None)
        affected.discard(name)
        return affected

    def _adjacent(self, ring: List[NameId], name: NameId, level: int, removed: bool = False) -> Set[NameId]:
        """Ring members adjacent to ``name``'s position at this level.

        At level 0 that is leaf_set_half on each side (leaf sets reach that
        far); above level 0 only the immediate cw/ccw pointers change.
        """
        if not ring:
            return set()
        # Over-approximating the affected set is harmless (a few extra
        # table recomputations); missing a node is not.  Take span members
        # on each side of name's position.  `removed` is accepted for
        # symmetry of the call sites; the window covers both cases.
        del removed
        span = self._leaf_half + 1 if level == 0 else 2
        pos = bisect.bisect_left(ring, name)
        n = len(ring)
        out: Set[NameId] = set()
        for offset in range(-span, span + 1):
            out.add(ring[(pos + offset) % n])
        return out

    # ------------------------------------------------------------------
    # Table computation
    # ------------------------------------------------------------------
    def table_for(self, name: NameId) -> NodeTable:
        if name not in self._numeric:
            raise KeyError(f"{name} is not a member")
        root = self._rings[()]
        pos = bisect.bisect_left(root, name)
        n = len(root)
        leaf: List[NameId] = []
        if n > 1:
            for offset in range(1, min(self._leaf_half, (n - 1) // 2 + 1) + 1):
                leaf.append(root[(pos + offset) % n])
                leaf.append(root[(pos - offset) % n])
        ring_neighbors: List[Tuple[int, NameId, NameId]] = []
        for level, prefix in enumerate(self._prefixes(name)):
            ring = self._rings.get(prefix)
            if ring is None or len(ring) < 2:
                break
            rpos = bisect.bisect_left(ring, name)
            cw = ring[(rpos + 1) % len(ring)]
            ccw = ring[(rpos - 1) % len(ring)]
            ring_neighbors.append((level, cw, ccw))
        if n > 2 * self._leaf_half + 1:
            # The leaf window cannot wrap around the ring, so its entries
            # are already distinct and exclude ``name`` — skip the dedup
            # pass (the common case at scale; tables are pushed ~30 times
            # per join during bootstrap).
            return NodeTable(name, leaf, ring_neighbors)
        # Deduplicate the leaf list while preserving closeness order.
        seen: Set[NameId] = set()
        leaf_unique = []
        for item in leaf:
            if item not in seen and item != name:
                seen.add(item)
                leaf_unique.append(item)
        return NodeTable(name, leaf_unique, ring_neighbors)

    # ------------------------------------------------------------------
    # Routing support
    # ------------------------------------------------------------------
    def root_ring_successor(self, name: NameId) -> Optional[NameId]:
        """Clockwise root-ring neighbor (for join insertion)."""
        root = self._rings[()]
        if not root:
            return None
        pos = bisect.bisect_left(root, name)
        if pos < len(root) and root[pos] == name:
            pos += 1
        return root[pos % len(root)] if root else None

    def __repr__(self) -> str:
        return f"RingStructure(members={len(self._numeric)}, rings={len(self._rings)})"

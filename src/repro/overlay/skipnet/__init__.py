"""SkipNet overlay implementation.

Module layout:

* :mod:`repro.overlay.skipnet.config`   — tuning knobs (base, leaf set,
  ping period/timeout — paper values: base 8, leaf set 16, 60 s / 20 s);
* :mod:`repro.overlay.skipnet.messages` — wire messages;
* :mod:`repro.overlay.skipnet.rings`    — multi-level ring membership and
  R-table computation;
* :mod:`repro.overlay.skipnet.node`     — per-node protocol state machine
  (routing, pings, upcalls, piggybacking, failure detection);
* :mod:`repro.overlay.skipnet.overlay`  — the deployment coordinator
  (membership registry, join/leave/crash bookkeeping).
"""

from repro.overlay.skipnet.config import OverlayConfig
from repro.overlay.skipnet.messages import OverlayPayload
from repro.overlay.skipnet.node import OverlayNode
from repro.overlay.skipnet.overlay import SkipNetOverlay

__all__ = ["OverlayConfig", "OverlayNode", "OverlayPayload", "SkipNetOverlay"]

"""Overlay configuration.

Defaults are the paper's §7.1 settings: a 60 second ping period, a 20
second ping timeout, numeric-ID base 8, and a leaf set of size 16 (eight
neighbors on each side of the root ring).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class OverlayConfig:
    base: int = 8
    """Numeric-ID digit base; level-l rings share l leading digits."""

    numeric_digits: int = 16
    """Length of the numeric ID digit string."""

    leaf_set_half: int = 8
    """Root-ring neighbors kept on *each* side (paper: leaf set of 16)."""

    ping_period_ms: float = 60_000.0
    """Interval between liveness pings to each distinct neighbor."""

    ping_timeout_ms: float = 20_000.0
    """Time to wait for a ping ack before suspecting the neighbor."""

    max_route_hops: int = 64
    """Safety bound on overlay routing path length (drops runaways)."""

    repair_fanout: int = 2
    """Nodes contacted when repairing the routing table after a failure
    (models the overlay's own repair traffic, visible in Fig 10)."""

    def __post_init__(self) -> None:
        if self.base < 2:
            raise ValueError("base must be >= 2")
        if self.leaf_set_half < 1:
            raise ValueError("leaf_set_half must be >= 1")
        if self.ping_timeout_ms >= self.ping_period_ms:
            raise ValueError("ping timeout must be shorter than the ping period")

    @property
    def liveness_silence_ms(self) -> float:
        """How long a link can be silent before the *FUSE layer* should
        consider its checking stale: one full ping period plus the ping
        timeout (the paper's 20-80 s uniform detection window)."""
        return self.ping_period_ms + self.ping_timeout_ms

"""Overlay wire messages.

Paper cross-reference: §6.1/§6.3 — join/route/ping traffic of the
SkipNet overlay FUSE delegates its liveness checking to; ping payloads
carry the piggybacked FUSE group hashes of §6.3.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.net.address import NodeId
from repro.net.message import Message

OverlayPayload = Dict[str, Any]
"""Opaque client content piggybacked on overlay traffic.  Keys identify
the client layer (FUSE uses ``"fuse"``); values are client-defined."""


class OverlayPing(Message):
    """Routing-table liveness probe, sent to each distinct neighbor every
    ping period.  Carries piggybacked client payloads (FUSE's 20-byte
    hash rides here), so its nominal size is ping + hash."""

    __slots__ = ("nonce", "payload")

    size_bytes = 64 + 20
    # Built fresh per send and never touched again by the sender; the
    # dominant steady-state traffic, so it skips the per-send copy.
    copy_on_send = False
    # Liveness plane: delivered even to gray-failed nodes, which is what
    # makes gray failure invisible to FUSE's ping-based checking trees.
    is_liveness = True

    def __init__(self, nonce: int, payload: Optional[OverlayPayload] = None) -> None:
        self.nonce = nonce
        # ``is None`` (not ``or {}``): an empty payload may be a shared
        # read-only dict that must not be replaced by a fresh allocation.
        self.payload = payload if payload is not None else {}


class OverlayPingAck(Message):
    """Acknowledges a ping; also carries the responder's piggyback."""

    __slots__ = ("nonce", "payload")

    size_bytes = 64 + 20
    copy_on_send = False
    # Liveness plane, like OverlayPing: exempt from gray-failure drops.
    is_liveness = True

    def __init__(self, nonce: int, payload: Optional[OverlayPayload] = None) -> None:
        self.nonce = nonce
        # ``is None`` (not ``or {}``): an empty payload may be a shared
        # read-only dict that must not be replaced by a fresh allocation.
        self.payload = payload if payload is not None else {}


class RouteEnvelope(Message):
    """A client message being routed by name through the overlay.

    Every intermediate node sees the envelope (client upcall) before
    forwarding — the property FUSE's InstallChecking relies on.
    """

    # ``size_bytes`` is per-instance here (base 128 + payload), so it
    # lives in the slots rather than as a class attribute.
    __slots__ = ("dest_name", "payload", "origin", "hop_count", "size_bytes")

    def __init__(
        self,
        dest_name: str,
        payload: Message,
        origin: NodeId,
        hop_count: int = 0,
    ) -> None:
        self.dest_name = dest_name
        self.payload = payload
        self.origin = origin
        self.hop_count = hop_count
        self.size_bytes = 128 + payload.size_bytes


class NeighborUpdate(Message):
    """Sent by a joining node to the nodes that must add it to their
    routing tables."""

    __slots__ = ("joiner_name",)

    size_bytes = 128
    # Constructed fresh for exactly one send at every call site and
    # never reused by the sender, so it skips the per-send isolation copy.
    copy_on_send = False

    def __init__(self, joiner_name: str) -> None:
        self.joiner_name = joiner_name


class LeaveNotice(Message):
    """Graceful departure announcement to current neighbors."""

    __slots__ = ("leaver_name",)

    size_bytes = 64
    # Constructed fresh for exactly one send at every call site and
    # never reused by the sender, so it skips the per-send isolation copy.
    copy_on_send = False

    def __init__(self, leaver_name: str) -> None:
        self.leaver_name = leaver_name


class JoinProbe(Message):
    """Payload routed toward the joining node's own name to locate its
    root-ring insertion point."""

    __slots__ = ("joiner", "joiner_name")

    size_bytes = 64

    def __init__(self, joiner: NodeId, joiner_name: str) -> None:
        self.joiner = joiner
        self.joiner_name = joiner_name


class JoinReply(Message):
    """Direct response from the insertion-point node to the joiner."""

    __slots__ = ()

    size_bytes = 256
    # Constructed fresh for exactly one send at every call site and
    # never reused by the sender, so it skips the per-send isolation copy.
    copy_on_send = False


class RepairExchange(Message):
    """Routing-table repair chatter after a neighbor failure.  The paper
    attributes a 13 % message-load increase under churn to this class of
    traffic; we model it as a fixed-fanout exchange per detected failure."""

    __slots__ = ("failed_name",)

    size_bytes = 192
    # Constructed fresh for exactly one send at every call site and
    # never reused by the sender, so it skips the per-send isolation copy.
    copy_on_send = False

    def __init__(self, failed_name: str) -> None:
        self.failed_name = failed_name

"""Per-node SkipNet protocol logic.

An :class:`OverlayNode` owns one host's view of the overlay: its routing
table, its liveness pinging of each distinct neighbor, greedy name-routing
with client upcalls on every hop, and the piggyback/listener hooks the
FUSE layer plugs into (§6.1 of the paper: per-hop upcalls, visible routing
table, both-sides link monitoring, content piggybacked on pings).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.net.address import NodeId
from repro.net.message import Message
from repro.net.node import Host
from repro.overlay.id_space import NameId, clockwise_between
from repro.overlay.skipnet.config import OverlayConfig
from repro.overlay.skipnet.messages import (
    JoinProbe,
    JoinReply,
    LeaveNotice,
    NeighborUpdate,
    OverlayPayload,
    OverlayPing,
    OverlayPingAck,
    RepairExchange,
    RouteEnvelope,
)
from repro.overlay.skipnet.rings import NodeTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.overlay.skipnet.overlay import SkipNetOverlay

UpcallListener = Callable[[RouteEnvelope, Optional[NodeId], Optional[NodeId], bool], object]
"""(envelope, prev_hop, next_hop, delivered_locally) on every hop.  A
listener returning a truthy value *consumes* the message: forwarding and
local delivery stop (how SV trees intercept subscriptions mid-route)."""

PingListener = Callable[[NodeId, OverlayPayload, bool], None]
"""(neighbor, piggyback_payload, is_ack) on every ping or ack received."""

PayloadProvider = Callable[[NodeId], Optional[OverlayPayload]]
"""Returns the piggyback payload to attach to a ping toward ``neighbor``."""

FailureListener = Callable[[NodeId, str], None]
"""(neighbor, reason) when this node stops trusting a neighbor; reason is
"timeout", "broken", or "left"."""

#: Shared payload for pings carrying nothing; never mutated (receivers
#: only read piggyback payloads).
_EMPTY_PAYLOAD: OverlayPayload = {}


class OverlayNode:
    """One host's overlay protocol instance."""

    __slots__ = (
        "overlay",
        "host",
        "name",
        "config",
        "joined",
        "table",
        "_ping_nonce",
        "_outstanding_pings",
        "_sweep_timer",
        "_join_timer",
        "_join_attempts",
        "_neighbor_cache",
        "_upcall_listeners",
        "_ping_listeners",
        "_payload_providers",
        "_failure_listeners",
    )

    def __init__(self, overlay: "SkipNetOverlay", host: Host) -> None:
        self.overlay = overlay
        self.host = host
        self.name: NameId = host.name
        self.config: OverlayConfig = overlay.config
        self.joined = False
        self.table: Optional[NodeTable] = None

        self._ping_nonce = itertools.count(1)
        # neighbor NodeId -> (nonce, timeout timer) for the outstanding ping
        self._outstanding_pings: Dict[NodeId, tuple] = {}
        self._sweep_timer = None
        self._join_timer = None
        self._join_attempts = 0
        # (sorted id tuple, id frozenset) resolved from the current table,
        # rebuilt lazily after each set_table.  Safe to cache because name
        # -> host-id registrations only ever grow and every name in a
        # pushed table is registered before the push.
        self._neighbor_cache: Optional[Tuple[Tuple[NodeId, ...], frozenset]] = None

        self._upcall_listeners: List[UpcallListener] = []
        self._ping_listeners: List[PingListener] = []
        self._payload_providers: List[PayloadProvider] = []
        self._failure_listeners: List[FailureListener] = []

        host.on_crash(self._teardown)
        host.register_handler(OverlayPing, self._on_ping)
        host.register_handler(OverlayPingAck, self._on_ping_ack)
        host.register_handler(RouteEnvelope, self._on_route_envelope)
        host.register_handler(NeighborUpdate, self._on_neighbor_update)
        host.register_handler(LeaveNotice, self._on_leave_notice)
        host.register_handler(JoinProbe, self._on_join_probe)
        host.register_handler(JoinReply, self._on_join_reply)
        host.register_handler(RepairExchange, self._on_repair_exchange)

    # ------------------------------------------------------------------
    # Client hooks (the §6.1 API surface FUSE consumes)
    # ------------------------------------------------------------------
    def register_upcall(self, listener: UpcallListener) -> None:
        self._upcall_listeners.append(listener)

    def register_ping_listener(self, listener: PingListener) -> None:
        self._ping_listeners.append(listener)

    def register_payload_provider(self, provider: PayloadProvider) -> None:
        plane = self.overlay.lane_plane
        if plane is not None:
            # Lanes snapshot payload collection at absorb time, and any
            # lane may hold this node as a neighbor: flush them all.
            plane.flush()
        self._payload_providers.append(provider)

    def register_failure_listener(self, listener: FailureListener) -> None:
        self._failure_listeners.append(listener)

    def neighbors(self) -> Set[NodeId]:
        """Current distinct neighbor hosts (routing table visibility)."""
        return set(self._neighbor_ids())

    def _neighbor_ids(self) -> Tuple[NodeId, ...]:
        """Sorted resolved neighbor ids, cached per pushed table — the
        per-sweep ``resolve``+``sorted`` over the table was a bootstrap
        hot spot at thousands of nodes."""
        cache = self._neighbor_cache
        if cache is not None:
            return cache[0]
        if self.table is None:
            return ()
        resolve = self.overlay.resolve
        out: Set[NodeId] = set()
        for name in self.table.neighbor_names():
            node_id = resolve(name)
            if node_id is not None:
                out.add(node_id)
        ordered = tuple(sorted(out))
        self._neighbor_cache = (ordered, frozenset(ordered))
        return ordered

    def _neighbor_id_set(self) -> frozenset:
        self._neighbor_ids()
        cache = self._neighbor_cache
        return cache[1] if cache is not None else frozenset()

    # ------------------------------------------------------------------
    # Join / leave
    # ------------------------------------------------------------------
    def join(self, bootstrap: Optional[NodeId] = None) -> None:
        """Join the overlay, locating the insertion point via ``bootstrap``
        (a random existing member when omitted)."""
        if self.joined:
            raise RuntimeError(f"{self.name} is already joined")
        self.overlay.register_node(self)
        if self.overlay.member_count == 0:
            self.overlay.complete_join(self)
            self._announce_to_neighbors()
            return
        target = bootstrap if bootstrap is not None else self.overlay.random_member_id()
        if target is None or target == self.host.node_id:
            self.overlay.complete_join(self)
            self._announce_to_neighbors()
            return
        self._join_attempts += 1
        probe = JoinProbe(self.host.node_id, self.name)
        envelope = RouteEnvelope(self.name, probe, origin=self.host.node_id)
        self.host.send(target, envelope, on_fail=lambda *_: self._retry_join())
        self._join_timer = self.host.call_after(
            30_000.0, self._retry_join, label=f"{self.name}:join-timeout"
        )

    def _retry_join(self) -> None:
        if self.joined:
            return
        if self._join_timer is not None:
            self._join_timer.cancel()
        if self._join_attempts >= 3:
            # Bootstrap path is persistently broken; fall back to direct
            # registration so the deployment can make progress.
            self.overlay.complete_join(self)
            self._announce_to_neighbors()
            return
        self.join()

    def _on_join_probe(self, message: Message) -> None:
        probe = message
        if probe.joiner == self.host.node_id:
            return
        self.host.send(probe.joiner, JoinReply())

    def _on_join_reply(self, _message: Message) -> None:
        if self.joined:
            return
        if self._join_timer is not None:
            self._join_timer.cancel()
        self.overlay.complete_join(self)
        self._announce_to_neighbors()

    def _announce_to_neighbors(self) -> None:
        """Tell every routing-table neighbor we exist (NeighborUpdate)."""
        for node_id in self._neighbor_ids():
            self.host.send(node_id, NeighborUpdate(self.name))

    def leave(self) -> None:
        """Graceful departure: notify neighbors, stop pinging."""
        if not self.joined:
            return
        for node_id in self._neighbor_ids():
            self.host.send(node_id, LeaveNotice(self.name))
        self._teardown()
        self.overlay.member_leave(self)

    def _teardown(self) -> None:
        plane = self.overlay.lane_plane
        if plane is not None:
            # Materialize any laned timers first so the cancellation
            # below sees exactly the handles the scalar path would hold.
            plane.eject_node(self)
        self.joined = False
        if self._sweep_timer is not None:
            self._sweep_timer.cancel()
            self._sweep_timer = None
        for _nonce, timer in self._outstanding_pings.values():
            timer.cancel()
        self._outstanding_pings.clear()

    def on_declared_dead(self) -> None:
        """Called by the overlay when some neighbor reported us dead (we
        crashed or were disconnected).  Local state is torn down; a
        recovered process must join() again."""
        self._teardown()

    # ------------------------------------------------------------------
    # Table management (pushed by the overlay coordinator)
    # ------------------------------------------------------------------
    def set_table(self, table: NodeTable) -> None:
        plane = self.overlay.lane_plane
        if plane is not None:
            # A table change is lane-heterogeneous (the neighbor set the
            # lane snapshotted may be stale): back to the scalar path.
            plane.eject_node(self)
        self.table = table
        self._neighbor_cache = None
        if not self.joined:
            self.joined = True
            self._schedule_first_sweep()
        # Cancel outstanding pings to nodes that are no longer neighbors.
        # (Outstanding pings are always a subset of the previous table's
        # neighbors, so filtering them against the new set is equivalent
        # to the old-minus-new diff without recomputing the old set.)
        if self._outstanding_pings:
            current = self._neighbor_id_set()
            for node_id in [n for n in self._outstanding_pings if n not in current]:
                self._outstanding_pings.pop(node_id)[1].cancel()

    def _on_neighbor_update(self, _message: Message) -> None:
        # Table contents arrive via the coordinator; the message models
        # the join announcement traffic and needs no further action.
        return

    def _on_leave_notice(self, message: Message) -> None:
        leaver_id = self.overlay.resolve(message.leaver_name)
        if leaver_id is None:
            leaver_id = message.sender
        if leaver_id is not None:
            self._notify_failure(leaver_id, "left")

    def _on_repair_exchange(self, _message: Message) -> None:
        # Repair chatter: the coordinator already recomputed our table;
        # the message exists to model repair traffic volume.
        return

    # ------------------------------------------------------------------
    # Liveness pinging
    # ------------------------------------------------------------------
    def _schedule_first_sweep(self) -> None:
        phase = self.overlay.rng.uniform(0.0, self.config.ping_period_ms)
        # Compressed flash-crowd bootstraps set a floor past the end of
        # the join storm so no node starts probing while most of the
        # crowd is still mid-join (a ping sent at t into a 16k-node storm
        # can time out against a neighbor that simply hasn't joined yet,
        # permanently evicting it).  The floor is expressed as an
        # absolute time; zero (the default) leaves the phase untouched.
        floor_delay = self.overlay.first_sweep_floor_ms - self.overlay.sim.clock.now
        if floor_delay > 0.0:
            phase += floor_delay
        self._sweep_timer = self.host.call_after(phase, self._sweep, label=f"{self.name}:sweep")

    def _sweep(self) -> None:
        if not self.joined:
            return
        plane = self.overlay.lane_plane
        if plane is not None and plane.try_absorb(self):
            # The plane took over this sweep (and every subsequent one
            # until ejection): pings, acks, timeouts, and the reschedule
            # all run as lane micro-events.
            return
        for node_id in self._neighbor_ids():
            self._ping_neighbor(node_id)
        self._sweep_timer = self.host.call_after(
            self.config.ping_period_ms, self._sweep, label=f"{self.name}:sweep"
        )

    def _ping_neighbor(self, node_id: NodeId) -> None:
        if node_id in self._outstanding_pings:
            return  # previous ping still pending; its timer will decide
        nonce = next(self._ping_nonce)
        payload = self._collect_payload(node_id)
        timer = self.host.call_after(
            self.config.ping_timeout_ms,
            lambda: self._on_ping_timeout(node_id, nonce),
            label=f"{self.name}:ping-timeout",
        )
        self._outstanding_pings[node_id] = (nonce, timer)
        self.host.send(
            node_id,
            OverlayPing(nonce, payload),
            on_fail=lambda *_: self._on_ping_broken(node_id, nonce),
        )

    def _collect_payload(self, neighbor: NodeId) -> OverlayPayload:
        # Most pings carry nothing (no shared FUSE groups on the link);
        # those share one empty dict instead of allocating per ping.
        providers = self._payload_providers
        if len(providers) == 1:
            # Standard wiring (just the FUSE provider): no merge needed,
            # so the provider's dict rides as-is.  Payload dicts are
            # read-only downstream.
            contribution = providers[0](neighbor)
            return contribution if contribution else _EMPTY_PAYLOAD
        payload: Optional[OverlayPayload] = None
        for provider in providers:
            contribution = provider(neighbor)
            if contribution:
                if payload is None:
                    payload = {}
                payload.update(contribution)
        return payload if payload is not None else _EMPTY_PAYLOAD

    def _on_ping(self, message: Message) -> None:
        ping = message
        sender = ping.sender
        if sender is None:
            return
        ack_payload = self._collect_payload(sender)
        self.host.send(sender, OverlayPingAck(ping.nonce, ack_payload))
        for listener in self._ping_listeners:
            listener(sender, ping.payload, False)

    def _on_ping_ack(self, message: Message) -> None:
        ack = message
        sender = ack.sender
        if sender is None:
            return
        pending = self._outstanding_pings.get(sender)
        if pending is not None and pending[0] == ack.nonce:
            pending[1].cancel()
            del self._outstanding_pings[sender]
        for listener in self._ping_listeners:
            listener(sender, ack.payload, True)

    def _on_ping_timeout(self, node_id: NodeId, nonce: int) -> None:
        pending = self._outstanding_pings.get(node_id)
        if pending is None or pending[0] != nonce:
            return
        del self._outstanding_pings[node_id]
        self._suspect(node_id, "timeout")

    def _on_ping_broken(self, node_id: NodeId, nonce: int) -> None:
        pending = self._outstanding_pings.get(node_id)
        if pending is not None and pending[0] == nonce:
            pending[1].cancel()
            del self._outstanding_pings[node_id]
        self._suspect(node_id, "broken")

    def _suspect(self, node_id: NodeId, reason: str) -> None:
        """A neighbor stopped responding: tell clients, repair the table."""
        if not self.joined:
            return
        name = self.overlay.name_of(node_id)
        self._notify_failure(node_id, reason)
        if name is None:
            return
        # Repair chatter toward a few live neighbors (Fig 10's churn cost).
        others = [n for n in self._neighbor_ids() if n != node_id]
        for peer in others[: self.config.repair_fanout]:
            self.host.send(peer, RepairExchange(name))
        self.overlay.report_dead(name)

    def _notify_failure(self, node_id: NodeId, reason: str) -> None:
        for listener in self._failure_listeners:
            listener(node_id, reason)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, dest_name: NameId, payload: Message) -> None:
        """Route ``payload`` toward ``dest_name`` through the overlay."""
        if not self.joined:
            raise RuntimeError(f"{self.name} cannot route before joining")
        envelope = RouteEnvelope(dest_name, payload, origin=self.host.node_id)
        self._forward(envelope, prev_hop=None)

    def next_hop_name(self, dest_name: NameId) -> Optional[NameId]:
        """The neighbor this node would forward a message for ``dest_name``
        to, or None when this node is the terminal hop.  Exposed because
        the paper requires the routing table to be visible to clients."""
        if self.table is None or dest_name == self.name:
            return None
        best: Optional[NameId] = None
        for candidate in self.table.neighbor_names():
            if not clockwise_between(self.name, candidate, dest_name):
                continue
            if best is None or clockwise_between(best, candidate, dest_name):
                best = candidate
        return best

    def _on_route_envelope(self, message: Message) -> None:
        envelope = message
        self._forward(envelope, prev_hop=envelope.sender)

    def _forward(self, envelope: RouteEnvelope, prev_hop: Optional[NodeId]) -> None:
        if envelope.hop_count >= self.config.max_route_hops:
            self.overlay.sim.metrics.counter("overlay.route_drops").increment()
            return
        next_name = self.next_hop_name(envelope.dest_name) if self.joined else None
        next_id = self.overlay.resolve(next_name) if next_name is not None else None
        delivered = next_id is None
        consumed = False
        for listener in self._upcall_listeners:
            if listener(envelope, prev_hop, next_id, delivered):
                consumed = True
        if consumed:
            return
        if delivered:
            self._deliver_locally(envelope)
            return
        envelope.hop_count += 1
        self.host.send(
            next_id,
            envelope,
            on_fail=lambda *_: self._on_forward_broken(envelope, prev_hop, next_id),
        )

    def _on_forward_broken(self, envelope: RouteEnvelope, prev_hop: Optional[NodeId], next_id: NodeId) -> None:
        """The link to the chosen next hop broke: suspect it and retry once
        with the repaired table."""
        self._suspect(next_id, "broken")
        retry_name = self.next_hop_name(envelope.dest_name) if self.joined else None
        if retry_name is None:
            self._deliver_locally(envelope)
            return
        retry_id = self.overlay.resolve(retry_name)
        if retry_id is None or retry_id == next_id:
            self.overlay.sim.metrics.counter("overlay.route_drops").increment()
            return
        self.host.send(retry_id, envelope)

    def _deliver_locally(self, envelope: RouteEnvelope) -> None:
        """Terminal hop: hand the payload to the local protocol stack.

        The envelope may terminate here even though ``dest_name`` names a
        different (departed) node — the local handler decides what an
        inexact delivery means (for InstallChecking it triggers repair).
        """
        payload = envelope.payload
        payload.sender = envelope.origin
        self.host.deliver(payload)

    def __repr__(self) -> str:
        state = "joined" if self.joined else "detached"
        return f"OverlayNode({self.name}, {state})"

"""Deployment coordinator: membership registry and table distribution.

The coordinator plays the role of SkipNet's decentralized neighbor-search
machinery: it knows the current membership, computes each node's R-table
and leaf set from the ring structure, and pushes updated tables to the
nodes a membership change affects.  Everything time- and failure-related —
pings, timeouts, routing, upcalls, repair traffic — happens peer-to-peer
between :class:`repro.overlay.skipnet.node.OverlayNode` instances; the
coordinator performs no message delivery and is consulted only on
membership change (join, leave, detected death).

This is the simulation substitution documented in docs/ARCHITECTURE.md: pointer
*placement* is oracle-computed, pointer *liveness* is protocol-measured.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.address import NodeId
from repro.net.network import Network
from repro.net.node import Host
from repro.overlay.id_space import NameId
from repro.overlay.skipnet.config import OverlayConfig
from repro.overlay.skipnet.node import OverlayNode
from repro.overlay.skipnet.rings import RingStructure
from repro.sim.kernel import Simulator


class SkipNetOverlay:
    """A SkipNet deployment over a simulated network."""

    def __init__(self, sim: Simulator, network: Network, config: Optional[OverlayConfig] = None) -> None:
        self.sim = sim
        self.network = network
        self.config = config or OverlayConfig()
        self.rng = sim.rng.stream("overlay")
        self.rings = RingStructure(
            self.config.base, self.config.numeric_digits, self.config.leaf_set_half
        )
        self._nodes: Dict[NameId, OverlayNode] = {}
        self._id_by_name: Dict[NameId, NodeId] = {}
        self._name_by_id: Dict[NodeId, NameId] = {}
        #: optional liveness-lane plane (repro.sim.lanes.LanePlane); the
        #: world installs it so OverlayNode sweeps can be absorbed.
        self.lane_plane = None
        #: absolute time before which no first sweep may fire; set by
        #: compressed flash-crowd bootstraps (see FuseWorld.bootstrap).
        self.first_sweep_floor_ms = 0.0

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------
    def create_node(self, host: Host) -> OverlayNode:
        """Instantiate the overlay protocol on ``host`` (does not join)."""
        if host.name in self._nodes:
            raise ValueError(f"overlay node for {host.name} already exists")
        node = OverlayNode(self, host)
        self._nodes[node.name] = node
        self._id_by_name[node.name] = host.node_id
        self._name_by_id[host.node_id] = node.name
        return node

    def register_node(self, node: OverlayNode) -> None:
        """Idempotent pre-join registration (name <-> host id maps)."""
        self._nodes[node.name] = node
        self._id_by_name[node.name] = node.host.node_id
        self._name_by_id[node.host.node_id] = node.name

    def complete_join(self, node: OverlayNode) -> None:
        """Insert the node into the rings and push affected tables.

        If the node is still in the rings (a crashed process restarting
        before any neighbor noticed), re-pushing its table is enough to
        restart its liveness sweeping.
        """
        if node.name in self.rings:
            self._push_table(node.name)
            return
        affected = self.rings.add(node.name)
        self._push_table(node.name)
        for name in sorted(affected):
            self._push_table(name)

    def member_leave(self, node: OverlayNode) -> None:
        self._remove_member(node.name)

    def report_dead(self, name: NameId) -> None:
        """A peer detected ``name`` as unresponsive; drop it from the rings.

        Idempotent — every neighbor of a crashed node will eventually
        report it.
        """
        self._remove_member(name)

    def _remove_member(self, name: NameId) -> None:
        if name not in self.rings:
            return
        affected = self.rings.remove(name)
        node = self._nodes.get(name)
        if node is not None:
            node.on_declared_dead()
        for other in sorted(affected):
            self._push_table(other)

    def _push_table(self, name: NameId) -> None:
        node = self._nodes.get(name)
        if node is None or name not in self.rings:
            return
        host = node.host
        if not host.alive:
            return
        node.set_table(self.rings.table_for(name))

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def member_count(self) -> int:
        return len(self.rings)

    def members(self) -> List[NameId]:
        return self.rings.members()

    def is_member(self, name: NameId) -> bool:
        return name in self.rings

    def node(self, name: NameId) -> OverlayNode:
        return self._nodes[name]

    def resolve(self, name: NameId) -> Optional[NodeId]:
        """Host id for an overlay name, or None if unknown."""
        return self._id_by_name.get(name)

    def name_of(self, node_id: NodeId) -> Optional[NameId]:
        return self._name_by_id.get(node_id)

    def random_member_id(self) -> Optional[NodeId]:
        members = self.rings.members()
        if not members:
            return None
        return self._id_by_name[self.rng.choice(members)]

    # ------------------------------------------------------------------
    # Global-view helpers (tests and experiment bookkeeping only)
    # ------------------------------------------------------------------
    def overlay_route(self, src_name: NameId, dst_name: NameId) -> List[NameId]:
        """The node sequence a message from src to dst traverses right now.

        Uses each hop's own next_hop_name decision, so it is exactly what
        routing would do; experiments use it to find a group's delegates
        without sending messages.
        """
        path = [src_name]
        current = src_name
        for _ in range(self.config.max_route_hops):
            node = self._nodes.get(current)
            if node is None:
                break
            nxt = node.next_hop_name(dst_name)
            if nxt is None:
                break
            path.append(nxt)
            current = nxt
        return path

    def average_neighbor_count(self) -> float:
        members = self.rings.members()
        if not members:
            return 0.0
        total = sum(len(self._nodes[m].neighbors()) for m in members)
        return total / len(members)

    def __repr__(self) -> str:
        return f"SkipNetOverlay(members={self.member_count})"

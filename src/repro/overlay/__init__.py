"""SkipNet-style structured overlay network.

FUSE's reference implementation runs on SkipNet (Harvey et al., USITS
2003) and relies on exactly three overlay properties (§6.1 of the FUSE
paper):

1. messages routed through the overlay cause a **client upcall on every
   intermediate hop**;
2. the **routing table is visible** to the client layer;
3. every overlay link is **liveness-checked from both sides** by periodic
   pings, and clients may **piggyback content** on those pings.

This package provides a SkipNet overlay with those properties: name-ID
rings at multiple levels (base-8 numeric prefixes), an R-table plus leaf
set per node, hop-by-hop name routing with upcalls, both-sides ping
monitoring with piggyback payloads, join/leave, and failure repair.

Simulation substitution (documented in docs/ARCHITECTURE.md): ring pointer *contents*
are derived from a shared membership registry rather than discovered by
SkipNet's full decentralized search protocol; the join/leave/repair
*message traffic* is still exchanged and counted, and all routing, pings,
timeouts, and upcalls are genuine per-message protocol behaviour.  FUSE
never reads the registry — it sees only the per-node overlay API.
"""

from repro.overlay.id_space import NameId, NumericId, name_distance_clockwise, numeric_id_for
from repro.overlay.skipnet import (
    OverlayConfig,
    OverlayNode,
    OverlayPayload,
    SkipNetOverlay,
)

__all__ = [
    "NameId",
    "NumericId",
    "OverlayConfig",
    "OverlayNode",
    "OverlayPayload",
    "SkipNetOverlay",
    "name_distance_clockwise",
    "numeric_id_for",
]

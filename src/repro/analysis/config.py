"""Repo-tuned configuration for the determinism-hazard analyzer.

Every rule that needs to know "where is this allowed" or "what counts as
a sink" reads it from one :class:`AnalysisConfig` instance instead of
hard-coding paths, so the whole sanctioned-module story lives here and is
shared with the tier-1 wrapper tests (``tests/test_time_purity.py``
imports :data:`DEFAULT_CONFIG` rather than keeping its own list).

Path patterns are matched by *posix segment suffix*:

* a pattern ending in ``/`` (``net/backends/``) matches any file whose
  path contains that directory run (``src/repro/net/backends/codec.py``);
* any other pattern (``sim/rng.py``) matches a file whose path *ends*
  with that suffix.

This makes the config independent of where the tree is mounted and lets
test fixtures opt into a rule's scoped behaviour simply by living under a
matching directory name (``tests/data/analysis/scenarios/…``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


def module_matches(path_posix: str, patterns: Tuple[str, ...]) -> bool:
    """True when ``path_posix`` matches any pattern (see module doc)."""
    padded = "/" + path_posix
    for pattern in patterns:
        if not pattern:
            return True
        if pattern.endswith("/"):
            if "/" + pattern in padded or path_posix.startswith(pattern):
                return True
        elif padded.endswith("/" + pattern):
            return True
    return False


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs for all rules; defaults are tuned to this repository."""

    #: DH001: the only modules allowed to construct/own raw RNGs.  The
    #: named-stream provider is the one sanctioned home (plus the fuzzer,
    #: which seeds every ``random.Random`` it makes — seeded construction
    #: is allowed everywhere anyway, so the list stays minimal).
    rng_provider_modules: Tuple[str, ...] = ("sim/rng.py",)

    #: DH002: the only package allowed to read the wall clock or system
    #: entropy — the live backend, by design.  Shared with
    #: tests/test_time_purity.py (which used to keep its own copy).
    wallclock_modules: Tuple[str, ...] = ("net/backends/",)

    #: DH003: call names whose arguments/ordering are part of the
    #: deterministic event stream.  A set-ordered loop that reaches one
    #: of these leaks hash order into the replay.
    order_sink_names: Tuple[str, ...] = ("send", "notified", "append", "extend")
    order_sink_prefixes: Tuple[str, ...] = ("schedule_", "call_", "record_")

    #: DH003: also treat plain dict iteration as hazardous.  Off by
    #: default: CPython dicts are insertion-ordered (3.7+), so a dict
    #: built by a deterministic run iterates deterministically; the
    #: hazard class is *hash-ordered* containers, i.e. sets.  Flip on
    #: for an audit sweep of dict-order assumptions.
    strict_dict_order: bool = False

    #: DH005: modules whose instances are reused across serial replicas
    #: (PR 3's scenario-track contract) — module-level mutable state
    #: there bleeds between replicas.
    track_modules: Tuple[str, ...] = ("scenarios/",)

    #: DH006: modules containing fork/worker entry paths.  Globals
    #: mutated after fork diverge between parent and children, so the
    #: serial fallback no longer replays the parallel run.
    worker_modules: Tuple[str, ...] = (
        "engine/parallel.py",
        "engine/trial.py",
        "sim/parallel.py",
        "engine/windows.py",
    )

    #: Directory runs excluded from *walks* (explicit file arguments
    #: bypass this).  ``tests/data/`` holds deliberately-hazardous red
    #: fixtures — they must never fail the clean-run gate.
    exclude_dirs: Tuple[str, ...] = ("tests/data/", "__pycache__/", ".git/")

    #: Rule ids to run; () means all registered rules.
    rules: Tuple[str, ...] = field(default=())

    def is_excluded(self, path_posix: str) -> bool:
        return module_matches(path_posix, self.exclude_dirs)


DEFAULT_CONFIG = AnalysisConfig()

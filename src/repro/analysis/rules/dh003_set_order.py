"""DH003 — set iteration order escaping into the event stream.

CPython iterates sets in hash-table order.  For strings that order
depends on ``PYTHONHASHSEED``; for everything it depends on insertion
history and table resizes — none of which is part of the replay
contract.  The moment that order reaches a *sink* — a scheduler call
(``schedule_*``/``call_*``), a transport ``send``, a ledger
``record_*``/``append`` — two runs of "the same" world can dispatch the
same events in different sequence and the byte-identity matrix (lanes
on/off/py, serial vs ``--jobs``, workers 1/2/4, sim vs wire) is dead.

Flagged shapes (``s`` inferred set-typed; see
:func:`repro.analysis.astutil.infer_set_types`):

* ``for x in s: …sink(x)…`` — loop body reaches a sink;
* ``[f(x) for x in s]`` — a list comprehension materializes the order;
* ``list(s)`` / ``tuple(s)`` — ditto, as an expression.

Not flagged: ``sorted(s)`` (the fix), membership tests, order-free
reductions (``len``/``sum``/``min``/``max``/``any``/``all``/``set``),
and — by default — dict iteration: CPython dicts are insertion-ordered,
so a deterministically-built dict iterates deterministically
(``AnalysisConfig.strict_dict_order`` turns dict checking on for audit
sweeps).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.astutil import call_name, class_set_attrs, infer_set_types
from repro.analysis.engine import FileContext, Finding

#: Order-free consumers of an iterable: iteration order cannot escape.
_ORDER_FREE = {"len", "sum", "min", "max", "any", "all", "set", "frozenset", "sorted"}

_DICT_VIEW_METHODS = {"keys", "values", "items"}


class SetOrderEscapeRule:
    rule_id = "DH003"
    title = "set/dict iteration order escapes into a scheduling sink"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # Walk every function with its class's set-typed self attrs in
        # scope; module level gets an empty-class pass of its own.
        yield from self._check_scope(ctx, ctx.tree, set())
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                attrs = class_set_attrs(node)
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield from self._check_scope(ctx, sub, attrs)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not self._in_class(ctx, node):
                    yield from self._check_scope(ctx, node, set())

    # -- scope helpers ----------------------------------------------------

    def _in_class(self, ctx: FileContext, func: ast.AST) -> bool:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and func in node.body:
                return True
        return False

    def _is_sink_call(self, ctx: FileContext, node: ast.Call) -> bool:
        name = call_name(node)
        if name is None:
            return False
        config = ctx.config
        return name in config.order_sink_names or name.startswith(
            tuple(config.order_sink_prefixes)
        )

    def _hazard_iter(self, types, node: ast.AST, config) -> bool:
        """Is ``node`` (a ``for``'s iterable) hash-ordered?"""
        if types.is_set(node):
            return True
        if config.strict_dict_order:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _DICT_VIEW_METHODS
            ):
                return True
            if isinstance(node, (ast.Dict, ast.DictComp)):
                return True
        return False

    def _check_scope(
        self, ctx: FileContext, scope: ast.AST, self_attrs: Set[str]
    ) -> Iterator[Finding]:
        types = infer_set_types(scope, self_attrs)
        body = scope.body if isinstance(scope, ast.Module) else scope
        nodes: List[ast.AST] = (
            list(ast.iter_child_nodes(scope))
            if isinstance(scope, ast.Module)
            else [scope]
        )
        for top in nodes:
            for node in ast.walk(top):
                # Skip nested defs at module level (handled per-function).
                if isinstance(scope, ast.Module) and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    break
                if isinstance(node, (ast.For, ast.AsyncFor)) and self._hazard_iter(
                    types, node.iter, ctx.config
                ):
                    sink = self._first_sink(ctx, node.body)
                    if sink is not None:
                        yield Finding(
                            self.rule_id,
                            ctx.rel,
                            node.lineno,
                            node.col_offset,
                            "iterating a hash-ordered container here feeds "
                            f"'{sink}' in the loop body — wrap the iterable in "
                            "sorted() so the event order is replayable",
                        )
                elif isinstance(node, ast.ListComp) and any(
                    self._hazard_iter(types, gen.iter, ctx.config)
                    for gen in node.generators
                ):
                    yield Finding(
                        self.rule_id,
                        ctx.rel,
                        node.lineno,
                        node.col_offset,
                        "list comprehension over a hash-ordered container "
                        "materializes set order — wrap the iterable in sorted()",
                    )
                elif (
                    isinstance(node, ast.Call)
                    and call_name(node) in ("list", "tuple")
                    and len(node.args) == 1
                    and not node.keywords
                    and self._hazard_iter(types, node.args[0], ctx.config)
                ):
                    yield Finding(
                        self.rule_id,
                        ctx.rel,
                        node.lineno,
                        node.col_offset,
                        f"{call_name(node)}() over a hash-ordered container "
                        "materializes set order — use sorted() instead",
                    )

    def _first_sink(self, ctx: FileContext, body: List[ast.stmt]):
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and self._is_sink_call(ctx, node):
                    return call_name(node)
        return None

"""DH005 — mutable defaults and module-level mutable state in tracks.

Two shapes of shared-mutable-state hazard:

* **Mutable default arguments** (anywhere in the tree): the default is
  evaluated once and shared by every call — state leaks between calls,
  and therefore between the serial replicas that reuse one callable.
* **Module-level mutable bindings in scenario-track modules**
  (:attr:`AnalysisConfig.track_modules`): PR 3's contract is that track
  *instances* are reused across serial replicas and keep per-run state
  on the :class:`~repro.scenarios.timeline.ScenarioContext` scratch —
  a module-level list/dict/set is shared by *all* replicas in a
  process but reset in a forked worker, so serial and ``--jobs`` runs
  diverge.  ALL_CAPS names are exempt: registries like ``TRACK_KINDS``
  are constants by repo convention (built at import, never mutated).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import is_constant_name, is_mutable_literal
from repro.analysis.config import module_matches
from repro.analysis.engine import FileContext, Finding


class MutableStateRule:
    rule_id = "DH005"
    title = "mutable default arg / module-level mutable state in tracks"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                defaults = [*node.args.defaults, *node.args.kw_defaults]
                for default in defaults:
                    if default is not None and is_mutable_literal(default):
                        name = getattr(node, "name", "<lambda>")
                        yield Finding(
                            self.rule_id,
                            ctx.rel,
                            default.lineno,
                            default.col_offset,
                            f"mutable default argument on {name}(): evaluated "
                            "once and shared across calls (and replicas) — "
                            "default to None and build inside",
                        )
        if not module_matches(ctx.rel, ctx.config.track_modules):
            return
        for stmt in ctx.tree.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            if value is None or not is_mutable_literal(value):
                continue
            for target in targets:
                if is_constant_name(target.id):
                    continue
                yield Finding(
                    self.rule_id,
                    ctx.rel,
                    stmt.lineno,
                    stmt.col_offset,
                    f"module-level mutable {target.id!r} in a scenario-track "
                    "module: replicas share it in-process but not across "
                    "forked workers — keep per-run state on ctx.scratch "
                    "(or rename ALL_CAPS if it is a build-once registry)",
                )

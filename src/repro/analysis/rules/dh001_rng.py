"""DH001 — unseeded or module-level RNG outside the rng provider.

The module-level ``random.*`` functions draw from one process-global
generator whose state depends on import order, interpreter startup, and
every other caller — the exact opposite of the named-stream discipline in
:mod:`repro.sim.rng` ("changing how one subsystem consumes randomness
must not perturb any other subsystem").  ``numpy.random.*`` free
functions share the same hazard through numpy's global ``RandomState``.
Unseeded constructors (``random.Random()``, ``numpy.random.default_rng()``
with no arguments) seed from OS entropy, so two replays disagree by
construction.

Seeded construction (``random.Random(seed)``, ``default_rng(seed)``) is
allowed everywhere; the sanctioned provider modules
(:attr:`AnalysisConfig.rng_provider_modules`) may do whatever they like —
owning raw generators is their job.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import module_matches
from repro.analysis.engine import FileContext, Finding

#: Constructors that are fine when given an explicit seed argument.
_SEEDABLE = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
}

#: Always-hazardous dotted prefixes (module-level global generators).
_FORBIDDEN_PREFIXES = ("numpy.random.",)

#: ``random.SystemRandom`` reads OS entropy even when "seeded".
_ALWAYS_FORBIDDEN = {"random.SystemRandom"}


def _is_module_random_fn(dotted: str) -> bool:
    return dotted.startswith("random.") and dotted not in _SEEDABLE | _ALWAYS_FORBIDDEN


class UnseededRngRule:
    rule_id = "DH001"
    title = "unseeded / module-level RNG outside the rng provider"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if module_matches(ctx.rel, ctx.config.rng_provider_modules):
            return
        call_funcs = {
            node.func for node in ast.walk(ctx.tree) if isinstance(node, ast.Call)
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = ctx.imports.resolve(node.func)
                if dotted is None:
                    continue
                if dotted in _SEEDABLE:
                    if not node.args and not node.keywords:
                        yield self._finding(
                            ctx,
                            node,
                            f"{dotted}() without a seed draws from OS entropy; "
                            "pass an explicit seed (or take a stream from "
                            "repro.sim.rng.RngStreams)",
                        )
                    continue
                if (
                    dotted in _ALWAYS_FORBIDDEN
                    or _is_module_random_fn(dotted)
                    or dotted.startswith(_FORBIDDEN_PREFIXES)
                ):
                    yield self._finding(
                        ctx,
                        node,
                        f"{dotted}() uses a process-global generator; draw from a "
                        "named stream (repro.sim.rng.RngStreams) instead",
                    )
            elif isinstance(node, ast.Attribute) and node not in call_funcs:
                # Bare references (callbacks, aliases): `jitter = random.random`.
                dotted = ctx.imports.resolve(node)
                if dotted is None:
                    continue
                if dotted in _ALWAYS_FORBIDDEN or _is_module_random_fn(dotted):
                    yield self._finding(
                        ctx,
                        node,
                        f"reference to {dotted} binds the process-global generator",
                    )

    def _finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(self.rule_id, ctx.rel, node.lineno, node.col_offset, message)

"""DH004 — ``id()`` / builtin ``hash()`` in ordering or keys.

``id()`` is an address: it differs between the parent and a forked
worker, between two runs of the same binary, and between serial and
``--jobs`` execution — any ordering, key, or serialized value derived
from it is unreplayable.  Builtin ``hash()`` on strings/bytes is salted
by ``PYTHONHASHSEED``, so sort keys or bucket choices built on it change
across interpreter launches.  The deterministic alternatives are stable
ids (``repro.fuse.ids``), explicit tuple sort keys, or
``hashlib``-derived digests (what :mod:`repro.sim.rng` and
:mod:`repro.engine.sweep` already do).

The rule flags every call to builtin ``id``/``hash`` (shadowed local
definitions are respected), with a sharper message when the value
flows into an obvious key/ordering position — a subscript, a dict
literal key, a ``key=`` callable, or a keyed container method
(``get``/``pop``/``setdefault``/…).  ``hash()`` inside a ``__hash__``
implementation is exempt (delegating to member hashes is the idiom).
Deliberate per-process uses (scenario scratch keyed by ``id(track)``)
carry ``# repro: allow[DH004]`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.astutil import iter_parents
from repro.analysis.engine import FileContext, Finding

_KEYED_METHODS = {
    "get",
    "pop",
    "setdefault",
    "add",
    "discard",
    "remove",
    "__getitem__",
    "__setitem__",
    "__contains__",
}

_ORDERING_CALLS = {"sorted", "min", "max"}


class HashIdRule:
    rule_id = "DH004"
    title = "id()/hash() used in ordering or keys"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        parents = iter_parents(ctx.tree)
        shadowed = self._shadowed_builtins(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Name) or func.id not in ("id", "hash"):
                continue
            if func.id in shadowed:
                continue
            if func.id == "hash" and self._inside_dunder_hash(node, parents):
                continue
            context = self._key_context(node, parents)
            if context:
                message = (
                    f"{func.id}() used as {context}: values differ across "
                    "processes/runs (PYTHONHASHSEED / address layout), so the "
                    "derived order is unreplayable — use a stable key"
                )
            else:
                message = (
                    f"{func.id}() is process-specific (PYTHONHASHSEED / address "
                    "layout); never let it reach ordering, keys, or output"
                )
            yield Finding(
                self.rule_id, ctx.rel, node.lineno, node.col_offset, message
            )

    def _shadowed_builtins(self, tree: ast.Module) -> set:
        out = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in ("id", "hash"):
                    out.add(node.name)
                for arg in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]:
                    if arg.arg in ("id", "hash"):
                        out.add(arg.arg)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id in ("id", "hash"):
                        out.add(target.id)
        return out

    def _inside_dunder_hash(self, node: ast.AST, parents) -> bool:
        cursor: Optional[ast.AST] = node
        while cursor is not None:
            if isinstance(cursor, ast.FunctionDef) and cursor.name == "__hash__":
                return True
            cursor = parents.get(cursor)
        return False

    def _key_context(self, node: ast.AST, parents) -> Optional[str]:
        """A short description of the key/ordering position, or None."""
        cursor = node
        parent = parents.get(cursor)
        hops = 0
        while parent is not None and hops < 6:
            if isinstance(parent, ast.Subscript) and cursor is not parent.value:
                return "a subscript key"
            if isinstance(parent, ast.Dict) and cursor in parent.keys:
                return "a dict literal key"
            if isinstance(parent, ast.Call):
                if cursor in [kw.value for kw in parent.keywords if kw.arg == "key"]:
                    return "a sort key"
                name = parent.func
                if isinstance(name, ast.Attribute) and name.attr in _KEYED_METHODS:
                    if cursor in parent.args:
                        return f"a {name.attr}() key"
                if isinstance(name, ast.Name) and name.id in _ORDERING_CALLS:
                    if cursor in parent.args:
                        return f"an {name.id}() operand"
                # Once the value disappears into an arbitrary call we
                # stop climbing (the generic message still fires).
                break
            if isinstance(parent, (ast.Lambda, ast.FunctionDef, ast.Module)):
                break
            cursor, parent = parent, parents.get(parent)
            hops += 1
        # A lambda passed as key= : climb from the lambda itself.
        cursor = node
        while cursor is not None:
            if isinstance(cursor, ast.Lambda):
                grand = parents.get(cursor)
                if isinstance(grand, ast.keyword) and grand.arg == "key":
                    return "a sort key"
                break
            cursor = parents.get(cursor)
        return None

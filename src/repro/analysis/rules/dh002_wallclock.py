"""DH002 — wall-clock / entropy reads outside the live backend.

This generalizes the regex lint that ``tests/test_time_purity.py``
shipped in PR 9 (that test is now a thin wrapper over this rule): every
guarantee in the determinism matrix rests on protocol and harness code
measuring time through the clock seam
(:class:`repro.net.backends.base.ClockBase`) and drawing randomness from
seeded streams — never from the wall or the OS entropy pool.  The AST
form also catches what the regex could not: aliased imports
(``from time import perf_counter``), ``uuid``/``secrets``/``os.urandom``
entropy reads, and datetime "now" constructors.

Sanctioned home: :attr:`AnalysisConfig.wallclock_modules` — the live
backend package, where :class:`~repro.net.backends.wallclock.WallClock`
and the asyncio kernel read the wall by design.  Elapsed-time reporting
elsewhere routes through ``repro.net.backends.wallclock.wall_seconds`` /
``perf_seconds`` so every wall read stays visible at the seam.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import module_matches
from repro.analysis.engine import FileContext, Finding

FORBIDDEN_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.localtime",
    "time.gmtime",
    "time.sleep",
    "asyncio.sleep",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid3",
    "uuid.uuid4",
    "uuid.uuid5",
    "uuid.getnode",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

FORBIDDEN_PREFIXES = ("secrets.",)


def is_forbidden(dotted: str) -> bool:
    return dotted in FORBIDDEN_CALLS or dotted.startswith(FORBIDDEN_PREFIXES)


class WallClockRule:
    rule_id = "DH002"
    title = "wall-clock / entropy read outside net/backends/"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if module_matches(ctx.rel, ctx.config.wallclock_modules):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            # Attribute chains resolve at their outermost node only
            # (the `time` in `time.time` is not separately a hazard).
            dotted = ctx.imports.resolve(node)
            if dotted is None or not is_forbidden(dotted):
                continue
            if isinstance(node, ast.Name) and (
                node.id == dotted or not isinstance(node.ctx, ast.Load)
            ):
                continue  # bare non-import name, or a local rebinding
            yield Finding(
                self.rule_id,
                ctx.rel,
                node.lineno,
                node.col_offset,
                f"{dotted} reads the wall clock / OS entropy; route through "
                "repro.net.backends (ClockBase, wall_seconds, perf_seconds) "
                "or a seeded stream",
            )

"""Rule registry: one module per determinism-hazard rule.

Adding a rule is three steps (docs/ANALYSIS.md has the worked example):
write a module with a class exposing ``rule_id``/``title``/``check(ctx)``,
import it here, append it to :data:`ALL_RULES`, and drop a red/green
fixture pair under ``tests/data/analysis/``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.config import AnalysisConfig
from repro.analysis.rules.dh001_rng import UnseededRngRule
from repro.analysis.rules.dh002_wallclock import WallClockRule
from repro.analysis.rules.dh003_set_order import SetOrderEscapeRule
from repro.analysis.rules.dh004_hash_id import HashIdRule
from repro.analysis.rules.dh005_mutable_state import MutableStateRule
from repro.analysis.rules.dh006_fork_globals import ForkGlobalRule

ALL_RULES = (
    UnseededRngRule(),
    WallClockRule(),
    SetOrderEscapeRule(),
    HashIdRule(),
    MutableStateRule(),
    ForkGlobalRule(),
)

RULES_BY_ID = {rule.rule_id: rule for rule in ALL_RULES}


def selected_rules(config: AnalysisConfig) -> List:
    """The rule instances a config selects (all when ``config.rules`` is
    empty); unknown ids raise so typos in ``--rules`` fail loudly."""
    if not config.rules:
        return list(ALL_RULES)
    missing = [rid for rid in config.rules if rid not in RULES_BY_ID]
    if missing:
        raise KeyError(f"unknown rule id(s): {', '.join(missing)}")
    return [RULES_BY_ID[rid] for rid in config.rules]

"""DH006 — post-fork global mutation in parallel worker paths.

The trial executor (:mod:`repro.engine.parallel`) forks workers and
promises that a serial loop replays a parallel run seed-for-seed; the
window engine (:mod:`repro.sim.parallel`) forks partition workers and
promises byte-identical merged streams for any ``--workers``.  Both
promises die the moment a worker-path function mutates module-level
state: the mutation lands in one forked address space, the serial run
sees it accumulate across trials, and the two executions diverge.

In :attr:`AnalysisConfig.worker_modules` the rule flags, inside any
function:

* ``global`` declarations (rebinding a module name post-fork);
* assignments through a module-level name (``CACHE[k] = v``,
  ``CACHE.total = n``);
* mutating method calls on a module-level name (``CACHE.update(…)``,
  ``REGISTRY.append(…)``).

Module-level constants stay legal — only *mutation from function bodies*
is the hazard.  Worker state belongs on the spec/result objects that
cross the process boundary explicitly.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.config import module_matches
from repro.analysis.engine import FileContext, Finding

_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "discard",
    "clear",
    "extend",
    "extendleft",
    "insert",
    "__setitem__",
    "__delitem__",
}


def _module_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
    return names


def _base_name(node: ast.AST) -> str:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else ""


class ForkGlobalRule:
    rule_id = "DH006"
    title = "post-fork global mutation in a worker path"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not module_matches(ctx.rel, ctx.config.worker_modules):
            return
        module_names = _module_level_names(ctx.tree)
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local_names = self._local_bindings(func)
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    yield Finding(
                        self.rule_id,
                        ctx.rel,
                        node.lineno,
                        node.col_offset,
                        f"global {', '.join(node.names)}: rebinding module "
                        "state in a worker path diverges forked workers from "
                        "the serial replay — thread state through "
                        "spec/result objects",
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    for target in targets:
                        if not isinstance(target, (ast.Attribute, ast.Subscript)):
                            continue
                        base = _base_name(target)
                        if base in module_names and base not in local_names:
                            yield Finding(
                                self.rule_id,
                                ctx.rel,
                                node.lineno,
                                node.col_offset,
                                f"writes through module-level {base!r} in a "
                                "worker path: forked workers and the serial "
                                "replay see different state",
                            )
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if node.func.attr not in _MUTATORS:
                        continue
                    base = _base_name(node.func)
                    if base in module_names and base not in local_names:
                        yield Finding(
                            self.rule_id,
                            ctx.rel,
                            node.lineno,
                            node.col_offset,
                            f"{base}.{node.func.attr}(…) mutates module-level "
                            "state in a worker path: forked workers and the "
                            "serial replay see different state",
                        )

    def _local_bindings(self, func: ast.AST) -> Set[str]:
        """Names bound locally (params + assignments) — these shadow
        module-level names of the same spelling."""
        out: Set[str] = set()
        args = func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            out.add(arg.arg)
        if args.vararg:
            out.add(args.vararg.arg)
        if args.kwarg:
            out.add(args.kwarg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                out.add(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
                node.target, ast.Name
            ):
                out.add(node.target.id)
            elif isinstance(node, (ast.withitem,)) and node.optional_vars is not None:
                if isinstance(node.optional_vars, ast.Name):
                    out.add(node.optional_vars.id)
        return out

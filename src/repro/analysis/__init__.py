"""Determinism-hazard static analyzer for the repro tree.

Every contract this reproduction makes — byte-identical event streams
across lanes on/off/py, serial vs ``--jobs``, workers 1/2/4, sim vs
wire — is enforced *dynamically* by golden fixtures.  This package is
the static half: an AST lint suite that catches the hazard classes
(stray RNG, wall-clock reads, set-order escapes, ``id()``/``hash()``
keys, shared mutable state, post-fork global mutation) at review time,
before a fixture ever has the chance to go red.

CLI::

    python -m repro.analysis src/ [--format text|json] [--rules DH003]

Suppress a deliberate hazard on its line (or the pure-comment line
directly above) with a justification::

    for t in set(targets):  # repro: allow[DH003] int sets are seed-stable

Unused suppressions are themselves findings, so allows cannot outlive
the hazard they excuse.  See docs/ANALYSIS.md for the rule table.
"""

from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig, module_matches
from repro.analysis.engine import (
    AnalysisResult,
    FileReport,
    Finding,
    analyze_file,
    analyze_paths,
    iter_python_files,
)
from repro.analysis.rules import ALL_RULES, RULES_BY_ID, selected_rules

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "AnalysisConfig",
    "AnalysisResult",
    "DEFAULT_CONFIG",
    "FileReport",
    "Finding",
    "analyze_file",
    "analyze_paths",
    "iter_python_files",
    "module_matches",
    "selected_rules",
]

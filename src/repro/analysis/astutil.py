"""Shared AST plumbing for the determinism rules.

Three reusable pieces:

* :class:`ImportMap` — resolves a ``Name``/``Attribute`` chain to the
  fully-qualified dotted path it refers to, through ``import x as y`` and
  ``from x import y as z`` aliases (``np.random.rand`` →
  ``numpy.random.rand``).
* :class:`SetTypes` — conservative, function-local inference of which
  names / ``self`` attributes are set-typed, for the order-escape rule.
* small predicates (:func:`is_mutable_literal`, :func:`is_constant_name`)
  shared by the mutable-state rules.

Everything here is deliberately conservative: a name is only called
set-typed when *every* binding seen for it is a set expression, so the
rules err toward silence rather than noise.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

# ---------------------------------------------------------------------------
# Import-aware dotted-name resolution


class ImportMap:
    """Maps local aliases to fully-qualified dotted module paths."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    # "import a.b.c" binds "a" unless aliased.
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative imports never name stdlib hazards
                    continue
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{module}.{alias.name}" if module else alias.name

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted path for a Name/Attribute chain, or None."""
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.aliases.get(node.id, node.id)
        parts.append(head)
        return ".".join(reversed(parts))


def call_name(node: ast.Call) -> Optional[str]:
    """The bare trailing name of a call target (``a.b.send`` → ``send``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


# ---------------------------------------------------------------------------
# Mutable-literal predicates (DH005 / DH006)

_MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "deque",
    "Counter",
    "OrderedDict",
}


def is_mutable_literal(node: ast.AST) -> bool:
    """A value that is mutable *and* shared if evaluated once (defaults,
    module level): literals, comprehensions, bare mutable constructors."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in _MUTABLE_CALLS
    return False


def is_constant_name(name: str) -> bool:
    """ALL_CAPS (and dunder) names are constants by repo convention."""
    return name == name.upper() or (name.startswith("__") and name.endswith("__"))


# ---------------------------------------------------------------------------
# Set-type inference (DH003)

_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}

_SET_ANNOTATIONS = {"set", "Set", "FrozenSet", "frozenset", "MutableSet", "AbstractSet"}


def _annotation_is_set(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):  # Set[int], typing.Set[...]
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATIONS
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        head = node.value.split("[", 1)[0].rsplit(".", 1)[-1]
        return head in _SET_ANNOTATIONS
    return False


class SetTypes:
    """Which local names / ``self`` attributes are set-typed, per scope.

    ``self`` attributes are inferred class-wide: an attribute counts as a
    set only when every ``self.x = …`` binding in the class body is a set
    expression.  Local names likewise must only ever be bound to set
    expressions within the function.
    """

    def __init__(self, set_names: Set[str], set_self_attrs: Set[str]) -> None:
        self.set_names = set_names
        self.set_self_attrs = set_self_attrs

    def is_set(self, node: ast.AST) -> bool:
        """Conservative 'this expression is a set' check."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Attribute):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.set_self_attrs
            )
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in ("set", "frozenset"):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
                and self.is_set(node.func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set(node.body) and self.is_set(node.orelse)
        return False


def _assigned_names(target: ast.AST) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _assigned_names(elt)


def infer_set_types(
    func: ast.AST, class_set_attrs: Set[str]
) -> SetTypes:
    """Fixpoint inference of set-typed locals inside one function."""
    types = SetTypes(set(), class_set_attrs)
    bindings: Dict[str, list] = {}
    # Nested defs are folded into the enclosing scope's bindings — the
    # conservative disqualification below keeps that from over-reporting.
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for name in _assigned_names(target):
                    bindings.setdefault(name, []).append(node.value)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _annotation_is_set(node.annotation):
                types.set_names.add(node.target.id)
            elif node.value is not None:
                bindings.setdefault(node.target.id, []).append(node.value)
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if _annotation_is_set(arg.annotation):
                types.set_names.add(arg.arg)
    # Fixpoint over name→name chains (a = set(); b = a; ...).
    for _ in range(4):
        changed = False
        for name, values in bindings.items():
            if name in types.set_names:
                continue
            if values and all(types.is_set(v) for v in values):
                types.set_names.add(name)
                changed = True
        if not changed:
            break
    # A name also bound to a non-set expression is disqualified.
    for name, values in bindings.items():
        if name in types.set_names and not all(types.is_set(v) for v in values):
            types.set_names.discard(name)
    return types


def class_set_attrs(cls: ast.ClassDef) -> Set[str]:
    """``self`` attributes bound only to set expressions anywhere in the
    class (two passes: collect candidates, then disqualify mixed ones)."""
    seed = SetTypes(set(), set())
    bindings: Dict[str, list] = {}
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    bindings.setdefault(target.attr, []).append(node.value)
    return {
        attr
        for attr, values in bindings.items()
        if values and all(seed.is_set(v) for v in values)
    }


def iter_parents(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    """Child → parent map for context-sensitive rules."""
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents

"""Core of the determinism-hazard analyzer: walk, run rules, audit.

The engine parses each file once, hands the tree to every registered
rule, then reconciles findings against ``# repro: allow[RULE]`` comments:

* a finding whose line (or the pure-comment line directly above it)
  carries a matching allow is *suppressed*;
* an allow that suppressed nothing is itself reported as an
  ``unused-suppression`` finding — suppressions must not outlive the
  hazard they excuse;
* an allow naming a rule id the registry does not know is reported as
  ``unknown-suppression``.

Files that fail to parse produce a single ``parse-error`` finding rather
than crashing the run, so one bad file cannot hide findings in others.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import ImportMap
from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig

#: The allow-comment syntax: "repro:" then "allow" with one or more
#: comma-separated rule ids in square brackets (docs/ANALYSIS.md).
ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_\-,\s]+)\]")

#: Pseudo-rules emitted by the engine itself (never suppressible).
AUDIT_RULES = ("unused-suppression", "unknown-suppression", "parse-error")


def _comment_lines(source: str):
    """Yield ``(lineno, comment_text, comment_only_line)`` per comment."""
    import io
    import tokenize

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return
    for token in tokens:
        if token.type == tokenize.COMMENT:
            lineno = token.start[0]
            comment_only = token.line.strip().startswith("#")
            yield lineno, token.string, comment_only


@dataclass(frozen=True)
class Finding:
    """One hazard at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    path: pathlib.Path
    rel: str  # posix path used for reporting and sanction matching
    tree: ast.Module
    lines: Sequence[str]
    config: AnalysisConfig
    imports: ImportMap


@dataclass
class FileReport:
    """Per-file outcome: live findings + suppression accounting."""

    rel: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)


class Suppressions:
    """Allow-comments of one file, with used/unused accounting.

    Comments are found with :mod:`tokenize` (not a line regex) so the
    literal text ``# repro: allow[...]`` inside a docstring — this very
    engine documents the syntax — is never mistaken for a suppression.
    """

    def __init__(self, source: str) -> None:
        # (line, rule) -> used flag; comment-only lines extend their
        # allowance to the statement on the following line.
        self.entries: Dict[Tuple[int, str], bool] = {}
        self._covers: Dict[Tuple[int, str], int] = {}
        for lineno, text, comment_only in _comment_lines(source):
            match = ALLOW_RE.search(text)
            if not match:
                continue
            for rule in match.group(1).split(","):
                rule = rule.strip()
                if not rule:
                    continue
                key = (lineno, rule)
                self.entries[key] = False
                self._covers[key] = lineno + 1 if comment_only else lineno

    def try_suppress(self, finding: Finding) -> bool:
        hit = False
        for (lineno, rule), _used in self.entries.items():
            if rule == finding.rule and self._covers[(lineno, rule)] == finding.line:
                self.entries[(lineno, rule)] = True
                hit = True
        return hit

    def audit(
        self, rel: str, registered: Set[str], active: Set[str]
    ) -> List[Finding]:
        """Unknown allows are always findings; unused allows only count
        against rules that actually ran (a ``--rules DH002`` pass must
        not condemn a DH004 allow it never evaluated)."""
        out: List[Finding] = []
        for (lineno, rule), used in sorted(self.entries.items()):
            if rule not in registered:
                out.append(
                    Finding(
                        "unknown-suppression",
                        rel,
                        lineno,
                        0,
                        f"allow[{rule}] names no registered rule",
                    )
                )
            elif rule in active and not used:
                out.append(
                    Finding(
                        "unused-suppression",
                        rel,
                        lineno,
                        0,
                        f"allow[{rule}] suppressed nothing — remove it or re-justify it",
                    )
                )
        return out


def _rel_for(path: pathlib.Path, root: Optional[pathlib.Path]) -> str:
    try:
        if root is not None:
            return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        pass
    return path.as_posix()


def iter_python_files(
    paths: Iterable[pathlib.Path], config: AnalysisConfig
) -> List[pathlib.Path]:
    """Expand path arguments into the files to analyze.

    Directories are walked recursively with :attr:`AnalysisConfig.exclude_dirs`
    applied (this is what keeps deliberately-hazardous ``tests/data/``
    fixtures out of the clean-run gate); files named *explicitly* bypass
    the exclusion so tests can point straight at a red fixture.
    """
    out: List[pathlib.Path] = []
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not config.is_excluded(sub.as_posix()):
                    out.append(sub)
        elif path.suffix == ".py":
            out.append(path)
    return out


def analyze_file(
    path: pathlib.Path,
    config: AnalysisConfig = DEFAULT_CONFIG,
    root: Optional[pathlib.Path] = None,
    rules: Optional[Sequence] = None,
) -> FileReport:
    """Run every selected rule over one file and reconcile suppressions."""
    from repro.analysis.rules import selected_rules

    active = list(rules) if rules is not None else selected_rules(config)
    rel = _rel_for(path, root)
    report = FileReport(rel=rel)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        report.findings.append(
            Finding("parse-error", rel, getattr(exc, "lineno", 0) or 0, 0, str(exc))
        )
        return report
    lines = source.splitlines()
    ctx = FileContext(
        path=path,
        rel=rel,
        tree=tree,
        lines=lines,
        config=config,
        imports=ImportMap(tree),
    )
    suppressions = Suppressions(source)
    raw: List[Finding] = []
    for rule in active:
        raw.extend(rule.check(ctx))
    # Dedupe (a hazard reported twice at one location counts once).
    seen: Set[Tuple[str, int, int, str]] = set()
    for finding in sorted(raw, key=lambda f: (f.line, f.col, f.rule)):
        key = (finding.rule, finding.line, finding.col, finding.message)
        if key in seen:
            continue
        seen.add(key)
        if suppressions.try_suppress(finding):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    from repro.analysis.rules import RULES_BY_ID

    active_ids = {rule.rule_id for rule in active}
    report.findings.extend(
        suppressions.audit(rel, set(RULES_BY_ID), active_ids)
    )
    return report


@dataclass
class AnalysisResult:
    """Whole-run outcome over many files."""

    reports: List[FileReport]
    files_analyzed: int

    @property
    def findings(self) -> List[Finding]:
        return [f for report in self.reports for f in report.findings]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for report in self.reports for f in report.suppressed]

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files_analyzed": self.files_analyzed,
            "findings": [f.to_json_dict() for f in self.findings],
            "suppressed": [f.to_json_dict() for f in self.suppressed],
            "summary": {
                "by_rule": self.by_rule(),
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
            },
            "clean": self.clean,
        }


def analyze_paths(
    paths: Sequence[pathlib.Path],
    config: AnalysisConfig = DEFAULT_CONFIG,
    root: Optional[pathlib.Path] = None,
) -> AnalysisResult:
    """Analyze files/directories; the one-call API the CLI and tests use."""
    from repro.analysis.rules import selected_rules

    rules = selected_rules(config)
    files = iter_python_files(paths, config)
    reports = [
        analyze_file(path, config=config, root=root, rules=rules) for path in files
    ]
    return AnalysisResult(reports=reports, files_analyzed=len(files))

"""CLI for the determinism-hazard analyzer.

Exit status: 0 when clean, 1 on any unsuppressed finding (unused
suppressions included — they are findings), 2 on usage errors.  JSON
output is stable (schema version 1, tested) so CI can archive it as an
artifact: ``--out`` writes the JSON report to a file regardless of
``--format``, which is how the ``static-analysis`` job keeps a report
even on failing runs.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import replace
from typing import List, Optional, Sequence

from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.engine import analyze_paths
from repro.analysis.rules import ALL_RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism-hazard static analysis (rules DH001-DH006).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src). Directory "
        "walks skip tests/data/ fixture snippets; explicit file "
        "arguments are always analyzed.",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--rules",
        default="",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="also write the JSON report to this file",
    )
    parser.add_argument(
        "--strict-dict-order",
        action="store_true",
        help="audit mode: treat plain dict iteration as hash-ordered too",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
        return 0
    config = DEFAULT_CONFIG
    if args.rules:
        rule_ids = tuple(r.strip() for r in args.rules.split(",") if r.strip())
        config = replace(config, rules=rule_ids)
    if args.strict_dict_order:
        config = replace(config, strict_dict_order=True)
    paths: List[pathlib.Path] = []
    for name in args.paths:
        path = pathlib.Path(name)
        if not path.exists():
            print(f"error: no such path: {name}", file=sys.stderr)
            return 2
        paths.append(path)
    try:
        result = analyze_paths(paths, config=config, root=pathlib.Path.cwd())
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.out is not None:
        args.out.write_text(json.dumps(result.to_json_dict(), indent=2) + "\n")
    if args.format == "json":
        print(json.dumps(result.to_json_dict(), indent=2))
    else:
        for finding in result.findings:
            print(finding.render())
        summary = ", ".join(
            f"{rule}={count}" for rule, count in result.by_rule().items()
        )
        status = "clean" if result.clean else f"FINDINGS ({summary})"
        print(
            f"repro.analysis: {result.files_analyzed} file(s), "
            f"{len(result.findings)} finding(s), "
            f"{len(result.suppressed)} suppressed — {status}"
        )
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())

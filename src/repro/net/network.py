"""The network: delivers messages between hosts over the topology.

This is the single place where topology latency, per-link loss, TCP-style
retransmission and connection caching, fault state, and per-message CPU
overhead combine.  Protocol layers above see only: ``send`` a message, get
it delivered to the destination's handler, or (if the connection breaks)
get a failure callback — exactly the interface the paper's messaging layer
gives FUSE and SkipNet.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, Optional, Set, Tuple, TYPE_CHECKING

from repro.net.address import NodeId
from repro.net.backends.base import NetworkBackend
from repro.net.faults import FaultInjector
from repro.net.message import Message
from repro.net.routing import RouteTable
from repro.net.topology import Topology
from repro.net.transport import TransportConfig
from repro.sim.kernel import Simulator
from repro.sim.metrics import Counter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.node import Host

FailureCallback = Callable[[NodeId, Message], None]


class Network(NetworkBackend):
    """Message fabric connecting :class:`repro.net.node.Host` objects.

    The simulated implementation of the network seam
    (:class:`repro.net.backends.base.NetworkBackend`); the asyncio
    backend's :class:`repro.net.backends.livenet.LiveNetwork` is the
    other."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        config: Optional[TransportConfig] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.routes = RouteTable(topology)
        self.config = config or TransportConfig()
        self.faults = faults or FaultInjector()
        self._hosts: Dict[NodeId, "Host"] = {}
        # Connection pairs are normalized (min, max) tuples: cheaper to
        # build and hash than the frozenset keys they replaced.
        self._connections: Set[Tuple[NodeId, NodeId]] = set()
        self._send_busy_until: Dict[NodeId, float] = {}
        self._rng = sim.rng.stream("net.transport")
        # Hot-path caches: counter objects are resolved once here instead
        # of by-name on every send/delivery (reset_counters() mutates the
        # same objects, so the references stay valid across measurement
        # windows), and event labels are only built when a trace consumer
        # exists.  The clock and the queue's push are bound directly: the
        # send path schedules only into the future, so the kernel's
        # not-in-the-past guard is redundant here.
        metrics = sim.metrics
        self._ctr_messages = metrics.counter("net.messages")
        self._ctr_bytes = metrics.counter("net.bytes")
        self._ctr_deliveries = metrics.counter("net.deliveries")
        self._ctr_transmissions = metrics.counter("net.transmissions")
        self._ctr_breaks = metrics.counter("net.connection_breaks")
        self._msg_type_counters: Dict[str, Counter] = {}
        # Created on the first gray-failure drop, never at init: the
        # counter's existence would otherwise show up in metric dumps of
        # worlds that never used gray failure.
        self._ctr_gray_drops: Optional[Counter] = None
        self._tracing = sim.trace is not None
        self._clock = sim.clock
        self._queue_push = sim.queue.push

    # ------------------------------------------------------------------
    # Host registry
    # ------------------------------------------------------------------
    def register_host(self, host: "Host") -> None:
        if host.node_id in self._hosts:
            raise ValueError(f"host {host.node_id} already registered")
        self._hosts[host.node_id] = host

    def host(self, node_id: NodeId) -> "Host":
        return self._hosts[node_id]

    def hosts(self) -> Dict[NodeId, "Host"]:
        return dict(self._hosts)

    # ------------------------------------------------------------------
    # Fault convenience wrappers (keep host flags, fault state, and the
    # connection cache consistent)
    # ------------------------------------------------------------------
    def crash_host(self, node_id: NodeId) -> None:
        """Fail-stop crash: the process dies and its connections drop."""
        self.faults.crash(node_id)
        self._hosts[node_id].mark_crashed()
        self._purge_connections(node_id)
        # The dead process's send queue dies with it: a recovered
        # incarnation must not inherit the old serialization backlog.
        self._send_busy_until.pop(node_id, None)

    def recover_host(self, node_id: NodeId) -> None:
        """Restart a crashed process with empty volatile state."""
        self.faults.recover(node_id)
        self._hosts[node_id].mark_recovered()

    def disconnect_host(self, node_id: NodeId) -> None:
        """Unplug the host's network; the process keeps running."""
        self.faults.disconnect(node_id)
        self._purge_connections(node_id)

    def reconnect_host(self, node_id: NodeId) -> None:
        self.faults.reconnect(node_id)

    def _purge_connections(self, node_id: NodeId) -> None:
        self._connections = {pair for pair in self._connections if node_id not in pair}

    def has_connection(self, a: NodeId, b: NodeId) -> bool:
        return ((a, b) if a <= b else (b, a)) in self._connections

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        src: NodeId,
        dst: NodeId,
        message: Message,
        on_fail: Optional[FailureCallback] = None,
    ) -> None:
        """Send ``message`` from ``src`` to ``dst`` over the reliable channel.

        Delivery invokes the destination host's handler for the message's
        class.  If the connection breaks (retries exhausted under loss,
        partition, crash, or disconnect), ``on_fail(dst, message)`` runs on
        the sender at the time the break is detected.
        """
        if src == dst:
            raise ValueError("host cannot send a network message to itself")
        hosts = self._hosts
        sender = hosts.get(src)
        if sender is None or dst not in hosts:
            raise KeyError(f"unknown endpoint in send {src}->{dst}")
        if not sender.alive:
            return  # a dead process sends nothing

        type_name = type(message).__name__
        self._ctr_messages.value += 1
        type_counter = self._msg_type_counters.get(type_name)
        if type_counter is None:
            type_counter = self.sim.metrics.counter(f"net.msg.{type_name}")
            self._msg_type_counters[type_name] = type_counter
        type_counter.value += 1
        self._ctr_bytes.value += message.size_bytes

        # Per-message CPU/serialization occupancy at the sender: messages
        # queue behind each other (this is what makes large fan-outs at a
        # group root visible in Fig 8).
        now = self._clock._now
        busy = self._send_busy_until.get(src, now)
        overhead = self.config.send_overhead_ms
        send_factors = self.faults._send_factors
        if send_factors:
            factor = send_factors.get(src)
            if factor is not None:
                overhead *= factor
        inject_time = max(now, busy) + overhead
        self._send_busy_until[src] = inject_time

        routes = self.routes
        route = routes._routes.get((src, dst))
        if route is None:
            route = routes.route(src, dst)
        pair = (src, dst) if src <= dst else (dst, src)
        first_contact = pair not in self._connections
        # Messages built fresh for exactly one send opt out of the
        # isolation copy (see Message.copy_on_send); stamping the sender
        # on them directly is then safe.
        payload = copy.copy(message) if message.copy_on_send else message
        payload.sender = src

        state = _SendAttemptState(
            self, src, dst, payload, route, first_contact, on_fail, sender.incarnation
        )
        label = f"tx:{type_name}" if self._tracing else ""
        self._queue_push(inject_time, state.attempt, label)

    # Internal: called by _SendAttemptState on success of the first segment.
    def _mark_connected(self, a: NodeId, b: NodeId) -> None:
        self._connections.add((a, b) if a <= b else (b, a))

    def _break_connection(self, a: NodeId, b: NodeId) -> None:
        self._connections.discard((a, b) if a <= b else (b, a))

    def _deliver(self, src: NodeId, dst: NodeId, message: Message) -> None:
        receiver = self._hosts[dst]
        if not receiver.alive:
            return
        gray = self.faults._gray
        if gray and dst in gray and not message.is_liveness:
            # Gray failure: the destination blackholes application traffic
            # while still answering liveness pings.  Transport has already
            # "delivered" the packet — no retransmission, no broken socket
            # — so the sender learns nothing unless its own application
            # timer (e.g. Host.rpc) expires.  The counter is created
            # lazily so idle worlds report an unchanged metric set.
            ctr = self._ctr_gray_drops
            if ctr is None:
                ctr = self._ctr_gray_drops = self.sim.metrics.counter("net.gray_drops")
            ctr.value += 1
            return
        self._ctr_deliveries.value += 1
        receiver.deliver(message)

    def __repr__(self) -> str:
        return (
            f"Network(hosts={len(self._hosts)}, connections={len(self._connections)}, "
            f"topology={self.topology!r})"
        )


class _SendAttemptState:
    """Retransmission state machine for one message.

    Attempt 0 goes out immediately; each loss schedules the next attempt
    after an exponentially backed-off RTO.  When attempts are exhausted the
    connection breaks and the sender's failure callback runs.
    """

    __slots__ = (
        "network",
        "src",
        "dst",
        "message",
        "route",
        "first_contact",
        "on_fail",
        "src_incarnation",
        "attempt_index",
        "rto_ms",
        "deliver_cb",
    )

    def __init__(
        self,
        network: Network,
        src: NodeId,
        dst: NodeId,
        message: Message,
        route,
        first_contact: bool,
        on_fail: Optional[FailureCallback],
        src_incarnation: int,
    ) -> None:
        self.network = network
        self.src = src
        self.dst = dst
        self.message = message
        self.route = route
        self.first_contact = first_contact
        self.on_fail = on_fail
        self.src_incarnation = src_incarnation
        self.attempt_index = 0
        self.rto_ms = network.config.rto_initial_ms
        # Bind the delivery callback once; attempt() would otherwise
        # allocate a fresh closure on every successful transmission.
        self.deliver_cb = self._deliver_now

    def attempt(self) -> None:
        net = self.network
        sender = net._hosts[self.src]
        if not sender.alive or sender.incarnation != self.src_incarnation:
            return  # sender died mid-send; nothing to do

        net._ctr_transmissions.value += 1
        route = self.route
        faults = net.faults
        loss = route.current_loss()
        reachable = faults.can_communicate(self.src, self.dst)
        dropped = (not reachable) or (net._rng.random() < loss)
        if not dropped:
            # Correlated burst loss: advance the Gilbert-Elliott chain of
            # each bursty link the packet traverses, in route order, until
            # one eats it.  current_loss() above already refreshed the
            # route's burst cache against the topology generation, so the
            # idle cost here is one falsy attribute check.  Chains past
            # the dropping link do not advance — the packet never reached
            # them — keeping per-link drop statistics physical.
            burst = route._cached_burst
            if burst:
                rng = net._rng
                for model in burst:
                    if model.sample(rng):
                        dropped = True
                        break
        tracing = net._tracing
        config = net.config

        if not dropped:
            latency = route.current_latency()
            if faults._latency_factors:
                latency *= faults.latency_factor(self.src, self.dst)
            jitter = net._rng.uniform(0.0, config.jitter_fraction) * latency
            extra = 0.0
            if self.first_contact:
                # Connection establishment: one extra round trip of SYN
                # handshake before data flows.
                extra = config.connection_setup_rtts * 2.0 * latency
                net._mark_connected(self.src, self.dst)
            arrival = net._clock._now + extra + latency + jitter + config.recv_overhead_ms
            net._queue_push(
                arrival,
                self.deliver_cb,
                f"rx:{type(self.message).__name__}" if tracing else "",
            )
            return

        # Segment lost: back off and retry, or break the connection.
        if self.attempt_index < config.max_retries:
            self.attempt_index += 1
            delay = self.rto_ms
            self.rto_ms *= config.rto_backoff
            net._queue_push(
                net._clock._now + delay,
                self.attempt,
                f"rtx:{type(self.message).__name__}" if tracing else "",
            )
            return

        # Retries exhausted: the socket breaks.
        net._break_connection(self.src, self.dst)
        net._ctr_breaks.value += 1
        if self.on_fail is not None:
            on_fail = self.on_fail
            net.sim.schedule_after(
                self.rto_ms,
                lambda: self._report_failure(on_fail),
                label=f"brk:{type(self.message).__name__}" if tracing else "",
            )

    def _deliver_now(self) -> None:
        self.network._deliver(self.src, self.dst, self.message)

    def _report_failure(self, on_fail: FailureCallback) -> None:
        sender = self.network.host(self.src)
        if sender.alive and sender.incarnation == self.src_incarnation:
            on_fail(self.dst, self.message)

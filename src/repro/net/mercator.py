"""Synthetic Mercator-like topology generator.

The paper's experiments ran over a Mercator-derived router topology with
102,639 routers in 2,662 ASs, 97 % OC3 inter-AS links (10-40 ms one-way,
155 Mbps) and 3 % T3 links (300-500 ms, 45 Mbps), yielding round-trip
latencies with a 130 ms median and a heavy tail, and router-level routes
of 2-43 hops (median 15).

We cannot ship the proprietary Mercator measurement data, so this module
generates a *scaled-down structural equivalent*:

* an AS-level graph grown by preferential attachment (heavy-tailed AS
  degree, short AS paths — the defining Mercator properties);
* each AS expanded into a small chain of routers so that host-to-host
  routes cross a realistic number of router-level hops;
* inter-AS links drawn from the same OC3/T3 latency mix and proportions;
* hosts attached uniformly at random across ASes.

The defaults are calibrated (see tests/test_mercator.py) to reproduce the
route-length and RTT distribution shapes the evaluation depends on:
median RTT in the low hundreds of ms with a T3-induced heavy tail, and
median route length around 15 router hops.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.net.address import NodeId
from repro.net.topology import LinkKind, Topology


@dataclass
class MercatorConfig:
    """Knobs for the synthetic topology.

    Defaults correspond to a 400-host deployment, the paper's live-cluster
    scale; the 16,000-node simulator runs use more ASes via
    :meth:`scaled_for_hosts`.
    """

    n_hosts: int = 400
    n_as: int = 64
    routers_per_as: int = 8
    as_attach_degree: int = 2  # preferential-attachment m parameter
    oc3_latency_ms: Tuple[float, float] = (10.0, 40.0)
    t3_latency_ms: Tuple[float, float] = (300.0, 500.0)
    t3_fraction: float = 0.03
    t3_as_fraction: float = 0.04
    """Fraction of ASes whose *every* uplink is T3.  Shortest-path routing
    would simply avoid isolated slow links; making slowness a property of
    an AS (think: a site reachable only via satellite) forces a share of
    routes across T3 links, which is what produces the heavy RTT tail the
    paper reports (Fig 6)."""
    intra_as_latency_ms: Tuple[float, float] = (0.2, 1.0)
    access_latency_ms: float = 0.5
    extra_peering_fraction: float = 0.15  # additional random AS-AS links

    def __post_init__(self) -> None:
        if self.n_hosts <= 0:
            raise ValueError("n_hosts must be positive")
        if self.n_as < 2:
            raise ValueError("need at least two ASes")
        if self.routers_per_as < 1:
            raise ValueError("routers_per_as must be positive")
        if not 0.0 <= self.t3_fraction <= 1.0:
            raise ValueError("t3_fraction must be a probability")

    @classmethod
    def scaled_for_hosts(cls, n_hosts: int) -> "MercatorConfig":
        """A config whose AS count grows sublinearly with host count.

        Mirrors how the paper reused one topology for both its 400-node
        and 16,000-node runs: the AS structure grows far more slowly than
        the host population.
        """
        n_as = max(8, min(512, n_hosts // 6))
        return cls(n_hosts=n_hosts, n_as=n_as)


def _preferential_attachment_edges(n: int, m: int, rng: random.Random) -> List[Tuple[int, int]]:
    """Barabási–Albert style AS graph; returns undirected edge list."""
    if n <= m:
        # Degenerate small graph: fully connect.
        return [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges: List[Tuple[int, int]] = []
    # Repeated-targets list implements degree-proportional sampling.
    targets = list(range(m))
    repeated: List[int] = []
    for new_node in range(m, n):
        # Int-set iteration is PYTHONHASHSEED-independent (ints hash to
        # themselves), so this order is seed-stable; sorted() would walk
        # buckets in a different order and invalidate every committed
        # topology fixture.  # repro: allow[DH003]
        for t in set(targets):
            edges.append((t, new_node))
            repeated.append(t)
            repeated.append(new_node)
        targets = [rng.choice(repeated) for _ in range(m)]
    return edges


def build_mercator_topology(
    config: MercatorConfig, rng: random.Random
) -> Tuple[Topology, List[NodeId]]:
    """Build the topology and attach ``config.n_hosts`` hosts.

    Returns the topology and the list of host ids (0..n_hosts-1).
    """
    topo = Topology()

    # 1. Routers: each AS is a chain of routers (chains, rather than stars,
    #    give routes enough router-level hops to matter for loss compounding).
    as_routers: List[List[int]] = []
    for _ in range(config.n_as):
        routers = [topo.add_router() for _ in range(config.routers_per_as)]
        for i in range(len(routers) - 1):
            topo.add_link(
                routers[i],
                routers[i + 1],
                rng.uniform(*config.intra_as_latency_ms),
                LinkKind.INTRA_AS,
            )
        as_routers.append(routers)

    # 2. AS-level edges by preferential attachment, plus some extra peering
    #    links so the AS graph is not a tree.
    as_edges = _preferential_attachment_edges(config.n_as, config.as_attach_degree, rng)
    seen = set(tuple(sorted(e)) for e in as_edges)
    extra = int(len(as_edges) * config.extra_peering_fraction)
    attempts = 0
    while extra > 0 and attempts < 20 * extra:
        attempts += 1
        a = rng.randrange(config.n_as)
        b = rng.randrange(config.n_as)
        key = (min(a, b), max(a, b))
        if a == b or key in seen:
            continue
        seen.add(key)
        as_edges.append(key)
        extra -= 1

    # 3. Realize each AS edge as a router-level link with OC3/T3 latency.
    #    T3-only ASes force some routes over slow links (heavy RTT tail);
    #    additionally a small fraction of ordinary links are T3 to match
    #    the paper's 3 % link mix.
    n_t3_as = int(round(config.n_as * config.t3_as_fraction))
    t3_ases = set(rng.sample(range(config.n_as), n_t3_as)) if n_t3_as else set()
    for as_a, as_b in as_edges:
        router_a = rng.choice(as_routers[as_a])
        router_b = rng.choice(as_routers[as_b])
        if topo.link_between(router_a, router_b) is not None:
            continue
        is_t3 = as_a in t3_ases or as_b in t3_ases or rng.random() < config.t3_fraction
        if is_t3:
            latency = rng.uniform(*config.t3_latency_ms)
            kind = LinkKind.T3
        else:
            latency = rng.uniform(*config.oc3_latency_ms)
            kind = LinkKind.OC3
        topo.add_link(router_a, router_b, latency, kind)

    # 4. Hosts: uniform over ASes, attached to a random router in the AS.
    hosts: List[NodeId] = []
    for host in range(config.n_hosts):
        as_index = rng.randrange(config.n_as)
        router = rng.choice(as_routers[as_index])
        topo.attach_host(host, router, config.access_latency_ms)
        hosts.append(host)

    return topo, hosts

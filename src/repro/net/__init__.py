"""Network substrate: topology, routing, faults, and TCP-like transport.

The paper ran its cluster experiments over ModelNet emulating a Mercator
router-level topology (102,639 routers, 2,662 ASs, 97 % OC3 links at
10-40 ms / 3 % T3 links at 300-500 ms, ~130 ms median RTT), and its
simulator experiments over the same topology with latencies only.  This
package is our equivalent substrate:

* :mod:`repro.net.topology` — router/host graph with per-link latency and
  loss;
* :mod:`repro.net.mercator` — a scaled-down synthetic generator with the
  same structural knobs (two-level AS structure, OC3/T3 mix, heavy tail);
* :mod:`repro.net.routing` — shortest-latency routes with caching;
* :mod:`repro.net.faults` — crash, disconnect, partition, intransitive
  connectivity failure, and per-link loss injection;
* :mod:`repro.net.transport` — a TCP-flavoured reliable channel with
  connection caching, retransmission, and socket breaks under loss;
* :mod:`repro.net.node` — the host abstraction protocols run on.
"""

from repro.net.address import NodeId
from repro.net.faults import FaultInjector
from repro.net.mercator import MercatorConfig, build_mercator_topology
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Host
from repro.net.routing import RouteTable
from repro.net.topology import Link, LinkKind, Topology
from repro.net.transport import TransportConfig

__all__ = [
    "FaultInjector",
    "Host",
    "Link",
    "LinkKind",
    "MercatorConfig",
    "Message",
    "Network",
    "NodeId",
    "RouteTable",
    "Topology",
    "TransportConfig",
    "build_mercator_topology",
]

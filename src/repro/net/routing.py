"""Shortest-latency routing over the router graph.

Routes are computed with Dijkstra's algorithm on link latency and cached
per source router.  Host-to-host routes prepend/append the access links.
The route table also exposes the per-route hop count and compound loss
probability that the Fig 11 experiment reports.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.address import NodeId
from repro.net.topology import Link, Topology


class Route:
    """A resolved host-to-host route.

    ``current_loss``/``current_latency`` serve cached values validated
    against the topology's generation counter instead of re-walking the
    link list on every transmission; the cache refreshes the first time
    it is read after any link mutation (e.g. ``set_uniform_loss``), so
    experiments can still flip loss on after routes are cached.
    """

    __slots__ = (
        "src",
        "dst",
        "links",
        "latency_ms",
        "loss_static",
        "_topology",
        "_cache_generation",
        "_cached_latency",
        "_cached_loss",
    )

    def __init__(
        self,
        src: NodeId,
        dst: NodeId,
        links: Sequence[Link],
        topology: Optional[Topology] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.links = tuple(links)
        self.latency_ms = Topology.path_latency(self.links)
        # Loss captured at build time, for experiments reporting the
        # route's nominal compound loss (Fig 11's derived column).
        self.loss_static = Topology.path_loss(self.links)
        self._topology = topology
        self._cache_generation = topology.generation if topology is not None else -1
        self._cached_latency = self.latency_ms
        self._cached_loss = self.loss_static

    @property
    def hop_count(self) -> int:
        """Number of links traversed (the paper's 'route hops')."""
        return len(self.links)

    def _refresh_cache(self, generation: int) -> None:
        self._cached_latency = Topology.path_latency(self.links)
        self._cached_loss = Topology.path_loss(self.links)
        self._cache_generation = generation

    def current_loss(self) -> float:
        topology = self._topology
        if topology is None:
            return Topology.path_loss(self.links)
        generation = topology.generation
        if generation != self._cache_generation:
            self._refresh_cache(generation)
        return self._cached_loss

    def current_latency(self) -> float:
        topology = self._topology
        if topology is None:
            return Topology.path_latency(self.links)
        generation = topology.generation
        if generation != self._cache_generation:
            self._refresh_cache(generation)
        return self._cached_latency

    def __repr__(self) -> str:
        return (
            f"Route({self.src}->{self.dst}, hops={self.hop_count}, "
            f"latency={self.latency_ms:.1f}ms)"
        )


class RouteTable:
    """Caches Dijkstra trees per source router and host-to-host routes."""

    def __init__(self, topology: Topology) -> None:
        self._topo = topology
        # router -> (predecessor map, distance map)
        self._trees: Dict[int, Tuple[Dict[int, Optional[int]], Dict[int, float]]] = {}
        self._routes: Dict[Tuple[NodeId, NodeId], Route] = {}

    def invalidate(self) -> None:
        """Drop all cached state; call after mutating the topology."""
        self._trees.clear()
        self._routes.clear()

    def _dijkstra(self, source: int) -> Tuple[Dict[int, Optional[int]], Dict[int, float]]:
        cached = self._trees.get(source)
        if cached is not None:
            return cached
        dist: Dict[int, float] = {source: 0.0}
        prev: Dict[int, Optional[int]] = {source: None}
        visited = set()
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, router = heapq.heappop(heap)
            if router in visited:
                continue
            visited.add(router)
            for neighbor, link in self._topo.neighbors(router).items():
                nd = d + link.latency_ms
                if nd < dist.get(neighbor, float("inf")):
                    dist[neighbor] = nd
                    prev[neighbor] = router
                    heapq.heappush(heap, (nd, neighbor))
        self._trees[source] = (prev, dist)
        return prev, dist

    def router_path(self, src_router: int, dst_router: int) -> List[int]:
        """Router sequence from src to dst, inclusive; raises if unreachable."""
        prev, dist = self._dijkstra(src_router)
        if dst_router not in dist:
            raise ValueError(f"router {dst_router} unreachable from {src_router}")
        path = [dst_router]
        while path[-1] != src_router:
            parent = prev[path[-1]]
            if parent is None:
                break
            path.append(parent)
        path.reverse()
        return path

    def route(self, src: NodeId, dst: NodeId) -> Route:
        """Host-to-host route (symmetric caching: a->b reverses b->a)."""
        if src == dst:
            raise ValueError("route from a host to itself")
        cached = self._routes.get((src, dst))
        if cached is not None:
            return cached
        reverse = self._routes.get((dst, src))
        if reverse is not None:
            route = Route(src, dst, tuple(reversed(reverse.links)), self._topo)
        else:
            router_path = self.router_path(
                self._topo.host_router(src), self._topo.host_router(dst)
            )
            links = self._topo.route_links(src, dst, router_path)
            route = Route(src, dst, links, self._topo)
        self._routes[(src, dst)] = route
        return route

    def latency(self, src: NodeId, dst: NodeId) -> float:
        if src == dst:
            return 0.0
        return self.route(src, dst).latency_ms

    def rtt(self, src: NodeId, dst: NodeId) -> float:
        """Round-trip latency (routes are symmetric by construction)."""
        return 2.0 * self.latency(src, dst)

"""Shortest-latency routing over the router graph.

Routes are computed with Dijkstra's algorithm on link latency.  The
implementation is built for paper-scale worlds (400-16,000 hosts over
thousands of routers):

* **Single-source trees, computed lazily.**  The first route out of a
  source router runs one Dijkstra over the whole router graph; every
  later destination from that router walks the cached tree.  Nothing is
  computed for routers that never originate traffic, so bootstrap never
  pays for host pairs that never communicate.
* **Compact tree storage.**  A finished tree keeps only its predecessor
  array (``array('i')``, 4 bytes per router); the distance map exists
  only while Dijkstra runs.  Router ids are dense, so the algorithm works
  on flat lists instead of hash maps — both faster and leaner than the
  dict-based version it replaced.
* **Interned router-level paths.**  The link tuple between a pair of
  edge routers is materialized once and shared by every host pair
  attached to those routers (16,000 hosts share ~4,000 routers, so most
  host routes are an access-link sandwich around an already-built core).
* **Lazy, lean ``Route`` objects.**  A route stores the shared core
  tuple plus its two access links; the flat ``links`` tuple is only
  materialized when someone asks for it (experiments reporting Fig 11
  hop counts — never the send hot path).

``Route.current_loss``/``current_latency`` serve cached values validated
against the topology's generation counter instead of re-walking the link
list on every transmission; see :class:`Route`.
"""

from __future__ import annotations

from array import array
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.address import NodeId
from repro.net.topology import Link, Topology

try:  # Gated accelerator: the C Dijkstra is ~6x faster per tree and
    # predecessor-identical to the pure-Python implementation whenever
    # shortest paths are unique (always, for the generated topologies —
    # link latencies are continuous random draws).  Environments without
    # scipy (e.g. the minimal CI image) fall back transparently.
    import numpy as _np
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _sp_dijkstra
except ImportError:  # pragma: no cover - depends on the environment
    _np = None
    _csr_matrix = None
    _sp_dijkstra = None

_INF = float("inf")
_NO_PARENT = -1   # tree root (the source router itself)
_UNREACHED = -2   # router not reachable from the source


class Route:
    """A resolved host-to-host route.

    State is three pieces: the source host's access link, the shared
    (interned) router-level core path, and the destination host's access
    link.  ``current_loss``/``current_latency`` serve cached values
    validated against the topology's generation counter; the cache
    refreshes the first time it is read after any link mutation (e.g.
    ``set_uniform_loss``), so experiments can still flip loss on after
    routes are cached.
    """

    __slots__ = (
        "src",
        "dst",
        "core",
        "access_src",
        "access_dst",
        "latency_ms",
        "loss_static",
        "_topology",
        "_cache_generation",
        "_cached_latency",
        "_cached_loss",
        "_cached_burst",
    )

    def __init__(
        self,
        src: NodeId,
        dst: NodeId,
        core: Tuple[Link, ...],
        access_src: Link,
        access_dst: Link,
        topology: Optional[Topology] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.core = core
        self.access_src = access_src
        self.access_dst = access_dst
        # Loss captured at build time, for experiments reporting the
        # route's nominal compound loss (Fig 11's derived column).
        latency, loss = self._walk()
        self.latency_ms = latency
        self.loss_static = loss
        self._topology = topology
        self._cache_generation = topology.generation if topology is not None else -1
        self._cached_latency = latency
        self._cached_loss = loss
        self._cached_burst = self._collect_burst()

    @property
    def links(self) -> Tuple[Link, ...]:
        """The full link sequence (access, core..., access).

        Materialized on demand: reporting paths iterate it, the send hot
        path never does.
        """
        return (self.access_src,) + self.core + (self.access_dst,)

    @property
    def hop_count(self) -> int:
        """Number of links traversed (the paper's 'route hops')."""
        return len(self.core) + 2

    def _walk(self) -> Tuple[float, float]:
        """(latency, loss) over the link chain, one pass.

        Accumulation order matches the pre-rewrite flat-list walk exactly
        (access, core..., access), keeping float results bit-identical.
        """
        access_src = self.access_src
        access_dst = self.access_dst
        total = access_src.latency_ms
        survive = 1.0 - access_src.loss
        for link in self.core:
            total += link.latency_ms
            survive *= 1.0 - link.loss
        total += access_dst.latency_ms
        survive *= 1.0 - access_dst.loss
        return total, 1.0 - survive

    def _collect_burst(self) -> Tuple:
        """Burst-loss models along the route, in traversal order.

        Empty tuple — one falsy attribute check on the send hot path — on
        the overwhelmingly common burst-free route.
        """
        models = []
        model = self.access_src.burst
        if model is not None:
            models.append(model)
        for link in self.core:
            model = link.burst
            if model is not None:
                models.append(model)
        model = self.access_dst.burst
        if model is not None:
            models.append(model)
        return tuple(models)

    def _refresh_cache(self, generation: int) -> None:
        self._cached_latency, self._cached_loss = self._walk()
        self._cached_burst = self._collect_burst()
        self._cache_generation = generation

    def current_loss(self) -> float:
        topology = self._topology
        if topology is None:
            return self._walk()[1]
        generation = topology.generation
        if generation != self._cache_generation:
            self._refresh_cache(generation)
        return self._cached_loss

    def current_latency(self) -> float:
        topology = self._topology
        if topology is None:
            return self._walk()[0]
        generation = topology.generation
        if generation != self._cache_generation:
            self._refresh_cache(generation)
        return self._cached_latency

    def current_burst(self) -> Tuple:
        """Burst models on this route right now (generation-validated)."""
        topology = self._topology
        if topology is None:
            return self._collect_burst()
        generation = topology.generation
        if generation != self._cache_generation:
            self._refresh_cache(generation)
        return self._cached_burst

    def __repr__(self) -> str:
        return (
            f"Route({self.src}->{self.dst}, hops={self.hop_count}, "
            f"latency={self.latency_ms:.1f}ms)"
        )


class RouteTable:
    """Lazily caches Dijkstra trees per source router, interned router
    paths per router pair, and host-to-host routes per communicating
    pair."""

    def __init__(self, topology: Topology) -> None:
        self._topo = topology
        # source router -> predecessor array (_NO_PARENT at the source,
        # _UNREACHED where no path exists).
        self._trees: Dict[int, array] = {}
        # (src_router, dst_router) -> interned core link tuple.
        self._core_paths: Dict[Tuple[int, int], Tuple[Link, ...]] = {}
        self._routes: Dict[Tuple[NodeId, NodeId], Route] = {}
        # Flat adjacency snapshot: router -> [(latency, neighbor), ...] in
        # link-insertion order (the order Dijkstra relaxations happened in
        # the dict-based implementation, preserved exactly), plus the
        # topology's neighbor->Link dicts for O(1) path materialization.
        self._adjacency: Optional[List[Tuple[Tuple[float, int], ...]]] = None
        self._neighbor_links: List[Dict[int, Link]] = []
        self._csr = None  # scipy CSR form of the adjacency, when available

    def invalidate(self) -> None:
        """Drop all cached state; call after mutating the topology's
        structure (adding routers/links — loss changes don't need it)."""
        self._trees.clear()
        self._core_paths.clear()
        self._routes.clear()
        self._adjacency = None
        self._neighbor_links = []
        self._csr = None

    # ------------------------------------------------------------------
    # Introspection (tests and the scale benchmark)
    # ------------------------------------------------------------------
    @property
    def cached_route_count(self) -> int:
        """Host-pair routes materialized so far (lazy: only pairs that
        actually communicated)."""
        return len(self._routes)

    @property
    def cached_tree_count(self) -> int:
        """Dijkstra trees computed so far (one per source router that
        originated traffic)."""
        return len(self._trees)

    # ------------------------------------------------------------------
    # Dijkstra over the router graph
    # ------------------------------------------------------------------
    def _adjacency_snapshot(self) -> List[Tuple[Tuple[float, int], ...]]:
        adjacency = self._adjacency
        if adjacency is None:
            topo = self._topo
            neighbor_links = [topo.neighbors(r) for r in range(topo.router_count)]
            adjacency = [
                tuple((link.latency_ms, neighbor) for neighbor, link in nbrs.items())
                for nbrs in neighbor_links
            ]
            self._adjacency = adjacency
            self._neighbor_links = neighbor_links
            if _csr_matrix is not None and adjacency:
                rows: List[int] = []
                cols: List[int] = []
                data: List[float] = []
                for router, edges in enumerate(adjacency):
                    for latency, neighbor in edges:
                        rows.append(router)
                        cols.append(neighbor)
                        data.append(latency)
                n = len(adjacency)
                self._csr = _csr_matrix((data, (rows, cols)), shape=(n, n))
        return adjacency

    def _tree(self, source: int) -> array:
        tree = self._trees.get(source)
        if tree is not None:
            return tree
        adjacency = self._adjacency_snapshot()
        if self._csr is not None:
            dist, pred = _sp_dijkstra(
                self._csr, directed=True, indices=source, return_predecessors=True
            )
            pred[_np.isinf(dist)] = _UNREACHED
            pred[source] = _NO_PARENT
            prev = array("i")
            prev.frombytes(pred.astype(_np.int32, copy=False).tobytes())
            self._trees[source] = prev
            return prev
        n = len(adjacency)
        dist = [_INF] * n
        prev = array("i", bytes(0)) if n == 0 else array("i", [_UNREACHED]) * n
        dist[source] = 0.0
        prev[source] = _NO_PARENT
        heap: List[Tuple[float, int]] = [(0.0, source)]
        push, pop = heappush, heappop
        while heap:
            d, router = pop(heap)
            if d > dist[router]:
                continue  # stale entry; the router was finalized cheaper
            for latency, neighbor in adjacency[router]:
                nd = d + latency
                if nd < dist[neighbor]:
                    dist[neighbor] = nd
                    prev[neighbor] = router
                    push(heap, (nd, neighbor))
        self._trees[source] = prev
        return prev

    def router_path(self, src_router: int, dst_router: int) -> List[int]:
        """Router sequence from src to dst, inclusive; raises if unreachable."""
        prev = self._tree(src_router)
        if dst_router != src_router and prev[dst_router] == _UNREACHED:
            raise ValueError(f"router {dst_router} unreachable from {src_router}")
        path = [dst_router]
        while path[-1] != src_router:
            parent = prev[path[-1]]
            if parent < 0:
                break
            path.append(parent)
        path.reverse()
        return path

    def _core_links(self, src_router: int, dst_router: int) -> Tuple[Link, ...]:
        """Interned link tuple along the tree path between two routers."""
        if src_router == dst_router:
            return ()
        key = (src_router, dst_router)
        cached = self._core_paths.get(key)
        if cached is not None:
            return cached
        if src_router not in self._trees and dst_router in self._trees:
            # The reverse tree already exists: walk it instead of running
            # a fresh Dijkstra.  Routes are symmetric (undirected links),
            # so the reversed path is a shortest path too; on topologies
            # with exactly tied alternatives this may pick the tie the
            # other endpoint's tree picked, which is equally valid.
            core = tuple(reversed(self._core_links(dst_router, src_router)))
            self._core_paths[key] = core
            return core
        prev = self._tree(src_router)
        if prev[dst_router] == _UNREACHED:
            raise ValueError(f"router {dst_router} unreachable from {src_router}")
        neighbor_links = self._neighbor_links
        reversed_links: List[Link] = []
        current = dst_router
        while current != src_router:
            parent = prev[current]
            reversed_links.append(neighbor_links[parent][current])
            current = parent
        core = tuple(reversed(reversed_links))
        self._core_paths[key] = core
        return core

    # ------------------------------------------------------------------
    # Host-to-host routes
    # ------------------------------------------------------------------
    def route(self, src: NodeId, dst: NodeId) -> Route:
        """Host-to-host route (symmetric caching: a->b reverses b->a)."""
        if src == dst:
            raise ValueError("route from a host to itself")
        cached = self._routes.get((src, dst))
        if cached is not None:
            return cached
        topo = self._topo
        reverse = self._routes.get((dst, src))
        if reverse is not None:
            route = Route(
                src,
                dst,
                tuple(reversed(reverse.core)),
                reverse.access_dst,
                reverse.access_src,
                topo,
            )
        else:
            core = self._core_links(topo.host_router(src), topo.host_router(dst))
            route = Route(
                src, dst, core, topo.access_link(src), topo.access_link(dst), topo
            )
        self._routes[(src, dst)] = route
        return route

    def latency(self, src: NodeId, dst: NodeId) -> float:
        if src == dst:
            return 0.0
        return self.route(src, dst).latency_ms

    def rtt(self, src: NodeId, dst: NodeId) -> float:
        """Round-trip latency (routes are symmetric by construction)."""
        return 2.0 * self.latency(src, dst)

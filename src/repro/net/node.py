"""Hosts: the machines protocol stacks run on.

A :class:`Host` owns message handlers, guarded timers, and a small RPC
facility (request/reply matching with timeout), which is how the paper's
FUSE implementation performs its direct root<->member exchanges during
group creation and repair.

Crash semantics: crashing a host bumps its *incarnation* counter and marks
it dead.  Timers and in-flight callbacks scheduled by an earlier
incarnation never run again — this models a fail-stop process whose
volatile state vanished, and makes crash/recovery tests deterministic.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, Type

from repro.net.address import NodeId, node_name
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.events import TimerHandle

Handler = Callable[[Message], None]


class RpcRequest(Message):
    """Base class for request messages carrying an rpc id."""

    __slots__ = ("rpc_id",)

    def __init__(self) -> None:
        self.rpc_id: int = -1


class RpcReply(Message):
    """Base class for replies; ``rpc_id`` echoes the request."""

    __slots__ = ("rpc_id",)

    def __init__(self, rpc_id: int = -1) -> None:
        self.rpc_id = rpc_id


class _PendingRpc:
    __slots__ = ("on_reply", "on_failure", "timer")

    def __init__(self, on_reply, on_failure, timer) -> None:
        self.on_reply = on_reply
        self.on_failure = on_failure
        self.timer = timer


class Host:
    """A simulated machine with a protocol stack on top."""

    __slots__ = (
        "network",
        "node_id",
        "name",
        "alive",
        "incarnation",
        "_handlers",
        "_rpc_seq",
        "_pending_rpcs",
        "_crash_listeners",
        "_recover_listeners",
        "_sim",
    )

    def __init__(self, network: Network, node_id: NodeId, name: Optional[str] = None) -> None:
        self.network = network
        self._sim = network.sim
        self.node_id = node_id
        self.name = name or node_name(node_id)
        self.alive = True
        self.incarnation = 0
        self._handlers: Dict[str, Handler] = {}
        self._rpc_seq = itertools.count(1)
        self._pending_rpcs: Dict[int, _PendingRpc] = {}
        self._crash_listeners: list = []
        self._recover_listeners: list = []
        network.register_host(self)
        self.register_handler(RpcReply, self._on_rpc_reply)

    def on_crash(self, listener: Callable[[], Any]) -> None:
        """Register a callback run when this host fail-stops.  Protocol
        layers use it to discard volatile state, as a real process death
        would (the paper's §3.6 no-stable-storage model)."""
        self._crash_listeners.append(listener)

    def on_recover(self, listener: Callable[[], Any]) -> None:
        """Register a callback run when a crashed host restarts."""
        self._recover_listeners.append(listener)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def mark_crashed(self) -> None:
        """Called by the network's crash wrapper; kills volatile state."""
        self.alive = False
        self.incarnation += 1
        self._pending_rpcs.clear()
        for listener in self._crash_listeners:
            listener()

    def mark_recovered(self) -> None:
        """Restart with empty volatile state (no stable storage, §3.6)."""
        self.alive = True
        self.incarnation += 1
        for listener in self._recover_listeners:
            listener()

    # ------------------------------------------------------------------
    # Handlers and delivery
    # ------------------------------------------------------------------
    def register_handler(self, message_cls: Type[Message], handler: Handler) -> None:
        name = message_cls.__name__
        if name in self._handlers and self._handlers[name] is not handler:
            raise ValueError(f"{self.name}: handler for {name} already registered")
        self._handlers[name] = handler

    def unregister_handler(self, message_cls: Type[Message]) -> None:
        self._handlers.pop(message_cls.__name__, None)

    def deliver(self, message: Message) -> None:
        """Dispatch an arriving message to the registered handler."""
        if not self.alive:
            return
        # Exact class name first, then base classes — so a handler on
        # RpcReply catches every reply subclass.
        handler = self._handlers.get(type(message).__name__)
        if handler is None:
            for base in type(message).__mro__[1:]:
                handler = self._handlers.get(base.__name__)
                if handler is not None:
                    break
        if handler is None:
            # Unhandled messages are dropped, mirroring a listener that was
            # torn down; counted so tests can assert nothing leaks.
            self.network.sim.metrics.counter("net.unhandled").increment()
            return
        handler(message)

    # ------------------------------------------------------------------
    # Sending and timers
    # ------------------------------------------------------------------
    def send(self, dst: NodeId, message: Message, on_fail=None) -> None:
        if not self.alive:
            return
        self.network.send(self.node_id, dst, message, on_fail=on_fail)

    def call_after(self, delay_ms: float, callback: Callable[[], Any], label: str = "") -> TimerHandle:
        """Schedule a callback that is squelched if this host crashes."""
        incarnation = self.incarnation

        def guarded() -> None:
            if self.alive and self.incarnation == incarnation:
                callback()

        return self._sim.call_after(delay_ms, guarded, label=label or f"{self.name}:timer")

    # ------------------------------------------------------------------
    # RPC
    # ------------------------------------------------------------------
    def rpc(
        self,
        dst: NodeId,
        request: RpcRequest,
        timeout_ms: float,
        on_reply: Callable[[RpcReply], None],
        on_failure: Callable[[str], None],
    ) -> int:
        """Issue a request; exactly one of the callbacks fires.

        ``on_failure`` receives "timeout" or "broken" (connection break).
        Returns the rpc id.
        """
        if not isinstance(request, RpcRequest):
            raise TypeError("rpc() requires an RpcRequest message")
        rpc_id = next(self._rpc_seq)
        request.rpc_id = rpc_id

        def on_timeout() -> None:
            pending = self._pending_rpcs.pop(rpc_id, None)
            if pending is not None:
                pending.on_failure("timeout")

        timer = self.call_after(timeout_ms, on_timeout, label=f"{self.name}:rpc-timeout")
        self._pending_rpcs[rpc_id] = _PendingRpc(on_reply, on_failure, timer)

        def on_break(_dst: NodeId, _msg: Message) -> None:
            pending = self._pending_rpcs.pop(rpc_id, None)
            if pending is not None:
                pending.timer.cancel()
                pending.on_failure("broken")

        self.send(dst, request, on_fail=on_break)
        return rpc_id

    def respond(self, request: RpcRequest, reply: RpcReply, on_fail=None) -> None:
        """Send ``reply`` back to the requester, echoing its rpc id."""
        if request.sender is None:
            raise ValueError("request has no sender; was it delivered by the network?")
        reply.rpc_id = request.rpc_id
        self.send(request.sender, reply, on_fail=on_fail)

    def _on_rpc_reply(self, message: Message) -> None:
        reply = message
        pending = self._pending_rpcs.pop(getattr(reply, "rpc_id", -1), None)
        if pending is None:
            return  # late reply after timeout; drop
        pending.timer.cancel()
        pending.on_reply(reply)

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"Host({self.name}, {state}, inc={self.incarnation})"

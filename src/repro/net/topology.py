"""Router-level topology with per-link latency and loss.

A topology is an undirected graph whose vertices are *routers* plus a set
of *hosts*, each attached to one router by an access link.  Links carry a
one-way latency (ms), a nominal bandwidth tag (OC3/T3/access/intra-AS —
kept for reporting; the simulator, like the paper's, does not model
bandwidth contention), and a loss probability applied independently per
traversal.

End-to-end properties of a route are derived here:

* latency = sum of link latencies along the route;
* loss    = 1 - prod(1 - link_loss) — this is exactly the model behind
  the paper's Fig 11 (0.4 %/0.8 %/1.6 % per-link loss compounding over a
  median 15-hop route into 5.8 %/11.4 %/21.5 % route loss).

On top of the memoryless per-link ``loss``, a link may carry a stateful
:class:`GilbertElliott` burst model (``link.burst``), giving *correlated*
loss runs: a route drops packets back to back while any of its links sits
in the bad state.  Bursts are the adversarial counterpart to Fig 12's
false-positive analysis — the same average loss rate, concentrated,
defeats retransmission far more often than independent drops do.
Bandwidth-contention and latency-inflation windows are node-scoped and
live in :mod:`repro.net.faults`, not on links.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.address import NodeId


def _validate_probability(value: float, what: str, inclusive: bool = False) -> float:
    """Reject NaN and out-of-range probabilities with a clear error."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise TypeError(f"{what} must be a number, got {value!r}") from None
    if math.isnan(value):
        raise ValueError(f"{what} must not be NaN")
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{what} must be in [0, 1]: {value}")
    elif not 0.0 <= value < 1.0:
        raise ValueError(f"{what} must be in [0, 1): {value}")
    return value


class GilbertElliott:
    """Stateful two-state (good/bad) per-link loss model.

    The classic Gilbert-Elliott channel: the link flips between a *good*
    state (loss ``loss_good``, usually 0) and a *bad* state (loss
    ``loss_bad``) with per-packet transition probabilities ``p_g2b`` and
    ``p_b2g``.  Small ``p_b2g`` values yield long correlated loss bursts —
    the adversarial regime for Fig 12's false-positive bound, because a
    burst outlasting the retransmission budget breaks connections that a
    memoryless loss process of the same average rate would spare.

    ``sample`` consumes exactly **two** RNG draws per traversal regardless
    of state (drop-given-state, then transition), so the draw count — and
    with it the determinism contract of everything downstream — does not
    depend on the chain's trajectory.
    """

    __slots__ = ("p_g2b", "p_b2g", "loss_good", "loss_bad", "bad")

    def __init__(
        self,
        p_g2b: float,
        p_b2g: float,
        loss_good: float = 0.0,
        loss_bad: float = 0.35,
        start_bad: bool = False,
    ) -> None:
        self.p_g2b = _validate_probability(p_g2b, "p_g2b", inclusive=True)
        self.p_b2g = _validate_probability(p_b2g, "p_b2g", inclusive=True)
        self.loss_good = _validate_probability(loss_good, "loss_good")
        self.loss_bad = _validate_probability(loss_bad, "loss_bad")
        self.bad = bool(start_bad)

    def sample(self, rng) -> bool:
        """Advance the chain one packet; return True if the packet drops."""
        if self.bad:
            drop = rng.random() < self.loss_bad
            if rng.random() < self.p_b2g:
                self.bad = False
        else:
            drop = rng.random() < self.loss_good
            if rng.random() < self.p_g2b:
                self.bad = True
        return drop

    def __repr__(self) -> str:
        state = "bad" if self.bad else "good"
        return (
            f"GilbertElliott(p_g2b={self.p_g2b}, p_b2g={self.p_b2g}, "
            f"loss_good={self.loss_good}, loss_bad={self.loss_bad}, state={state})"
        )


class LinkKind(enum.Enum):
    """Nominal link classes from the paper's ModelNet configuration."""

    OC3 = "oc3"          # inter-AS, 10-40 ms, 155 Mbps
    T3 = "t3"            # inter-AS, 300-500 ms, 45 Mbps
    INTRA_AS = "intra"   # router-to-router inside one AS, sub-ms
    ACCESS = "access"    # host to edge router


class Link:
    """One undirected router-level link."""

    __slots__ = ("a", "b", "latency_ms", "kind", "loss", "burst")

    def __init__(self, a: int, b: int, latency_ms: float, kind: LinkKind, loss: float = 0.0) -> None:
        if latency_ms < 0:
            raise ValueError(f"negative link latency: {latency_ms}")
        self.a = a
        self.b = b
        self.latency_ms = latency_ms
        self.kind = kind
        self.loss = _validate_probability(loss, "link loss")
        #: optional stateful burst-loss model (GilbertElliott) layered on
        #: top of the memoryless ``loss``; None on the idle/default path.
        self.burst: Optional[GilbertElliott] = None

    def endpoints(self) -> Tuple[int, int]:
        return (self.a, self.b)

    def __repr__(self) -> str:
        return (
            f"Link({self.a}<->{self.b}, {self.latency_ms:.1f}ms, "
            f"{self.kind.value}, loss={self.loss:.4f})"
        )


def _edge_key(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a <= b else (b, a)


class Topology:
    """Mutable router graph plus host attachments."""

    def __init__(self) -> None:
        self._adjacency: Dict[int, Dict[int, Link]] = {}
        self._links: Dict[Tuple[int, int], Link] = {}
        self._host_router: Dict[NodeId, int] = {}
        self._host_access: Dict[NodeId, Link] = {}
        self._next_router = 0
        self._generation = 0

    @property
    def generation(self) -> int:
        """Counter bumped on every link mutation.

        Cached route properties (:meth:`repro.net.routing.Route.current_loss`
        and friends) compare against this to decide whether their snapshot
        is still valid.  Code that mutates a :class:`Link` directly —
        rather than through :meth:`set_uniform_loss`/:meth:`set_link_loss`
        or the construction API — must call :meth:`touch` afterwards.
        """
        return self._generation

    def touch(self) -> None:
        """Invalidate link-derived caches after a direct Link mutation."""
        self._generation += 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_router(self) -> int:
        router = self._next_router
        self._next_router += 1
        self._adjacency[router] = {}
        return router

    def add_link(self, a: int, b: int, latency_ms: float, kind: LinkKind, loss: float = 0.0) -> Link:
        if a == b:
            raise ValueError(f"self-loop link on router {a}")
        for router in (a, b):
            if router not in self._adjacency:
                raise KeyError(f"unknown router: {router}")
        key = _edge_key(a, b)
        if key in self._links:
            raise ValueError(f"duplicate link {a}<->{b}")
        link = Link(a, b, latency_ms, kind, loss)
        self._links[key] = link
        self._adjacency[a][b] = link
        self._adjacency[b][a] = link
        self._generation += 1
        return link

    def attach_host(self, host: NodeId, router: int, access_latency_ms: float = 1.0) -> None:
        """Attach ``host`` to ``router`` with a dedicated access link."""
        if router not in self._adjacency:
            raise KeyError(f"unknown router: {router}")
        if host in self._host_router:
            raise ValueError(f"host {host} already attached")
        self._host_router[host] = router
        self._host_access[host] = Link(-1 - host, router, access_latency_ms, LinkKind.ACCESS)
        self._generation += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def router_count(self) -> int:
        return len(self._adjacency)

    @property
    def link_count(self) -> int:
        return len(self._links)

    def routers(self) -> Iterable[int]:
        return self._adjacency.keys()

    def hosts(self) -> Iterable[NodeId]:
        return self._host_router.keys()

    def host_router(self, host: NodeId) -> int:
        return self._host_router[host]

    def access_link(self, host: NodeId) -> Link:
        return self._host_access[host]

    def neighbors(self, router: int) -> Dict[int, Link]:
        return self._adjacency[router]

    def link_between(self, a: int, b: int) -> Optional[Link]:
        return self._links.get(_edge_key(a, b))

    def links(self) -> Iterable[Link]:
        return self._links.values()

    def router_components(self, kinds: Sequence[LinkKind]) -> Dict[int, int]:
        """Partition routers into connected components over links of the
        given kinds; returns router -> component id.

        Component ids are assigned in ascending order of each component's
        smallest router id, so the labelling is deterministic.  With
        ``kinds=[LinkKind.INTRA_AS]`` this recovers the autonomous systems
        of a Mercator topology from the graph alone (AS membership is not
        persisted at build time).
        """
        wanted = set(kinds)
        parent: Dict[int, int] = {r: r for r in self._adjacency}

        def find(r: int) -> int:
            root = r
            while parent[root] != root:
                root = parent[root]
            while parent[r] != root:
                parent[r], r = root, parent[r]
            return root

        for link in self._links.values():
            if link.kind in wanted:
                ra, rb = find(link.a), find(link.b)
                if ra != rb:
                    if rb < ra:
                        ra, rb = rb, ra
                    parent[rb] = ra
        labels: Dict[int, int] = {}
        out: Dict[int, int] = {}
        for router in sorted(parent):
            root = find(router)
            if root not in labels:
                labels[root] = len(labels)
            out[router] = labels[root]
        return out

    def min_cross_group_latency(self, group_of: Dict[int, int]) -> Optional[float]:
        """Minimum latency over router links whose endpoints lie in
        different groups, or None when no link crosses a group boundary.

        This is the conservative-lookahead query of the parallel window
        scheduler (:mod:`repro.sim.parallel`): any message between hosts
        in different groups traverses at least one such link, so its
        delivery lags its send by at least this much.
        """
        best: Optional[float] = None
        for link in self._links.values():
            if group_of.get(link.a) != group_of.get(link.b):
                if best is None or link.latency_ms < best:
                    best = link.latency_ms
        return best

    def min_access_latency(self) -> Optional[float]:
        """Minimum host access-link latency, or None with no hosts."""
        best: Optional[float] = None
        for link in self._host_access.values():
            if best is None or link.latency_ms < best:
                best = link.latency_ms
        return best

    # ------------------------------------------------------------------
    # Loss configuration
    # ------------------------------------------------------------------
    def set_uniform_loss(self, loss: float, kinds: Optional[Sequence[LinkKind]] = None) -> None:
        """Apply ``loss`` to every link (optionally filtered by kind).

        This is how the Fig 11/12 experiments turn on per-link drops after
        the groups are created ("We then enabled losses...").
        """
        loss = _validate_probability(loss, "loss")
        wanted = set(kinds) if kinds is not None else None
        for link in self._links.values():
            if wanted is None or link.kind in wanted:
                link.loss = loss
        for link in self._host_access.values():
            if wanted is None or link.kind in wanted:
                link.loss = loss
        self._generation += 1

    def set_link_loss(self, link: Link, loss: float) -> None:
        """Set one link's loss probability, invalidating route caches."""
        link.loss = _validate_probability(loss, "link loss")
        self._generation += 1

    # ------------------------------------------------------------------
    # Correlated (bursty) loss configuration
    # ------------------------------------------------------------------
    def set_link_burst(self, link: Link, model: Optional[GilbertElliott]) -> None:
        """Install (or with ``None`` remove) a stateful burst-loss model on
        one link, invalidating route caches."""
        if model is not None and not isinstance(model, GilbertElliott):
            raise TypeError(f"burst model must be GilbertElliott or None, got {model!r}")
        link.burst = model
        self._generation += 1

    def set_uniform_burst(
        self,
        p_g2b: float,
        p_b2g: float,
        loss_good: float = 0.0,
        loss_bad: float = 0.35,
        kinds: Optional[Sequence[LinkKind]] = None,
    ) -> int:
        """Install an independent Gilbert-Elliott chain on every link
        (optionally filtered by kind), including host access links.

        Each link gets its *own* chain instance — bursts on different
        links are uncorrelated, as on real paths.  Returns the number of
        links affected.  Validation happens once, in the model constructor.
        """
        wanted = set(kinds) if kinds is not None else None
        count = 0
        for link in self._links.values():
            if wanted is None or link.kind in wanted:
                link.burst = GilbertElliott(p_g2b, p_b2g, loss_good, loss_bad)
                count += 1
        for link in self._host_access.values():
            if wanted is None or link.kind in wanted:
                link.burst = GilbertElliott(p_g2b, p_b2g, loss_good, loss_bad)
                count += 1
        self._generation += 1
        return count

    def clear_burst(self) -> int:
        """Remove every burst-loss model; returns how many were removed."""
        count = 0
        for link in self._links.values():
            if link.burst is not None:
                link.burst = None
                count += 1
        for link in self._host_access.values():
            if link.burst is not None:
                link.burst = None
                count += 1
        self._generation += 1
        return count

    @property
    def burst_link_count(self) -> int:
        burst = sum(1 for link in self._links.values() if link.burst is not None)
        burst += sum(1 for link in self._host_access.values() if link.burst is not None)
        return burst

    def burst_snapshot(self) -> Dict[Tuple[str, object], Tuple[float, float, float, float, bool]]:
        """Detached copy of every link's burst-chain configuration *and*
        chain state (the good/bad bit), router and host-access links both.

        Burst chains live on the topology, not the fault injector, so
        :meth:`repro.net.faults.FaultInjector.snapshot` alone cannot
        round-trip a world that combines (say) gray failure with bursty
        loss — pass the topology to it, or use this pair directly."""
        out: Dict[Tuple[str, object], Tuple[float, float, float, float, bool]] = {}
        for key, link in self._links.items():
            model = link.burst
            if model is not None:
                out[("link", key)] = (
                    model.p_g2b, model.p_b2g, model.loss_good, model.loss_bad, model.bad,
                )
        for host, link in self._host_access.items():
            model = link.burst
            if model is not None:
                out[("access", host)] = (
                    model.p_g2b, model.p_b2g, model.loss_good, model.loss_bad, model.bad,
                )
        return out

    def restore_burst(
        self, snapshot: Dict[Tuple[str, object], Tuple[float, float, float, float, bool]]
    ) -> None:
        """Replace every link's burst model with a prior
        :meth:`burst_snapshot` (links absent from it lose theirs), in one
        generation bump.  Fresh chain instances are built, so restoring
        twice from one snapshot yields independent state."""
        for key, link in self._links.items():
            link.burst = self._burst_from(snapshot.get(("link", key)))
        for host, link in self._host_access.items():
            link.burst = self._burst_from(snapshot.get(("access", host)))
        self._generation += 1

    @staticmethod
    def _burst_from(params) -> Optional[GilbertElliott]:
        if params is None:
            return None
        p_g2b, p_b2g, loss_good, loss_bad, bad = params
        return GilbertElliott(p_g2b, p_b2g, loss_good, loss_bad, start_bad=bad)

    # ------------------------------------------------------------------
    # Route-derived properties
    # ------------------------------------------------------------------
    def route_links(self, host_a: NodeId, host_b: NodeId, router_path: Sequence[int]) -> List[Link]:
        """All links traversed by a host-to-host route over ``router_path``."""
        if host_a == host_b:
            return []
        links: List[Link] = [self._host_access[host_a]]
        for i in range(len(router_path) - 1):
            link = self.link_between(router_path[i], router_path[i + 1])
            if link is None:
                raise ValueError(
                    f"router path broken between {router_path[i]} and {router_path[i + 1]}"
                )
            links.append(link)
        links.append(self._host_access[host_b])
        return links

    @staticmethod
    def path_latency(links: Sequence[Link]) -> float:
        return sum(link.latency_ms for link in links)

    @staticmethod
    def path_loss(links: Sequence[Link]) -> float:
        survive = 1.0
        for link in links:
            survive *= 1.0 - link.loss
        return 1.0 - survive

    def __repr__(self) -> str:
        return (
            f"Topology(routers={self.router_count}, links={self.link_count}, "
            f"hosts={len(self._host_router)})"
        )

"""Router-level topology with per-link latency and loss.

A topology is an undirected graph whose vertices are *routers* plus a set
of *hosts*, each attached to one router by an access link.  Links carry a
one-way latency (ms), a nominal bandwidth tag (OC3/T3/access/intra-AS —
kept for reporting; the simulator, like the paper's, does not model
bandwidth contention), and a loss probability applied independently per
traversal.

End-to-end properties of a route are derived here:

* latency = sum of link latencies along the route;
* loss    = 1 - prod(1 - link_loss) — this is exactly the model behind
  the paper's Fig 11 (0.4 %/0.8 %/1.6 % per-link loss compounding over a
  median 15-hop route into 5.8 %/11.4 %/21.5 % route loss).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.address import NodeId


class LinkKind(enum.Enum):
    """Nominal link classes from the paper's ModelNet configuration."""

    OC3 = "oc3"          # inter-AS, 10-40 ms, 155 Mbps
    T3 = "t3"            # inter-AS, 300-500 ms, 45 Mbps
    INTRA_AS = "intra"   # router-to-router inside one AS, sub-ms
    ACCESS = "access"    # host to edge router


class Link:
    """One undirected router-level link."""

    __slots__ = ("a", "b", "latency_ms", "kind", "loss")

    def __init__(self, a: int, b: int, latency_ms: float, kind: LinkKind, loss: float = 0.0) -> None:
        if latency_ms < 0:
            raise ValueError(f"negative link latency: {latency_ms}")
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"link loss must be in [0, 1): {loss}")
        self.a = a
        self.b = b
        self.latency_ms = latency_ms
        self.kind = kind
        self.loss = loss

    def endpoints(self) -> Tuple[int, int]:
        return (self.a, self.b)

    def __repr__(self) -> str:
        return (
            f"Link({self.a}<->{self.b}, {self.latency_ms:.1f}ms, "
            f"{self.kind.value}, loss={self.loss:.4f})"
        )


def _edge_key(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a <= b else (b, a)


class Topology:
    """Mutable router graph plus host attachments."""

    def __init__(self) -> None:
        self._adjacency: Dict[int, Dict[int, Link]] = {}
        self._links: Dict[Tuple[int, int], Link] = {}
        self._host_router: Dict[NodeId, int] = {}
        self._host_access: Dict[NodeId, Link] = {}
        self._next_router = 0
        self._generation = 0

    @property
    def generation(self) -> int:
        """Counter bumped on every link mutation.

        Cached route properties (:meth:`repro.net.routing.Route.current_loss`
        and friends) compare against this to decide whether their snapshot
        is still valid.  Code that mutates a :class:`Link` directly —
        rather than through :meth:`set_uniform_loss`/:meth:`set_link_loss`
        or the construction API — must call :meth:`touch` afterwards.
        """
        return self._generation

    def touch(self) -> None:
        """Invalidate link-derived caches after a direct Link mutation."""
        self._generation += 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_router(self) -> int:
        router = self._next_router
        self._next_router += 1
        self._adjacency[router] = {}
        return router

    def add_link(self, a: int, b: int, latency_ms: float, kind: LinkKind, loss: float = 0.0) -> Link:
        if a == b:
            raise ValueError(f"self-loop link on router {a}")
        for router in (a, b):
            if router not in self._adjacency:
                raise KeyError(f"unknown router: {router}")
        key = _edge_key(a, b)
        if key in self._links:
            raise ValueError(f"duplicate link {a}<->{b}")
        link = Link(a, b, latency_ms, kind, loss)
        self._links[key] = link
        self._adjacency[a][b] = link
        self._adjacency[b][a] = link
        self._generation += 1
        return link

    def attach_host(self, host: NodeId, router: int, access_latency_ms: float = 1.0) -> None:
        """Attach ``host`` to ``router`` with a dedicated access link."""
        if router not in self._adjacency:
            raise KeyError(f"unknown router: {router}")
        if host in self._host_router:
            raise ValueError(f"host {host} already attached")
        self._host_router[host] = router
        self._host_access[host] = Link(-1 - host, router, access_latency_ms, LinkKind.ACCESS)
        self._generation += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def router_count(self) -> int:
        return len(self._adjacency)

    @property
    def link_count(self) -> int:
        return len(self._links)

    def routers(self) -> Iterable[int]:
        return self._adjacency.keys()

    def hosts(self) -> Iterable[NodeId]:
        return self._host_router.keys()

    def host_router(self, host: NodeId) -> int:
        return self._host_router[host]

    def access_link(self, host: NodeId) -> Link:
        return self._host_access[host]

    def neighbors(self, router: int) -> Dict[int, Link]:
        return self._adjacency[router]

    def link_between(self, a: int, b: int) -> Optional[Link]:
        return self._links.get(_edge_key(a, b))

    def links(self) -> Iterable[Link]:
        return self._links.values()

    # ------------------------------------------------------------------
    # Loss configuration
    # ------------------------------------------------------------------
    def set_uniform_loss(self, loss: float, kinds: Optional[Sequence[LinkKind]] = None) -> None:
        """Apply ``loss`` to every link (optionally filtered by kind).

        This is how the Fig 11/12 experiments turn on per-link drops after
        the groups are created ("We then enabled losses...").
        """
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1): {loss}")
        wanted = set(kinds) if kinds is not None else None
        for link in self._links.values():
            if wanted is None or link.kind in wanted:
                link.loss = loss
        for link in self._host_access.values():
            if wanted is None or link.kind in wanted:
                link.loss = loss
        self._generation += 1

    def set_link_loss(self, link: Link, loss: float) -> None:
        """Set one link's loss probability, invalidating route caches."""
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"link loss must be in [0, 1): {loss}")
        link.loss = loss
        self._generation += 1

    # ------------------------------------------------------------------
    # Route-derived properties
    # ------------------------------------------------------------------
    def route_links(self, host_a: NodeId, host_b: NodeId, router_path: Sequence[int]) -> List[Link]:
        """All links traversed by a host-to-host route over ``router_path``."""
        if host_a == host_b:
            return []
        links: List[Link] = [self._host_access[host_a]]
        for i in range(len(router_path) - 1):
            link = self.link_between(router_path[i], router_path[i + 1])
            if link is None:
                raise ValueError(
                    f"router path broken between {router_path[i]} and {router_path[i + 1]}"
                )
            links.append(link)
        links.append(self._host_access[host_b])
        return links

    @staticmethod
    def path_latency(links: Sequence[Link]) -> float:
        return sum(link.latency_ms for link in links)

    @staticmethod
    def path_loss(links: Sequence[Link]) -> float:
        survive = 1.0
        for link in links:
            survive *= 1.0 - link.loss
        return 1.0 - survive

    def __repr__(self) -> str:
        return (
            f"Topology(routers={self.router_count}, links={self.link_count}, "
            f"hosts={len(self._host_router)})"
        )

"""Message base type.

Protocol layers (overlay, FUSE, applications) define message classes by
subclassing :class:`Message`.  Dispatch at the receiving host is by class
name, so subclasses should have unique, descriptive names — they double
as the wire "type" field and as the label in traces and message counters.

Paper cross-reference: §6.2 — everything FUSE and the overlay exchange
rides the messaging layer modeled here; ``size_bytes`` feeds the
message-cost accounting of Fig 10 and §7.5.
"""

from __future__ import annotations

from typing import Optional

from repro.net.address import NodeId


class Message:
    """Base class for every simulated network message.

    The base class carries ``__slots__`` so that message subclasses which
    also declare ``__slots__`` (the high-rate overlay/FUSE wire messages)
    allocate no per-instance ``__dict__`` — at 16,000 nodes the liveness
    traffic creates hundreds of thousands of message objects per virtual
    minute, and the dict per message dominated allocation churn.
    Subclasses without ``__slots__`` still work; they simply keep a dict.

    Attributes:
        size_bytes: nominal wire size used by byte counters.  The paper's
            implementation used a verbose XML messaging layer; we default
            to a few hundred bytes and let specific messages override
            (e.g. the 20-byte piggybacked hash rides inside ping messages).
    """

    __slots__ = ("sender",)

    size_bytes: int = 256

    # Liveness-plane messages (overlay pings and their acks) set this True.
    # Gray failure (FaultInjector.gray_fail) keys on it: a gray node still
    # receives — and answers — liveness traffic, but every inbound message
    # of an application class is silently dropped at delivery.
    is_liveness: bool = False

    def __getattr__(self, name: str) -> "Optional[NodeId]":
        # ``sender`` is stamped by the network at send time; before that
        # the slot is unset.  Reading it then must yield None (callers
        # check ``message.sender is None``), not AttributeError.
        if name == "sender":
            return None
        raise AttributeError(name)

    # The network shallow-copies each message at send time so stamping the
    # sender (and any receiver-side mutation) cannot leak back into an
    # object the caller still holds.  Message classes that are constructed
    # fresh for exactly one send and never touched again by the sender may
    # set this False to skip that copy — the high-rate liveness traffic
    # (pings/acks) does.  Leave it True for anything a caller retains,
    # re-sends, or that receivers mutate (e.g. routed envelopes).
    copy_on_send: bool = True

    @property
    def type_name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{self.type_name}(from={self.sender})"

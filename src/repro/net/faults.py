"""Fault injection: crashes, disconnects, partitions, intransitive failures.

FUSE's headline guarantee is delivery of failure notifications under *node
crashes and arbitrary network failures*; this module is where arbitrary
network failures come from.  The fault model matches §3.5 of the paper:

* **crash** — fail-stop process death (the host stops executing);
* **disconnect** — the host keeps running but its network is unreachable
  (how the paper's Fig 9 experiment "disconnected the network on one of
  the 40 physical machines");
* **partition** — the host set is split into groups; traffic crosses
  group boundaries only if explicitly allowed;
* **intransitive connectivity failure** — a specific pair cannot talk
  even though both can reach third parties (§2, §3.4);
* **asymmetric (one-way) failure** — packets from A to B vanish while
  B to A flows normally, the nastiest case of §3.5's "arbitrary network
  failures" (a misconfigured firewall, a half-broken NAT);
* **gray failure** — the node answers liveness pings but silently drops
  inbound application traffic (a wedged application thread behind a
  healthy kernel network stack).  Liveness stays green, so FUSE's ping
  plane never suspects it; detection has to come from the application's
  own request/response timeouts (§3.4's explicit SignalFailure path).
  Consulted by :meth:`repro.net.network.Network._deliver` per message
  class — liveness messages (``Message.is_liveness``) are exempt;
* **performance faults** — latency-inflation and bandwidth-contention
  windows scoped to a node: all traffic touching it is slowed by a
  multiplicative factor (latency) or its sends serialize more slowly
  (send-overhead factor).  Bad enough factors push round trips past the
  liveness timeout and manufacture Fig 12-style false positives without
  dropping a single packet;
* per-link packet loss lives on the topology itself
  (:meth:`repro.net.topology.Topology.set_uniform_loss`; correlated
  bursts via :meth:`repro.net.topology.Topology.set_uniform_burst`).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.net.address import NodeId


def _validate_factor(factor: float, what: str) -> float:
    try:
        factor = float(factor)
    except (TypeError, ValueError):
        raise TypeError(f"{what} must be a number, got {factor!r}") from None
    if math.isnan(factor) or math.isinf(factor) or factor <= 0.0:
        raise ValueError(f"{what} must be a finite positive number: {factor}")
    return factor


class FaultInjector:
    """Mutable fault state consulted by the network on every delivery."""

    def __init__(self) -> None:
        self._crashed: Set[NodeId] = set()
        self._disconnected: Set[NodeId] = set()
        self._blocked_pairs: Set[FrozenSet[NodeId]] = set()
        self._blocked_one_way: Set[Tuple[NodeId, NodeId]] = set()
        #: one-way cuts as (src side, dst side) set pairs — O(sides) to
        #: install at any world size, unlike enumerating |A|x|B| pairs.
        self._one_way_cuts: List[Tuple[FrozenSet[NodeId], FrozenSet[NodeId]]] = []
        self._partition_of: Dict[NodeId, int] = {}
        #: gray-failed nodes: liveness pings flow, inbound application
        #: traffic is dropped at delivery (never on the reachability path,
        #: so can_communicate is deliberately blind to this set).
        self._gray: Set[NodeId] = set()
        #: node -> multiplicative latency factor (> 1 inflates).
        self._latency_factors: Dict[NodeId, float] = {}
        #: node -> multiplicative send-overhead factor (> 1 contends).
        self._send_factors: Dict[NodeId, float] = {}
        #: bumped by every mutator; caches keyed on fault state (the
        #: liveness lanes' can_communicate fast path) compare this.
        self._mutations = 0

    @property
    def mutation_count(self) -> int:
        """Monotone generation counter: changes whenever fault state may
        have changed.  Cheap to poll; never decreases."""
        return self._mutations

    def any_faults(self) -> bool:
        """True when any *reachability* fault is installed — the
        complement is a fast path where ``can_communicate`` is vacuously
        True.  Gray failures and performance faults do not affect
        reachability and are deliberately excluded; poll
        :meth:`is_gray_failed` / :meth:`has_perf_faults` for those."""
        return bool(
            self._crashed
            or self._disconnected
            or self._blocked_pairs
            or self._blocked_one_way
            or self._one_way_cuts
            or self._partition_of
        )

    # ------------------------------------------------------------------
    # Crashes (fail-stop)
    # ------------------------------------------------------------------
    def crash(self, node: NodeId) -> None:
        self._crashed.add(node)
        self._mutations += 1

    def recover(self, node: NodeId) -> None:
        """Restart a crashed node (the process reinitializes from scratch,
        per the paper's trivial crash-recovery story in §3.6)."""
        self._crashed.discard(node)
        self._mutations += 1

    def is_crashed(self, node: NodeId) -> bool:
        return node in self._crashed

    @property
    def crashed_nodes(self) -> Set[NodeId]:
        return set(self._crashed)

    # ------------------------------------------------------------------
    # Network disconnects
    # ------------------------------------------------------------------
    def disconnect(self, node: NodeId) -> None:
        self._disconnected.add(node)
        self._mutations += 1

    def reconnect(self, node: NodeId) -> None:
        self._disconnected.discard(node)
        self._mutations += 1

    def is_disconnected(self, node: NodeId) -> bool:
        return node in self._disconnected

    # ------------------------------------------------------------------
    # Pairwise (intransitive) failures
    # ------------------------------------------------------------------
    def block_pair(self, a: NodeId, b: NodeId) -> None:
        """Install an intransitive connectivity failure between a and b."""
        if a == b:
            raise ValueError("cannot block a node from itself")
        self._blocked_pairs.add(frozenset((a, b)))
        self._mutations += 1

    def unblock_pair(self, a: NodeId, b: NodeId) -> None:
        self._blocked_pairs.discard(frozenset((a, b)))
        self._mutations += 1

    # ------------------------------------------------------------------
    # Asymmetric (one-way) failures
    # ------------------------------------------------------------------
    def block_one_way(self, src: NodeId, dst: NodeId) -> None:
        """Drop packets from ``src`` to ``dst``; ``dst`` to ``src`` still
        flows.  The asymmetric half of an intransitive failure (§3.5)."""
        if src == dst:
            raise ValueError("cannot block a node from itself")
        self._blocked_one_way.add((src, dst))
        self._mutations += 1

    def unblock_one_way(self, src: NodeId, dst: NodeId) -> None:
        self._blocked_one_way.discard((src, dst))
        self._mutations += 1

    def block_one_way_sets(self, srcs: Iterable[NodeId], dsts: Iterable[NodeId]) -> None:
        """Drop every packet from any node in ``srcs`` to any node in
        ``dsts``.  Stored as one (side, side) cut — O(|A|+|B|) memory —
        so a one-way partition scales to paper-size worlds instead of
        enumerating |A|x|B| pairs."""
        cut = (frozenset(srcs), frozenset(dsts))
        if cut[0] & cut[1]:
            raise ValueError("one-way cut sides overlap")
        self._one_way_cuts.append(cut)
        self._mutations += 1

    def unblock_one_way_sets(self, srcs: Iterable[NodeId], dsts: Iterable[NodeId]) -> None:
        cut = (frozenset(srcs), frozenset(dsts))
        self._one_way_cuts = [c for c in self._one_way_cuts if c != cut]
        self._mutations += 1

    def is_one_way_blocked(self, src: NodeId, dst: NodeId) -> bool:
        if (src, dst) in self._blocked_one_way:
            return True
        return any(src in srcs and dst in dsts for srcs, dsts in self._one_way_cuts)

    def has_link_faults(self) -> bool:
        """Any path-level fault (pair, one-way, partition, gray) installed?
        Used by the notification ledger: with no path faults and no
        crashed/disconnected member, a detection-driven notification is a
        loss-induced false positive (Fig 12).  Gray failures count here
        because a gray node silently eats application traffic routed *to*
        it — collateral detections it causes are not loss artifacts."""
        return bool(
            self._blocked_pairs
            or self._blocked_one_way
            or self._one_way_cuts
            or self._partition_of
            or self._gray
        )

    # ------------------------------------------------------------------
    # Gray failures (liveness green, application traffic blackholed)
    # ------------------------------------------------------------------
    def gray_fail(self, node: NodeId) -> None:
        """The node keeps acking liveness pings but drops every inbound
        application-class message at delivery.  The network consults this
        per message class (:attr:`repro.net.message.Message.is_liveness`):
        transport believes the packet was delivered — no retransmission,
        no broken socket — so only application-level timeouts can see it."""
        self._gray.add(node)
        self._mutations += 1

    def gray_recover(self, node: NodeId) -> None:
        self._gray.discard(node)
        self._mutations += 1

    def is_gray_failed(self, node: NodeId) -> bool:
        return node in self._gray

    @property
    def gray_nodes(self) -> Set[NodeId]:
        return set(self._gray)

    # ------------------------------------------------------------------
    # Performance faults (latency inflation / bandwidth contention)
    # ------------------------------------------------------------------
    def inflate_latency(self, node: NodeId, factor: float) -> None:
        """Multiply the propagation latency of every packet to or from
        ``node`` by ``factor``.  Factors from both endpoints compound."""
        self._latency_factors[node] = _validate_factor(factor, "latency factor")
        self._mutations += 1

    def restore_latency(self, node: NodeId) -> None:
        self._latency_factors.pop(node, None)
        self._mutations += 1

    def latency_factor(self, a: NodeId, b: NodeId) -> float:
        """Combined latency multiplier for a packet from ``a`` to ``b``."""
        factors = self._latency_factors
        if not factors:
            return 1.0
        return factors.get(a, 1.0) * factors.get(b, 1.0)

    def contend_bandwidth(self, node: NodeId, factor: float) -> None:
        """Multiply ``node``'s per-message send overhead by ``factor``,
        modeling a congested uplink: its sends serialize more slowly and
        its outbound queue backs up."""
        self._send_factors[node] = _validate_factor(factor, "bandwidth contention factor")
        self._mutations += 1

    def restore_bandwidth(self, node: NodeId) -> None:
        self._send_factors.pop(node, None)
        self._mutations += 1

    def send_factor(self, node: NodeId) -> float:
        return self._send_factors.get(node, 1.0)

    def has_perf_faults(self) -> bool:
        """Any latency-inflation or bandwidth-contention window active?
        The lane plane refuses to absorb nodes while this holds — inflated
        timing is heterogeneity the batched micro-engine does not model."""
        return bool(self._latency_factors or self._send_factors)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(self, groups: Iterable[Iterable[NodeId]]) -> None:
        """Split the listed nodes into isolated groups.

        Nodes not mentioned in any group remain unrestricted (they can
        talk to everyone), which models partial partitions.  Calling
        ``partition`` replaces any previous partition.
        """
        self._partition_of.clear()
        for index, group in enumerate(groups):
            for node in group:
                if node in self._partition_of:
                    raise ValueError(f"node {node} appears in two partition groups")
                self._partition_of[node] = index
        self._mutations += 1

    def heal_partition(self) -> None:
        self._partition_of.clear()
        self._mutations += 1

    # ------------------------------------------------------------------
    # The one question the network asks
    # ------------------------------------------------------------------
    def can_communicate(self, a: NodeId, b: NodeId) -> bool:
        """True if a packet from ``a`` can currently reach ``b``."""
        if a in self._crashed or b in self._crashed:
            return False
        if a in self._disconnected or b in self._disconnected:
            return False
        if frozenset((a, b)) in self._blocked_pairs:
            return False
        if (a, b) in self._blocked_one_way:
            return False
        if self._one_way_cuts and any(
            a in srcs and b in dsts for srcs, dsts in self._one_way_cuts
        ):
            return False
        pa = self._partition_of.get(a)
        pb = self._partition_of.get(b)
        if pa is not None and pb is not None and pa != pb:
            return False
        return True

    def clear_all(self) -> None:
        """Reset every fault family — reachability, gray, and performance
        — in a single mutation bump, so a heal between fuzz trials or
        scenario phases can never leave a family (a stale one-way cut, a
        forgotten latency window) behind."""
        self._crashed.clear()
        self._disconnected.clear()
        self._blocked_pairs.clear()
        self._blocked_one_way.clear()
        self._one_way_cuts.clear()
        self._partition_of.clear()
        self._gray.clear()
        self._latency_factors.clear()
        self._send_factors.clear()
        self._mutations += 1

    def clear(self) -> None:
        """Remove every injected fault (alias of :meth:`clear_all`)."""
        self.clear_all()

    # ------------------------------------------------------------------
    # Snapshot / restore (fuzz trials, nested fault windows)
    # ------------------------------------------------------------------
    def snapshot(self, topology=None) -> Dict[str, object]:
        """Deep copy of the complete fault state, restorable later.  The
        returned dict is detached: further mutations do not leak into it.

        Pass the world's :class:`repro.net.topology.Topology` to also
        capture per-link burst-chain state (parameters and the good/bad
        bit) — bursty loss lives on the topology, and without it a
        snapshot of a gray-failed world under burst loss silently drops
        the burst half on restore."""
        snap: Dict[str, object] = {
            "crashed": set(self._crashed),
            "disconnected": set(self._disconnected),
            "blocked_pairs": set(self._blocked_pairs),
            "blocked_one_way": set(self._blocked_one_way),
            "one_way_cuts": list(self._one_way_cuts),
            "partition_of": dict(self._partition_of),
            "gray": set(self._gray),
            "latency_factors": dict(self._latency_factors),
            "send_factors": dict(self._send_factors),
        }
        if topology is not None:
            snap["burst"] = topology.burst_snapshot()
        return snap

    def restore(self, snapshot: Dict[str, object], topology=None) -> None:
        """Replace the complete fault state with a prior :meth:`snapshot`,
        in one mutation bump.  Families absent from the snapshot (one
        taken before they existed) reset to empty rather than surviving.

        Pass the same ``topology`` given to :meth:`snapshot` to also
        restore burst-chain state; a topology with no ``burst`` family in
        the snapshot has its chains cleared (reset-absent semantics,
        matching every other family)."""
        self._crashed = set(snapshot.get("crashed", ()))
        self._disconnected = set(snapshot.get("disconnected", ()))
        self._blocked_pairs = set(snapshot.get("blocked_pairs", ()))
        self._blocked_one_way = set(snapshot.get("blocked_one_way", ()))
        self._one_way_cuts = list(snapshot.get("one_way_cuts", ()))
        self._partition_of = dict(snapshot.get("partition_of", {}))
        self._gray = set(snapshot.get("gray", ()))
        self._latency_factors = dict(snapshot.get("latency_factors", {}))
        self._send_factors = dict(snapshot.get("send_factors", {}))
        if topology is not None:
            topology.restore_burst(snapshot.get("burst", {}))
        self._mutations += 1

    def __repr__(self) -> str:
        return (
            f"FaultInjector(crashed={sorted(self._crashed)}, "
            f"disconnected={sorted(self._disconnected)}, "
            f"blocked_pairs={len(self._blocked_pairs)}, "
            f"blocked_one_way={len(self._blocked_one_way)}, "
            f"one_way_cuts={len(self._one_way_cuts)}, "
            f"partitioned={len(self._partition_of)}, "
            f"gray={sorted(self._gray)}, "
            f"perf={len(self._latency_factors) + len(self._send_factors)})"
        )

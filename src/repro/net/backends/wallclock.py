"""Wall-clock implementation of the Clock seam.

This module is the *only* sanctioned home of wall-clock reads in
``src/repro`` outside this package: everything else measures time through
a :class:`repro.net.backends.base.ClockBase`, which is what keeps the
simulated backend deterministic (``tests/test_time_purity.py`` enforces
this with a grep over the source tree).

Two exports:

* :class:`WallClock` — maps a monotonic wall-time source onto virtual
  milliseconds with a configurable compression factor, so live runs can
  execute a 60 s ping period in, say, 1.2 s of real time while every
  protocol timer still reads the same virtual numbers as the simulator.
* :func:`wall_seconds` — the plain "how long did this take" reading used
  by CLI reporting (``scenarios/run.py``, ``experiments/run.py``); going
  through this helper keeps those call sites visible at the seam.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.net.backends.base import ClockBase, validate_positive


def wall_seconds() -> float:
    """Wall time in seconds, for elapsed-time reporting in CLIs."""
    return time.time()


def perf_seconds() -> float:
    """Monotonic high-resolution wall time, for interval timing.

    The engine's per-trial ``wall_seconds`` measurement
    (:func:`repro.engine.trial.run_trial`) goes through here so the only
    ``time.*`` call sites stay inside this package (rule DH002 in
    ``repro.analysis``); intervals from this clock are immune to wall
    clock steps, unlike :func:`wall_seconds`.
    """
    return time.perf_counter()


class WallClock(ClockBase):
    """Wall-anchored clock reporting *virtual* milliseconds.

    ``time_scale`` is wall seconds per virtual second: 1.0 runs in real
    time, 0.02 compresses a virtual minute into 1.2 wall seconds.  The
    origin is fixed at construction, so virtual time is continuous across
    event-loop pauses — harness work between ``run_for`` windows shows up
    as virtual idle time, exactly like a process stall on a real host
    (documented in docs/BACKENDS.md under known deviations).
    """

    __slots__ = ("_time_fn", "_scale", "_origin")

    def __init__(
        self,
        time_scale: float = 1.0,
        time_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        self._scale = validate_positive(time_scale, "time_scale")
        self._time_fn = time_fn
        self._origin = time_fn()

    @property
    def time_scale(self) -> float:
        return self._scale

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return (self._time_fn() - self._origin) * 1000.0 / self._scale

    def wall_delay_s(self, virtual_ms: float) -> float:
        """Wall seconds corresponding to ``virtual_ms`` of virtual time."""
        return virtual_ms / 1000.0 * self._scale

    def __repr__(self) -> str:
        return f"WallClock(now={self.now:.1f}ms, time_scale={self._scale})"

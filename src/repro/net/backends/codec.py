"""Wire codec: length-prefixed JSON frames for the existing Message types.

The live backend ships the *same* message classes the simulator passes by
reference — :mod:`repro.overlay.skipnet.messages`,
:mod:`repro.fuse.messages`, the RPC wrappers in :mod:`repro.net.node` —
so nothing above the transport changes.  Encoding walks ``__slots__``
down the MRO (falling back to ``__dict__`` for slot-less subclasses);
decoding allocates with ``cls.__new__`` and restores fields, which also
gives the live path its copy-on-send isolation for free: the receiver
always gets a fresh object.

Frame layout (UDP datagram payload):

    4-byte big-endian length  |  JSON envelope (utf-8)

Envelope:

    {"k": "m", "s": src, "d": dst, "q": seq, "m": <tagged message>}   data
    {"k": "a", "s": src, "d": dst, "q": seq}                          ack

Tagged values keep JSON round-trips faithful for the two non-JSON shapes
the message set uses: nested messages (``RouteEnvelope.payload``) encode
as ``{"__m__": "TypeName", "f": {...}}`` and tuples (e.g.
``GroupCreateRequest.member_names``) as ``{"__t__": [...]}``.  Dict keys
are restricted to str/int (int keys round-trip via a key table); the FUSE
and overlay wire set satisfies this today and :func:`encode_message`
raises on anything it cannot represent faithfully.

JSON-not-msgpack: the container must not grow dependencies, and the FUSE
messages are tiny (hex hash digests, names, ints) — framing overhead, not
serialization speed, dominates on localhost.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterable, Optional, Tuple, Type

from repro.net.message import Message

_LEN = struct.Struct(">I")
MAX_FRAME_BYTES = 60_000  # stay under the localhost UDP datagram ceiling

_MSG_TAG = "__m__"
_TUPLE_TAG = "__t__"
_INTKEYS_TAG = "__ik__"


# ----------------------------------------------------------------------
# Message type registry
# ----------------------------------------------------------------------
_registry: Optional[Dict[str, Type[Message]]] = None


def _walk(cls: Type[Message]) -> Iterable[Type[Message]]:
    for sub in cls.__subclasses__():
        yield sub
        yield from _walk(sub)


def message_registry() -> Dict[str, Type[Message]]:
    """Name → class map over every Message subclass in the protocol stack.

    Imports the wire-bearing modules first so their classes exist, then
    walks ``__subclasses__`` recursively — test-local message classes
    defined later are picked up on the next rebuild (pass-through send
    never consults the registry, only decode does).
    """
    global _registry
    import repro.fuse.messages  # noqa: F401  (registration side effect)
    import repro.net.node  # noqa: F401
    import repro.overlay.skipnet.messages  # noqa: F401

    _registry = {cls.__name__: cls for cls in _walk(Message)}
    return _registry


def _lookup(type_name: str) -> Type[Message]:
    reg = _registry if _registry is not None else message_registry()
    cls = reg.get(type_name)
    if cls is None:
        # A class defined after the last build (e.g. in a test module).
        cls = message_registry().get(type_name)
    if cls is None:
        raise CodecError(f"unknown message type on wire: {type_name!r}")
    return cls


class CodecError(ValueError):
    """Raised for values the wire format cannot represent faithfully."""


# ----------------------------------------------------------------------
# Tagged value encoding
# ----------------------------------------------------------------------
def _encode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Message):
        return {_MSG_TAG: value.type_name, "f": _fields_of(value)}
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [_encode_value(v) for v in value]}
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    if isinstance(value, dict):
        out: Dict[str, Any] = {}
        int_keys = []
        for k, v in value.items():
            if isinstance(k, str):
                out[k] = _encode_value(v)
            elif isinstance(k, int) and not isinstance(k, bool):
                out[str(k)] = _encode_value(v)
                int_keys.append(str(k))
            else:
                raise CodecError(f"unencodable dict key: {k!r}")
        if int_keys:
            out[_INTKEYS_TAG] = int_keys
        return out
    raise CodecError(f"unencodable value: {value!r} ({type(value).__name__})")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if _MSG_TAG in value:
            return _materialize(value[_MSG_TAG], value["f"])
        if _TUPLE_TAG in value:
            return tuple(_decode_value(v) for v in value[_TUPLE_TAG])
        int_keys = set(value.get(_INTKEYS_TAG, ()))
        return {
            (int(k) if k in int_keys else k): _decode_value(v)
            for k, v in value.items()
            if k != _INTKEYS_TAG
        }
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def _fields_of(message: Message) -> Dict[str, Any]:
    fields: Dict[str, Any] = {}
    for cls in type(message).__mro__:
        for slot in getattr(cls, "__slots__", ()):
            if slot in fields:
                continue
            value = getattr(message, slot, None)
            fields[slot] = _encode_value(value)
    inst_dict = getattr(message, "__dict__", None)
    if inst_dict:
        for name, value in inst_dict.items():
            fields.setdefault(name, _encode_value(value))
    return fields


def _materialize(type_name: str, fields: Dict[str, Any]) -> Message:
    cls = _lookup(type_name)
    message = cls.__new__(cls)
    for name, value in fields.items():
        try:
            setattr(message, name, _decode_value(value))
        except AttributeError:
            raise CodecError(
                f"field {name!r} does not fit message type {type_name!r}"
            ) from None
    return message


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def encode_message(src: int, dst: int, seq: int, message: Message) -> bytes:
    """Frame a data message (expects an ack for ``seq``)."""
    envelope = {
        "k": "m",
        "s": src,
        "d": dst,
        "q": seq,
        "m": {_MSG_TAG: message.type_name, "f": _fields_of(message)},
    }
    body = json.dumps(envelope, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(
            f"frame too large for datagram: {len(body)} bytes ({message.type_name})"
        )
    return _LEN.pack(len(body)) + body


def encode_ack(src: int, dst: int, seq: int) -> bytes:
    envelope = {"k": "a", "s": src, "d": dst, "q": seq}
    body = json.dumps(envelope, separators=(",", ":")).encode("utf-8")
    return _LEN.pack(len(body)) + body


def decode_frame(data: bytes) -> Tuple[str, int, int, int, Optional[Message]]:
    """Parse one datagram → (kind, src, dst, seq, message-or-None).

    Raises :class:`CodecError` on torn or malformed frames — the caller
    treats that as wire garbage and drops the datagram.
    """
    if len(data) < _LEN.size:
        raise CodecError(f"short frame: {len(data)} bytes")
    (length,) = _LEN.unpack_from(data)
    body = data[_LEN.size:]
    if len(body) != length:
        raise CodecError(f"torn frame: header says {length}, got {len(body)}")
    try:
        envelope = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"undecodable frame: {exc}") from None
    try:
        kind = envelope["k"]
        src = envelope["s"]
        dst = envelope["d"]
        seq = envelope["q"]
    except (TypeError, KeyError) as exc:
        raise CodecError(f"malformed envelope: missing {exc}") from None
    message: Optional[Message] = None
    if kind == "m":
        payload = envelope.get("m")
        if not isinstance(payload, dict) or _MSG_TAG not in payload:
            raise CodecError("data frame without tagged message body")
        message = _materialize(payload[_MSG_TAG], payload.get("f", {}))
        # The sender stamp rides the envelope, mirroring the simulated
        # network's stamp-on-copy (nested messages keep their own).
        message.sender = src
    elif kind != "a":
        raise CodecError(f"unknown frame kind: {kind!r}")
    return kind, src, dst, seq, message

"""The backend seam: abstract Clock/Network contracts plus shared knobs.

Everything above the network — :class:`repro.net.node.Host`,
:class:`repro.overlay.skipnet.node.OverlayNode`,
:class:`repro.fuse.service.FuseService`,
:class:`repro.fuse.api.GroupLedger` — talks to exactly two objects: a
*kernel* (``sim``: ``now``, ``metrics``, ``rng``, ``call_*`` /
``schedule_*``) and a *network* (``send``, ``register_host``, ``faults``,
crash/disconnect wrappers).  This module names those contracts so a second
backend can bind the same protocol code to real sockets and a wall clock:

* :class:`ClockBase` — the time seam extracted from
  :mod:`repro.sim.clock`; the simulator's virtual :class:`~repro.sim.clock.Clock`
  and the asyncio backend's :class:`~repro.net.backends.wallclock.WallClock`
  both implement it.  Milliseconds everywhere.
* :class:`NetworkBackend` — the transport seam extracted from
  :mod:`repro.net.network`; :class:`repro.net.network.Network` (simulated
  topology + TCP model) and :class:`repro.net.backends.livenet.LiveNetwork`
  (asyncio UDP datagrams + ack/retry reliability) both implement it.
* retry/backoff arithmetic and parameter validation shared by
  :class:`repro.net.transport.TransportConfig` (simulated) and
  :class:`repro.net.backends.config.LiveTransportConfig` (wire), so the
  two channels cannot silently drift apart — the validation contract
  matches :meth:`repro.net.topology.Topology.add_link`'s (reject NaN,
  infinity, and non-positive values with a clear error).

This module must stay import-light (stdlib only): both
:mod:`repro.sim.clock` and :mod:`repro.net.transport` import it.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional


# ----------------------------------------------------------------------
# Shared parameter validation (the Topology.add_link contract)
# ----------------------------------------------------------------------
def validate_positive(value: float, what: str) -> float:
    """Reject NaN, infinity, and non-positive values with a clear error."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise TypeError(f"{what} must be a number, got {value!r}") from None
    if math.isnan(value):
        raise ValueError(f"{what} must not be NaN")
    if math.isinf(value):
        raise ValueError(f"{what} must be finite: {value}")
    if value <= 0.0:
        raise ValueError(f"{what} must be positive: {value}")
    return value


def validate_non_negative(value: float, what: str) -> float:
    """Reject NaN, infinity, and negative values with a clear error."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise TypeError(f"{what} must be a number, got {value!r}") from None
    if math.isnan(value):
        raise ValueError(f"{what} must not be NaN")
    if math.isinf(value):
        raise ValueError(f"{what} must be finite: {value}")
    if value < 0.0:
        raise ValueError(f"{what} must be non-negative: {value}")
    return value


def validate_fraction(value: float, what: str) -> float:
    """Reject NaN and values outside [0, 1) with a clear error."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise TypeError(f"{what} must be a number, got {value!r}") from None
    if math.isnan(value):
        raise ValueError(f"{what} must not be NaN")
    if not 0.0 <= value < 1.0:
        raise ValueError(f"{what} must be in [0, 1): {value}")
    return value


def validate_retry_count(value: int, what: str) -> int:
    """Reject non-integral or negative retry counts with a clear error."""
    if isinstance(value, bool) or not isinstance(value, int):
        try:
            as_int = int(value)
        except (TypeError, ValueError):
            raise TypeError(f"{what} must be an integer, got {value!r}") from None
        if as_int != value:
            raise TypeError(f"{what} must be an integer, got {value!r}")
        value = as_int
    if value < 0:
        raise ValueError(f"{what} must be non-negative")
    return value


def retry_schedule_ms(rto_initial_ms: float, rto_backoff: float, max_retries: int) -> List[float]:
    """Cumulative delay before each retransmission attempt.

    The arithmetic both channels share: attempt k (1-based) fires
    ``rto_initial * (backoff^0 + ... + backoff^(k-1))`` ms after the
    original transmission.
    """
    delays: List[float] = []
    rto = rto_initial_ms
    total = 0.0
    for _ in range(max_retries):
        total += rto
        delays.append(total)
        rto *= rto_backoff
    return delays


# ----------------------------------------------------------------------
# The Clock seam
# ----------------------------------------------------------------------
class ClockBase:
    """Monotonic clock measured in milliseconds.

    The simulated clock advances only when the kernel dispatches events;
    the wall clock advances with real time (scaled).  Consumers must not
    assume either — they read ``now`` and schedule through the kernel.
    """

    __slots__ = ()

    @property
    def now(self) -> float:
        """Current time in milliseconds."""
        raise NotImplementedError

    def seconds(self) -> float:
        """Current time expressed in seconds."""
        return self.now / 1000.0


# ----------------------------------------------------------------------
# The Network seam
# ----------------------------------------------------------------------
class NetworkBackend:
    """Message fabric contract that hosts and protocol layers rely on.

    Implementations provide, beyond the methods below, two attributes:

    * ``sim`` — the kernel (``now``, ``metrics``, ``rng``, ``call_*``);
    * ``faults`` — a :class:`repro.net.faults.FaultInjector` (or
      subclass) consulted on every delivery.

    Delivery semantics both backends guarantee: a sent message either
    reaches the destination host's handler exactly once, or — when the
    channel breaks (retries exhausted under loss, partition, crash, or
    disconnect) — ``on_fail(dst, message)`` runs on the sender.  Messages
    to a gray-failed destination are acknowledged by transport but never
    dispatched unless the message class is liveness-exempt
    (:attr:`repro.net.message.Message.is_liveness`).
    """

    __slots__ = ()

    def register_host(self, host) -> None:
        raise NotImplementedError

    def host(self, node_id):
        raise NotImplementedError

    def hosts(self):
        raise NotImplementedError

    def send(self, src, dst, message, on_fail: Optional[Callable] = None) -> None:
        raise NotImplementedError

    def crash_host(self, node_id) -> None:
        raise NotImplementedError

    def recover_host(self, node_id) -> None:
        raise NotImplementedError

    def disconnect_host(self, node_id) -> None:
        raise NotImplementedError

    def reconnect_host(self, node_id) -> None:
        raise NotImplementedError

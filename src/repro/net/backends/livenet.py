"""LiveNetwork: the message fabric over real asyncio UDP datagrams.

Same contract as the simulated :class:`repro.net.network.Network` (both
implement :class:`repro.net.backends.base.NetworkBackend`): hosts call
``send`` and either the destination's handler runs exactly once or
``on_fail`` fires after retries exhaust.  The reliability layer mirrors
the simulator's TCP model on top of datagrams — per-pair sequence
numbers, receiver acks, retransmission at exponentially backed-off
virtual RTOs, a broken "connection" after ``max_retries`` — so the same
``TransportConfig`` vocabulary tunes both backends.

Fault injection happens on the wire, at the codec boundary of the
*receiving* endpoint:

* partition / block / disconnect — ``faults.can_communicate(src, dst)``
  fails ⇒ the datagram is silently dropped *before* the ack, so the
  sender retries into the void and eventually breaks the connection,
  exactly like the simulator's lossy path;
* loss / burst loss — a uniform draw plus a lazily-created per-pair
  Gilbert-Elliott chain (:class:`LiveLossModel`), again pre-ack;
* gray failure — the frame is acked (transport succeeded) but
  non-liveness messages are dropped before dispatch, bumping the same
  lazy ``net.gray_drops`` counter as the sim;
* crash — :class:`LiveFaultInjector` closes the victim's UDP socket, so
  in-flight and future frames hit a dead port;
* latency — delivery is deferred by ``path_latency_ms`` scaled by
  ``faults.latency_factor`` (localhost is effectively instant, so the
  synthetic latency stands in for the simulated topology's paths).

Known deviations from the simulator (see docs/BACKENDS.md): no per-send
CPU-occupancy model (real serialization time replaces it), no TCP
connection-setup round trip, and acks are exempt from fault checks —
the simulator models a message's whole reliable exchange as one draw,
so applying faults to the data frame alone is what preserves parity.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Optional, Set, Tuple, TYPE_CHECKING

from repro.net.address import NodeId
from repro.net.backends import codec
from repro.net.backends.base import NetworkBackend
from repro.net.backends.config import LiveTransportConfig
from repro.net.faults import FaultInjector
from repro.net.message import Message
from repro.net.topology import GilbertElliott, _validate_probability
from repro.sim.metrics import Counter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.backends.asynckernel import AsyncioKernel
    from repro.net.node import Host

FailureCallback = Callable[[NodeId, Message], None]

_PairKey = Tuple[NodeId, NodeId]


class LiveFaultInjector(FaultInjector):
    """Fault state shared with the sim injector, plus socket side effects.

    All pairwise state (partitions, blocks, gray, latency factors) is
    inherited unchanged — the live network consults it at the receive
    boundary.  ``crash``/``recover`` additionally close and reopen the
    victim's UDP endpoint once bound to a :class:`LiveNetwork`, so
    scenario tracks that talk to ``world.net.faults`` directly get real
    socket-level crashes without knowing which backend they run on.
    """

    def __init__(self) -> None:
        super().__init__()
        self._network: Optional["LiveNetwork"] = None

    def bind(self, network: "LiveNetwork") -> None:
        self._network = network

    def crash(self, node: NodeId) -> None:
        super().crash(node)
        if self._network is not None:
            self._network._close_endpoint(node)

    def recover(self, node: NodeId) -> None:
        super().recover(node)
        if self._network is not None:
            self._network._reopen_endpoint(node)


class LiveLossModel:
    """Wire-side stand-in for the :class:`repro.net.topology.Topology` knobs
    scenario tracks touch: uniform loss and Gilbert-Elliott burst loss.

    There are no modeled links on localhost, so burst chains are created
    lazily per communicating (src, dst) pair — each pair gets its own
    chain state, the live analogue of per-link chains.
    """

    def __init__(self) -> None:
        self._uniform_loss = 0.0
        self._burst_params: Optional[Tuple[float, float, float, float]] = None
        self._chains: Dict[_PairKey, GilbertElliott] = {}

    def set_uniform_loss(self, loss: float, kinds=None) -> None:
        self._uniform_loss = _validate_probability(loss, "loss")

    def current_loss(self, src: NodeId, dst: NodeId) -> float:
        return self._uniform_loss

    def set_uniform_burst(
        self,
        p_g2b: float,
        p_b2g: float,
        loss_good: float = 0.0,
        loss_bad: float = 0.3,
        kinds=None,
    ) -> int:
        self._burst_params = (
            _validate_probability(p_g2b, "p_g2b"),
            _validate_probability(p_b2g, "p_b2g"),
            _validate_probability(loss_good, "loss_good"),
            _validate_probability(loss_bad, "loss_bad"),
        )
        self._chains.clear()
        return 0  # chains materialize lazily per pair

    def clear_burst(self) -> int:
        count = len(self._chains)
        self._burst_params = None
        self._chains.clear()
        return count

    @property
    def burst_link_count(self) -> int:
        return len(self._chains)

    def sample_burst(self, src: NodeId, dst: NodeId, rng) -> bool:
        params = self._burst_params
        if params is None:
            return False
        pair = (src, dst)
        chain = self._chains.get(pair)
        if chain is None:
            chain = self._chains[pair] = GilbertElliott(*params)
        return chain.sample(rng)


class _DedupeWindow:
    """Per-pair receiver dedupe: watermark + sparse out-of-order set."""

    __slots__ = ("watermark", "pending")

    def __init__(self) -> None:
        self.watermark = -1  # every seq <= watermark already delivered
        self.pending: Set[int] = set()

    def seen(self, seq: int) -> bool:
        return seq <= self.watermark or seq in self.pending

    def add(self, seq: int) -> None:
        self.pending.add(seq)
        while self.watermark + 1 in self.pending:
            self.watermark += 1
            self.pending.discard(self.watermark)


class _LivePending:
    """Retransmission state for one unacked data frame."""

    __slots__ = (
        "net", "src", "dst", "seq", "frame", "type_name", "on_fail",
        "src_incarnation", "attempt_index", "rto_ms", "timer", "done",
    )

    def __init__(
        self,
        net: "LiveNetwork",
        src: NodeId,
        dst: NodeId,
        seq: int,
        frame: bytes,
        type_name: str,
        on_fail: Optional[FailureCallback],
        src_incarnation: int,
    ) -> None:
        self.net = net
        self.src = src
        self.dst = dst
        self.seq = seq
        self.frame = frame
        self.type_name = type_name
        self.on_fail = on_fail
        self.src_incarnation = src_incarnation
        self.attempt_index = 0
        self.rto_ms = net.config.rto_initial_ms
        self.done = False
        self.timer = None

    def transmit(self) -> None:
        net = self.net
        net._ctr_transmissions.value += 1
        net._sendto(self.src, self.dst, self.frame)
        self.timer = net.sim.call_after(
            self.rto_ms, self._on_timeout, label=f"rto:{self.type_name}"
        )

    def acked(self) -> None:
        if self.done:
            return
        self.done = True
        if self.timer is not None:
            self.timer.cancel()
        net = self.net
        net._pending.pop((self.src, self.dst, self.seq), None)
        net._mark_connected(self.src, self.dst)

    def _on_timeout(self) -> None:
        if self.done:
            return
        net = self.net
        sender = net._hosts.get(self.src)
        if sender is None or not sender.alive or sender.incarnation != self.src_incarnation:
            self.done = True
            net._pending.pop((self.src, self.dst, self.seq), None)
            return
        if self.attempt_index < net.config.max_retries:
            self.attempt_index += 1
            self.rto_ms *= net.config.rto_backoff
            self.transmit()
            return
        # Retries exhausted: the connection breaks.
        self.done = True
        net._pending.pop((self.src, self.dst, self.seq), None)
        net._break_connection(self.src, self.dst)
        net._ctr_breaks.value += 1
        if self.on_fail is not None:
            on_fail = self.on_fail
            net.sim.schedule_after(
                self.rto_ms, lambda: self._report_failure(on_fail),
                label=f"brk:{self.type_name}",
            )

    def _report_failure(self, on_fail: FailureCallback) -> None:
        sender = self.net._hosts.get(self.src)
        if sender is not None and sender.alive and sender.incarnation == self.src_incarnation:
            on_fail(self.dst, self.frame_message())

    def frame_message(self) -> Message:
        # Decode the retained frame so the failure callback sees the same
        # message object shape a receiver would have.
        _, _, _, _, message = codec.decode_frame(self.frame)
        assert message is not None
        return message


class _UdpProtocol(asyncio.DatagramProtocol):
    def __init__(self, network: "LiveNetwork", node_id: NodeId) -> None:
        self.network = network
        self.node_id = node_id

    def datagram_received(self, data: bytes, addr) -> None:
        self.network._on_datagram(self.node_id, data)

    def error_received(self, exc) -> None:
        # ICMP port-unreachable from a crashed peer's closed socket:
        # exactly the silence the retry machinery is built for.
        pass


class LiveNetwork(NetworkBackend):
    """Message fabric over per-host UDP endpoints on 127.0.0.1."""

    def __init__(
        self,
        sim: "AsyncioKernel",
        config: Optional[LiveTransportConfig] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.sim = sim
        self.config = config or LiveTransportConfig()
        self.faults = faults or LiveFaultInjector()
        if isinstance(self.faults, LiveFaultInjector):
            self.faults.bind(self)
        self.loss_model = LiveLossModel()
        self._hosts: Dict[NodeId, "Host"] = {}
        self._transports: Dict[NodeId, asyncio.DatagramTransport] = {}
        self._addrs: Dict[NodeId, Tuple[str, int]] = {}
        self._connections: Set[_PairKey] = set()
        self._next_seq: Dict[_PairKey, int] = {}
        self._pending: Dict[Tuple[NodeId, NodeId, int], _LivePending] = {}
        self._dedupe: Dict[_PairKey, _DedupeWindow] = {}
        self._rng = sim.rng.stream("net.transport")
        metrics = sim.metrics
        self._ctr_messages = metrics.counter("net.messages")
        self._ctr_bytes = metrics.counter("net.bytes")
        self._ctr_deliveries = metrics.counter("net.deliveries")
        self._ctr_transmissions = metrics.counter("net.transmissions")
        self._ctr_breaks = metrics.counter("net.connection_breaks")
        self._msg_type_counters: Dict[str, Counter] = {}
        self._ctr_gray_drops: Optional[Counter] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Host registry and endpoints
    # ------------------------------------------------------------------
    def register_host(self, host: "Host") -> None:
        if host.node_id in self._hosts:
            raise ValueError(f"host {host.node_id} already registered")
        self._hosts[host.node_id] = host

    def host(self, node_id: NodeId) -> "Host":
        return self._hosts[node_id]

    def hosts(self) -> Dict[NodeId, "Host"]:
        return dict(self._hosts)

    async def open_endpoints(self) -> None:
        """Bind one UDP socket per registered host (setup phase)."""
        for node_id in self._hosts:
            if node_id not in self._transports:
                await self._open(node_id)

    async def _open(self, node_id: NodeId) -> None:
        transport, _ = await self.sim.loop.create_datagram_endpoint(
            lambda nid=node_id: _UdpProtocol(self, nid),
            local_addr=("127.0.0.1", 0),
        )
        self._transports[node_id] = transport
        self._addrs[node_id] = transport.get_extra_info("sockname")

    def _close_endpoint(self, node_id: NodeId) -> None:
        transport = self._transports.pop(node_id, None)
        self._addrs.pop(node_id, None)
        if transport is not None:
            transport.close()

    def _reopen_endpoint(self, node_id: NodeId) -> None:
        """Reopen a recovered host's socket (new ephemeral port).

        Runs as a loop task because tracks trigger recovery from inside
        timer callbacks; sends in the gap blackhole and are covered by
        the retransmission schedule.
        """
        if node_id in self._transports or node_id not in self._hosts:
            return
        self.sim.loop.create_task(self._open(node_id))

    # ------------------------------------------------------------------
    # Fault convenience wrappers (mirror the simulated Network)
    # ------------------------------------------------------------------
    def crash_host(self, node_id: NodeId) -> None:
        self.faults.crash(node_id)  # closes the endpoint via LiveFaultInjector
        self._close_endpoint(node_id)  # idempotent: direct injector not bound
        self._hosts[node_id].mark_crashed()
        self._purge_connections(node_id)

    def recover_host(self, node_id: NodeId) -> None:
        self.faults.recover(node_id)
        self._reopen_endpoint(node_id)  # idempotent
        self._hosts[node_id].mark_recovered()

    def disconnect_host(self, node_id: NodeId) -> None:
        self.faults.disconnect(node_id)
        self._purge_connections(node_id)

    def reconnect_host(self, node_id: NodeId) -> None:
        self.faults.reconnect(node_id)

    def _purge_connections(self, node_id: NodeId) -> None:
        self._connections = {pair for pair in self._connections if node_id not in pair}

    def has_connection(self, a: NodeId, b: NodeId) -> bool:
        return ((a, b) if a <= b else (b, a)) in self._connections

    def _mark_connected(self, a: NodeId, b: NodeId) -> None:
        self._connections.add((a, b) if a <= b else (b, a))

    def _break_connection(self, a: NodeId, b: NodeId) -> None:
        self._connections.discard((a, b) if a <= b else (b, a))

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        src: NodeId,
        dst: NodeId,
        message: Message,
        on_fail: Optional[FailureCallback] = None,
    ) -> None:
        if src == dst:
            raise ValueError("host cannot send a network message to itself")
        hosts = self._hosts
        sender = hosts.get(src)
        if sender is None or dst not in hosts:
            raise KeyError(f"unknown endpoint in send {src}->{dst}")
        if not sender.alive:
            return  # a dead process sends nothing

        type_name = type(message).__name__
        self._ctr_messages.value += 1
        type_counter = self._msg_type_counters.get(type_name)
        if type_counter is None:
            type_counter = self.sim.metrics.counter(f"net.msg.{type_name}")
            self._msg_type_counters[type_name] = type_counter
        type_counter.value += 1
        self._ctr_bytes.value += message.size_bytes

        # Serialization is the isolation boundary (the receiver always
        # materializes a fresh object, so copy_on_send needs no copy
        # here); the sender stamp rides the envelope's src field and is
        # applied by the codec at decode time, leaving the caller's
        # object untouched — same observable contract as the simulator's
        # stamp-on-copy.
        pair = (src, dst)
        seq = self._next_seq.get(pair, 0)
        self._next_seq[pair] = seq + 1
        frame = codec.encode_message(src, dst, seq, message)
        state = _LivePending(
            self, src, dst, seq, frame, type_name, on_fail, sender.incarnation
        )
        self._pending[(src, dst, seq)] = state
        state.transmit()

    def _sendto(self, src: NodeId, dst: NodeId, frame: bytes) -> None:
        transport = self._transports.get(src)
        if transport is None or transport.is_closing():
            return  # dead socket sends nothing
        addr = self._addrs.get(dst)
        if addr is None:
            return  # destination socket closed: packets blackhole
        transport.sendto(frame, addr)

    # ------------------------------------------------------------------
    # Receiving (the codec boundary — where wire faults act)
    # ------------------------------------------------------------------
    def _on_datagram(self, owner: NodeId, data: bytes) -> None:
        try:
            kind, src, dst, seq, message = codec.decode_frame(data)
        except codec.CodecError:
            return  # wire garbage: drop

        if kind == "a":
            # Ack for our (dst -> envelope d) pending frame.
            state = self._pending.get((dst, src, seq))
            if state is not None:
                state.acked()
            return

        if dst != owner or message is None:
            return  # misrouted or malformed: drop

        receiver = self._hosts.get(dst)
        if receiver is None or dst not in self._transports:
            return

        faults = self.faults
        if not faults.can_communicate(src, dst):
            return  # partition/block/disconnect: silent pre-ack drop
        loss = self.loss_model.current_loss(src, dst)
        if loss > 0.0 and self._rng.random() < loss:
            return
        if self.loss_model.sample_burst(src, dst, self._rng):
            return

        # Transport accepts the frame: ack it (even for duplicates —
        # the first ack may have been lost).
        self._sendto(dst, src, codec.encode_ack(dst, src, seq))

        window = self._dedupe.get((src, dst))
        if window is None:
            window = self._dedupe[(src, dst)] = _DedupeWindow()
        if window.seen(seq):
            return
        window.add(seq)

        gray = faults._gray
        if gray and dst in gray and not message.is_liveness:
            ctr = self._ctr_gray_drops
            if ctr is None:
                ctr = self._ctr_gray_drops = self.sim.metrics.counter("net.gray_drops")
            ctr.value += 1
            return

        # Synthetic path latency stands in for the simulated topology.
        latency = self.config.path_latency_ms
        if faults._latency_factors:
            latency *= faults.latency_factor(src, dst)
        jitter = self._rng.uniform(0.0, self.config.jitter_fraction) * latency
        self.sim.schedule_after(
            latency + jitter,
            lambda: self._dispatch(dst, message),
            label=f"rx:{type(message).__name__}",
        )

    def _dispatch(self, dst: NodeId, message: Message) -> None:
        receiver = self._hosts.get(dst)
        if receiver is None or not receiver.alive:
            return
        self._ctr_deliveries.value += 1
        receiver.deliver(message)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for state in list(self._pending.values()):
            state.acked()  # cancels timers
        self._pending.clear()
        for node_id in list(self._transports):
            self._close_endpoint(node_id)

    def __repr__(self) -> str:
        return (
            f"LiveNetwork(hosts={len(self._hosts)}, "
            f"endpoints={len(self._transports)}, pending={len(self._pending)})"
        )

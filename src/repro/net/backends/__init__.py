"""Transport/clock backends: the seam between protocol code and the world.

Two backends implement the contracts in :mod:`repro.net.backends.base`:

* the **simulated** backend — :class:`repro.sim.clock.Clock` +
  :class:`repro.net.network.Network` over a modeled topology (the
  default everywhere);
* the **live** backend — :class:`~repro.net.backends.wallclock.WallClock` +
  :class:`~repro.net.backends.livenet.LiveNetwork` over real asyncio UDP
  sockets, assembled by :class:`~repro.net.backends.liveworld.LiveWorld`.

Heavy live-backend symbols are exported lazily (PEP 562): ``base`` and
``wallclock`` are stdlib-only and safe for :mod:`repro.sim.clock` /
:mod:`repro.net.transport` to import, while ``AsyncioKernel`` /
``LiveNetwork`` / ``LiveWorld`` pull in the metrics and protocol stack —
importing them eagerly here would close an import cycle through
``sim.clock``.
"""

from __future__ import annotations

from repro.net.backends.base import (
    ClockBase,
    NetworkBackend,
    retry_schedule_ms,
    validate_fraction,
    validate_non_negative,
    validate_positive,
    validate_retry_count,
)
from repro.net.backends.wallclock import WallClock, wall_seconds

_LAZY = {
    "AsyncioKernel": ("repro.net.backends.asynckernel", "AsyncioKernel"),
    "LiveTimerHandle": ("repro.net.backends.asynckernel", "LiveTimerHandle"),
    "LiveTransportConfig": ("repro.net.backends.config", "LiveTransportConfig"),
    "LiveNetwork": ("repro.net.backends.livenet", "LiveNetwork"),
    "LiveFaultInjector": ("repro.net.backends.livenet", "LiveFaultInjector"),
    "LiveLossModel": ("repro.net.backends.livenet", "LiveLossModel"),
    "LiveWorld": ("repro.net.backends.liveworld", "LiveWorld"),
}

__all__ = [
    "ClockBase",
    "NetworkBackend",
    "WallClock",
    "wall_seconds",
    "retry_schedule_ms",
    "validate_positive",
    "validate_non_negative",
    "validate_fraction",
    "validate_retry_count",
    *_LAZY,
]


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value  # cache for subsequent lookups
    return value

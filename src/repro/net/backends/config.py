"""Wire transport configuration for the asyncio backend.

Same reliability vocabulary as the simulated
:class:`repro.net.transport.TransportConfig` — initial RTO, exponential
backoff, bounded retries, jitter — plus the knobs that only exist once
there is a real wire: a synthetic one-way path latency (localhost UDP is
effectively instant, so injected latency carries the topology's role) and
the time-compression factor handed to :class:`~repro.net.backends.wallclock.WallClock`.

All parameters are validated with the shared helpers in
:mod:`repro.net.backends.base`, which follow the
:meth:`repro.net.topology.Topology.add_link` contract: NaN, infinity,
and out-of-range values are rejected at construction with a clear error,
never discovered mid-run as a hung retry loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.net.backends.base import (
    retry_schedule_ms,
    validate_fraction,
    validate_non_negative,
    validate_positive,
    validate_retry_count,
)


@dataclass
class LiveTransportConfig:
    """Knobs for the asyncio UDP channel.

    Times are *virtual* milliseconds (converted to wall delays by the
    kernel's clock), so a config tuned against the simulator reads the
    same on the wire.
    """

    # Reliability (mirrors the simulated TransportConfig defaults).
    rto_initial_ms: float = 200.0
    rto_backoff: float = 2.0
    max_retries: int = 4
    jitter_fraction: float = 0.02

    # Wire-only: synthetic one-way latency injected on delivery, standing
    # in for the simulated topology's path latency.
    path_latency_ms: float = 30.0

    # Wall seconds per virtual second (1.0 = real time).
    time_scale: float = 1.0

    def __post_init__(self) -> None:
        self.rto_initial_ms = validate_positive(self.rto_initial_ms, "rto_initial_ms")
        self.rto_backoff = validate_positive(self.rto_backoff, "rto_backoff")
        if self.rto_backoff < 1.0:
            raise ValueError(f"rto_backoff must be >= 1: {self.rto_backoff}")
        self.max_retries = validate_retry_count(self.max_retries, "max_retries")
        self.jitter_fraction = validate_fraction(self.jitter_fraction, "jitter_fraction")
        self.path_latency_ms = validate_non_negative(self.path_latency_ms, "path_latency_ms")
        self.time_scale = validate_positive(self.time_scale, "time_scale")

    def retry_schedule_ms(self) -> List[float]:
        """Cumulative virtual-ms delay before each retransmission."""
        return retry_schedule_ms(self.rto_initial_ms, self.rto_backoff, self.max_retries)

    def worst_case_delivery_extra_ms(self) -> float:
        """Upper bound on added delay if every retry is needed."""
        schedule = self.retry_schedule_ms()
        return schedule[-1] if schedule else 0.0

"""LiveWorld: a complete FUSE deployment over real asyncio UDP sockets.

The live twin of :class:`repro.world.FuseWorld` — same protocol objects
(:class:`~repro.net.node.Host`, :class:`~repro.overlay.skipnet.node.OverlayNode`,
:class:`~repro.fuse.service.FuseService`, one shared
:class:`~repro.fuse.api.GroupLedger`), bound to an
:class:`~repro.net.backends.asynckernel.AsyncioKernel` and a
:class:`~repro.net.backends.livenet.LiveNetwork` instead of the simulator.
N peers run in one process, each with its own UDP endpoint on 127.0.0.1,
joined through the same SkipNet introducer logic; every message crosses a
real socket.

Naming, node ids (0..n-1), fuse-id serials, and the seeded RNG streams
all match the simulated world, so a scenario run on both backends with
the same seed produces comparable ledgers keyed by identical fuse ids —
that is what the parity harness in :mod:`repro.scenarios.parity` leans on.

``time_scale`` compresses wall time (0.02 ⇒ a 60 s virtual ping period
takes 1.2 s of wall clock), which is how the soak and CI runs keep
multi-virtual-minute scenarios inside seconds of real time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.fuse.api import FuseGroup, GroupLedger, GroupStatus
from repro.fuse.config import FuseConfig
from repro.fuse.ids import FuseId
from repro.fuse.service import FuseService
from repro.net.address import NodeId
from repro.net.backends.asynckernel import AsyncioKernel
from repro.net.backends.config import LiveTransportConfig
from repro.net.backends.livenet import LiveNetwork
from repro.net.node import Host
from repro.overlay.skipnet.config import OverlayConfig
from repro.overlay.skipnet.node import OverlayNode
from repro.overlay.skipnet.overlay import SkipNetOverlay

MINUTE_MS = 60_000.0


def _raise_fd_limit(n_sockets: int) -> None:
    """Best-effort bump of RLIMIT_NOFILE for large peer counts."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return
    needed = n_sockets * 2 + 256
    try:
        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < needed:
            resource.setrlimit(resource.RLIMIT_NOFILE, (min(needed, hard), hard))
    except (ValueError, OSError):  # pragma: no cover - clamped by the OS
        pass


class LiveWorld:
    """A fully wired FUSE deployment running over localhost UDP."""

    def __init__(
        self,
        n_nodes: int = 64,
        seed: int = 0,
        time_scale: float = 0.02,
        overlay_config: Optional[OverlayConfig] = None,
        fuse_config: Optional[FuseConfig] = None,
        transport: Optional[LiveTransportConfig] = None,
        trace: bool = False,  # accepted for FuseWorld signature parity
    ) -> None:
        if transport is None:
            transport = LiveTransportConfig(time_scale=time_scale)
        _raise_fd_limit(n_nodes)
        self.sim = AsyncioKernel(seed=seed, time_scale=transport.time_scale)
        self.net = LiveNetwork(self.sim, config=transport)
        self.topology = self.net.loss_model  # the wire's loss/burst knobs
        self.overlay = SkipNetOverlay(self.sim, self.net, overlay_config)
        self.fuse_config = fuse_config or FuseConfig()
        self.ledger = GroupLedger(self.sim, self.net.faults)

        self.node_ids: List[NodeId] = list(range(n_nodes))
        self.hosts: Dict[NodeId, Host] = {}
        self.overlay_nodes: Dict[NodeId, OverlayNode] = {}
        self.fuse_services: Dict[NodeId, FuseService] = {}
        for node_id in self.node_ids:
            host = Host(self.net, node_id, name=f"node-{node_id:05d}")
            overlay_node = self.overlay.create_node(host)
            self.hosts[node_id] = host
            self.overlay_nodes[node_id] = overlay_node
            self.fuse_services[node_id] = FuseService(
                overlay_node, self.fuse_config, ledger=self.ledger
            )
        self._closed = False

    # ------------------------------------------------------------------
    # Bootstrap and clock control (mirrors FuseWorld)
    # ------------------------------------------------------------------
    CLASSIC_BOOTSTRAP_MAX_NODES = 400
    AUTO_JOIN_WINDOW_MS = 30_000.0
    AUTO_JOIN_SPACING_MIN_MS = 2.0

    def default_join_spacing_ms(self) -> float:
        n = len(self.node_ids)
        if n <= self.CLASSIC_BOOTSTRAP_MAX_NODES:
            return 200.0
        return max(self.AUTO_JOIN_SPACING_MIN_MS, self.AUTO_JOIN_WINDOW_MS / n)

    #: Peers joining concurrently during bootstrap.  On the simulator a
    #: join costs zero wall time, so any spacing works; on real sockets
    #: each join burns CPU in the shared event loop, and a 1,000-node
    #: flash crowd starves its own retransmit timers into connection
    #: breaks.  Waves bound the in-flight joins to something the loop
    #: can drain regardless of ``time_scale``.
    JOIN_WAVE_SIZE = 32

    def bootstrap(
        self,
        join_spacing_ms: Optional[float] = None,
        settle_ms: float = 5_000.0,
    ) -> None:
        """Open every UDP endpoint, join all nodes in waves, settle."""
        self.sim.run_coroutine(self.net.open_endpoints())
        if join_spacing_ms is None:
            join_spacing_ms = self.default_join_spacing_ms()
        if join_spacing_ms < 200.0:
            self.overlay.first_sweep_floor_ms = len(self.node_ids) * join_spacing_ms
        joined_target = 0
        for base in range(0, len(self.node_ids), self.JOIN_WAVE_SIZE):
            wave = self.node_ids[base : base + self.JOIN_WAVE_SIZE]
            start = self.sim.now
            for index, node_id in enumerate(wave):
                node = self.overlay_nodes[node_id]
                self.sim.call_at(start + index * join_spacing_ms, node.join)
            self.sim.run_until_time(start + len(wave) * join_spacing_ms)
            joined_target += len(wave)
            # Wall clocks are not obedient: under heavy time compression
            # the CPU cost of real joins eats any fixed virtual budget,
            # so the wait is progress-based — each window must grow the
            # membership, and stalled nodes are re-joined (a join RPC
            # that lost its retransmit race surfaces as a failed join,
            # exactly like a dropped SYN would).
            target = joined_target
            stalled_windows = 0
            while self.overlay.member_count < target and stalled_windows < 3:
                before = self.overlay.member_count
                self.sim.run_until(
                    lambda: self.overlay.member_count >= target,
                    timeout_ms=120_000.0,
                )
                if self.overlay.member_count > before:
                    stalled_windows = 0
                    continue
                stalled_windows += 1
                for node_id in wave:
                    node = self.overlay_nodes[node_id]
                    if not node.joined:
                        node.join()
        self.sim.run_until_time(self.sim.now + settle_ms)

    def run_for(self, duration_ms: float) -> None:
        self.sim.run_for(duration_ms)

    def run_for_minutes(self, minutes: float) -> None:
        self.sim.run_for(minutes * MINUTE_MS)

    @property
    def now(self) -> float:
        return self.sim.now

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def fuse(self, node_id: NodeId) -> FuseService:
        return self.fuse_services[node_id]

    def host(self, node_id: NodeId) -> Host:
        return self.hosts[node_id]

    def overlay_node(self, node_id: NodeId) -> OverlayNode:
        return self.overlay_nodes[node_id]

    def alive_node_ids(self) -> List[NodeId]:
        return [nid for nid in self.node_ids if self.hosts[nid].alive]

    # ------------------------------------------------------------------
    # Group creation conveniences
    # ------------------------------------------------------------------
    def create_group(self, root: NodeId, members: Sequence[NodeId]) -> FuseGroup:
        return self.fuse(root).create_group(members)

    def create_group_sync(
        self,
        root: NodeId,
        members: Sequence[NodeId],
        max_wait_ms: float = 120_000.0,
    ) -> Tuple[Optional[FuseId], str, float]:
        """Create a group and drive the loop until creation completes."""
        outcome: Dict[str, object] = {}
        started = self.sim.now

        def live(group: FuseGroup) -> None:
            outcome["fuse_id"] = group.fuse_id
            outcome["status"] = "ok"
            outcome["latency"] = self.sim.now - started

        def notified(group: FuseGroup, _reason) -> None:
            if group.status is not GroupStatus.FAILED_CREATE or "status" in outcome:
                return
            outcome["fuse_id"] = None
            outcome["status"] = group.create_failure_reason or "create-failed"
            outcome["latency"] = self.sim.now - started

        self.create_group(root, members).on_live(live).on_notified(notified)
        self.sim.run_until(lambda: "status" in outcome, timeout_ms=max_wait_ms)
        if "status" not in outcome:
            return None, "no-completion", self.sim.now - started
        return (
            outcome.get("fuse_id"),  # type: ignore[return-value]
            str(outcome["status"]),
            float(outcome["latency"]),  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------
    # Fault conveniences
    # ------------------------------------------------------------------
    def crash(self, node_id: NodeId) -> None:
        self.net.crash_host(node_id)

    def disconnect(self, node_id: NodeId) -> None:
        self.net.disconnect_host(node_id)

    def restart(self, node_id: NodeId) -> None:
        """Recover a crashed node (fresh socket) and rejoin the overlay."""
        self.net.recover_host(node_id)
        node = self.overlay_nodes[node_id]
        if not node.joined:
            node.join()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.net.close()
        self.sim.close()

    def __enter__(self) -> "LiveWorld":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"LiveWorld(nodes={len(self.node_ids)}, t={self.sim.now / 1000.0:.1f}s, "
            f"members={self.overlay.member_count})"
        )

"""Asyncio kernel: the simulator surface bound to a real event loop.

:class:`AsyncioKernel` duck-types the slice of
:class:`repro.sim.kernel.Simulator` that hosts and protocol layers use —
``now``, ``metrics``, ``rng``, ``trace``, ``lane_plane``,
``call_at``/``call_after``/``call_soon`` (returning cancellable handles)
and their fire-and-forget ``schedule_*`` twins — so the entire FUSE stack
runs unchanged with wall-clock timers instead of a virtual event heap.

All scheduling is in *virtual milliseconds* against the kernel's
:class:`~repro.net.backends.wallclock.WallClock`; the kernel converts to
wall delays with the clock's ``time_scale``.  One deliberate deviation
from the simulator (documented in docs/BACKENDS.md): ``call_at`` with a
time already in the past *clamps to now* instead of raising — on a wall
clock, "the past" is any instant the caller spent computing, so raising
would make every absolute-time schedule a race.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

from repro.net.backends.wallclock import WallClock
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import RngStreams


class LiveTimerHandle:
    """Cancellable, reschedulable timer over ``loop.call_later``.

    API-compatible with :class:`repro.sim.events.TimerHandle`: ``when``
    (virtual ms), ``active``, ``cancel()``, ``reschedule_at/after``.
    """

    __slots__ = ("_kernel", "_callback", "_label", "_handle", "_fired", "when")

    def __init__(self, kernel: "AsyncioKernel", when: float, callback: Callable[[], Any], label: str) -> None:
        self._kernel = kernel
        self._callback = callback
        self._label = label
        self._fired = False
        self.when = when
        self._handle = kernel._schedule(when, self._fire)

    def _fire(self) -> None:
        self._fired = True
        self._callback()

    @property
    def active(self) -> bool:
        return not self._fired and not self._handle.cancelled()

    def cancel(self) -> None:
        self._handle.cancel()

    def reschedule_at(self, when: float) -> bool:
        """Move a still-pending timer to virtual time ``when``."""
        if not self.active:
            return False
        self._handle.cancel()
        self.when = when
        self._handle = self._kernel._schedule(when, self._fire)
        return True

    def reschedule_after(self, delay: float) -> bool:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.reschedule_at(self._kernel.now + delay)

    def __repr__(self) -> str:
        state = "active" if self.active else "inert"
        return f"LiveTimerHandle(when={self.when:.3f}, label={self._label!r}, {state})"


class AsyncioKernel:
    """Wall-clock kernel driving protocol timers through an asyncio loop.

    The loop is owned, not shared: the kernel creates a fresh event loop
    and drives it synchronously from :meth:`run_for` / :meth:`run_until`,
    mirroring how tests and scenarios drive ``Simulator.run_for``.  No
    threads are involved — every protocol callback executes inside the
    loop between those calls.
    """

    def __init__(self, seed: int = 0, time_scale: float = 1.0) -> None:
        self.loop = asyncio.new_event_loop()
        self.clock = WallClock(time_scale=time_scale, time_fn=self.loop.time)
        self.rng = RngStreams(seed)
        self.metrics = MetricsRegistry(self.clock)
        self.trace = None
        self.lane_plane = None
        self._dispatched = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Scheduling (the Simulator surface)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self.clock.now

    def _schedule(self, when: float, callback: Callable[[], Any]) -> asyncio.TimerHandle:
        delay_ms = when - self.clock.now
        if delay_ms < 0.0:
            delay_ms = 0.0  # clamp: wall time has no "not yet scheduled past"

        def dispatch() -> None:
            self._dispatched += 1
            callback()

        return self.loop.call_later(self.clock.wall_delay_s(delay_ms), dispatch)

    def call_at(self, when: float, callback: Callable[[], Any], label: str = "") -> LiveTimerHandle:
        return LiveTimerHandle(self, when, callback, label)

    def call_after(self, delay: float, callback: Callable[[], Any], label: str = "") -> LiveTimerHandle:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return LiveTimerHandle(self, self.clock.now + delay, callback, label)

    def call_soon(self, callback: Callable[[], Any], label: str = "") -> LiveTimerHandle:
        return LiveTimerHandle(self, self.clock.now, callback, label)

    def schedule_at(self, when: float, callback: Callable[[], Any], label: str = "") -> None:
        self._schedule(when, callback)

    def schedule_after(self, delay: float, callback: Callable[[], Any], label: str = "") -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._schedule(self.clock.now + delay, callback)

    def schedule_soon(self, callback: Callable[[], Any], label: str = "") -> None:
        self._schedule(self.clock.now, callback)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_for(self, duration_ms: float) -> None:
        """Drive the loop for ``duration_ms`` of virtual time."""
        self.run_until_time(self.clock.now + duration_ms)

    def run_until_time(self, target_ms: float) -> None:
        """Drive the loop until virtual time reaches ``target_ms``."""
        while True:
            remaining_ms = target_ms - self.clock.now
            if remaining_ms <= 0.0:
                return
            self.loop.run_until_complete(
                asyncio.sleep(self.clock.wall_delay_s(remaining_ms))
            )

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout_ms: float,
        poll_ms: float = 20.0,
    ) -> bool:
        """Drive the loop until ``predicate()`` holds or ``timeout_ms``
        of virtual time elapses.  Returns whether the predicate held —
        the live twin of the ``while ...: sim.step()`` pattern."""
        deadline = self.clock.now + timeout_ms
        while not predicate():
            if self.clock.now >= deadline:
                return False
            step = min(poll_ms, max(deadline - self.clock.now, 0.1))
            self.loop.run_until_complete(asyncio.sleep(self.clock.wall_delay_s(step)))
        return True

    def run_coroutine(self, coro) -> Any:
        """Run one coroutine to completion on the owned loop (setup only —
        never call from inside a loop callback)."""
        return self.loop.run_until_complete(coro)

    @property
    def events_dispatched(self) -> int:
        return self._dispatched

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            pending = asyncio.all_tasks(self.loop)
            for task in pending:
                task.cancel()
            if pending:
                self.loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
        finally:
            self.loop.close()

    def __repr__(self) -> str:
        return (
            f"AsyncioKernel(now={self.clock.now:.1f}ms, "
            f"time_scale={self.clock.time_scale}, dispatched={self._dispatched})"
        )

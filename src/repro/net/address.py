"""Node addressing.

Hosts (the machines protocols run on) are identified by small integers.
Routers live in a separate namespace inside :class:`repro.net.topology.Topology`
and never appear in protocol messages, mirroring how the paper's overlay
nodes address each other by node identity while ModelNet routers stay
invisible to the application.
"""

NodeId = int
"""Identifier of a host in the simulated network."""


def node_name(node_id: NodeId) -> str:
    """Stable human-readable name for a host, used in traces and tests."""
    return f"node-{node_id}"

"""TCP-flavoured transport model.

The paper routes *all* FUSE and overlay messages over TCP with a cache of
recently used connections (§6.1, §7.3-7.4).  Three consequences show up in
its evaluation, and this model reproduces each:

1. **First-contact penalty** (Fig 6): the first message between a pair of
   hosts pays a connection-establishment round trip; later messages ride
   the cached connection.
2. **Loss masking** (Fig 12, low loss): per-segment drops are repaired by
   retransmission with exponential backoff, so moderate route loss only
   adds delay.
3. **Socket breaks** (Fig 12, high loss): when ``max_retries`` successive
   transmissions of one segment are lost, the connection breaks, the
   sender's failure callback fires, and the endpoints must reconnect —
   FUSE interprets this as "the node at the other end is unavailable"
   (§6.1).

Bandwidth is not modeled as link capacity (matching the paper's
simulator), but two adversarial extensions stress the same retransmission
machinery: per-link :class:`repro.net.topology.GilbertElliott` burst
models make segment drops *correlated* — a bad-state link eats attempt
after attempt of the same segment, breaking sockets at average loss rates
Fig 12's memoryless analysis would mask — and node-scoped
bandwidth-contention windows (:meth:`repro.net.faults.FaultInjector.
contend_bandwidth`) multiply ``send_overhead_ms``, backing up the
sender's serialization queue.  Per-message CPU/serialization overhead
*is* modeled, because the paper measured it (2.8 ms per send plus 1.1 ms
co-location overhead) and attributes the Fig 8 latency rise at group
sizes 16-32 to serial sends at the root.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.backends.base import (
    retry_schedule_ms,
    validate_fraction,
    validate_non_negative,
    validate_positive,
    validate_retry_count,
)


@dataclass
class TransportConfig:
    """Timing and retry knobs for the TCP-like channel."""

    send_overhead_ms: float = 2.8
    """CPU time to serialize and hand one message to the network (paper:
    2.8 ms base overhead including XML serialization)."""

    recv_overhead_ms: float = 1.1
    """Per-message receive-side overhead (paper: ~1.1 ms when running 10
    virtual nodes per machine)."""

    connection_setup_rtts: float = 1.0
    """Extra round trips to establish a TCP connection before the first
    byte of data (SYN / SYN-ACK)."""

    rto_initial_ms: float = 200.0
    """Initial retransmission timeout; doubles on every loss."""

    rto_backoff: float = 2.0

    max_retries: int = 4
    """Retransmission attempts before the connection breaks.  Calibrated
    so that compound route loss ~6 % is fully masked while ~20 % route
    loss breaks sockets at a noticeable rate (the Fig 12 regime)."""

    jitter_fraction: float = 0.02
    """Uniform latency jitter applied to each traversal, as a fraction of
    the route latency (queueing noise)."""

    def __post_init__(self) -> None:
        # Shared validation contract with the live backend's
        # LiveTransportConfig (repro.net.backends.base): NaN, infinity,
        # and out-of-range values all fail at construction.
        self.send_overhead_ms = validate_non_negative(self.send_overhead_ms, "send_overhead_ms")
        self.recv_overhead_ms = validate_non_negative(self.recv_overhead_ms, "recv_overhead_ms")
        self.connection_setup_rtts = validate_non_negative(
            self.connection_setup_rtts, "connection_setup_rtts"
        )
        self.max_retries = validate_retry_count(self.max_retries, "max_retries")
        self.rto_initial_ms = validate_positive(self.rto_initial_ms, "rto_initial_ms")
        self.rto_backoff = validate_positive(self.rto_backoff, "rto_backoff")
        if self.rto_backoff < 1.0:
            raise ValueError("rto_backoff must be >= 1")
        self.jitter_fraction = validate_fraction(self.jitter_fraction, "jitter_fraction")

    def retry_schedule_ms(self) -> list:
        """Cumulative delay before each retransmission attempt."""
        return retry_schedule_ms(self.rto_initial_ms, self.rto_backoff, self.max_retries)

    def worst_case_delivery_extra_ms(self) -> float:
        """Upper bound on retransmission-induced extra delay."""
        schedule = self.retry_schedule_ms()
        return schedule[-1] if schedule else 0.0

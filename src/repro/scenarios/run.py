"""Command-line scenario runner.

Run any built-in scenario by name, or any TOML/JSON spec file::

    python -m repro.scenarios.run --list
    python -m repro.scenarios.run steady
    python -m repro.scenarios.run partition-heal --quick --jobs 2
    python -m repro.scenarios.run paper-fig9 --seeds 4,5,6 --jobs 4 --json
    python -m repro.scenarios.run examples/scenario_creeping_loss.toml --out out.json

Scenarios execute through the shared trial engine
(:mod:`repro.scenarios.runner` -> :mod:`repro.engine`): ``--seeds``
replicates the scenario over base seeds, ``--jobs`` fans replicas across
processes with seed-for-seed-identical aggregate metrics, and
``--json``/``--out`` archive per-trial measurements.

**Sweep grids** map a whole response surface in one invocation: each
``--grid axis=v1,v2,...`` adds an axis (``n_nodes`` or
``tracks.<i>.<field>``; seeds replicate via ``--seeds``, not a grid
axis), the cartesian product × ``--seeds`` becomes
independent shards fanned over ``--jobs`` processes, and ``--out``
archives one JSON line per shard *incrementally* as shards complete (in
spec order — the file is byte-identical for any ``--jobs`` value and
nothing accumulates in memory)::

    python -m repro.scenarios.run steady --grid n_nodes=400,2000 \\
        --grid tracks.0.n_groups=12,48 --jobs 4 --out sweep.jsonl

**Property checking**: a scenario's ``[expect]`` declarations (built-ins
all have them; specs via the ``[expect]`` table) are evaluated against
every trial's measurements and any violation makes the run exit
non-zero — skip with ``--no-expect``.  Reference: ``docs/API.md``.

The full DSL reference lives in ``docs/SCENARIOS.md``; the scaling model
behind large sweeps lives in ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.net.backends.wallclock import wall_seconds
from repro.scenarios.builtin import BUILTIN, catalogue
from repro.scenarios.expect import evaluate_expectations
from repro.scenarios.runner import apply_overrides, run_scenario, run_scenario_sweep
from repro.scenarios.spec import SpecError, load
from repro.scenarios.timeline import Scenario, execute_parallel


def _parse_seeds(text: Optional[str]) -> Optional[List[int]]:
    if not text:
        return None
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise SystemExit(f"--seeds expects comma-separated integers: {exc}")


def _parse_grid_value(text: str) -> Any:
    """int -> float -> bare string, in that order."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    if text in ("true", "false"):
        return text == "true"
    return text


def _parse_grid(entries: Sequence[str]) -> Dict[str, List[Any]]:
    grid: Dict[str, List[Any]] = {}
    for entry in entries:
        axis, sep, values = entry.partition("=")
        if not sep or not axis or not values:
            raise SystemExit(
                f"--grid expects axis=v1,v2,... (got {entry!r})"
            )
        if axis in grid:
            raise SystemExit(f"--grid axis {axis!r} given twice")
        grid[axis] = [
            _parse_grid_value(part) for part in values.split(",") if part.strip()
        ]
        if not grid[axis]:
            raise SystemExit(f"--grid axis {axis!r} has no values")
    return grid


def _resolve(target: str, quick: bool) -> Scenario:
    factory = BUILTIN.get(target)
    if factory is not None:
        return factory(quick)
    path = pathlib.Path(target)
    if path.suffix in (".toml", ".json"):
        if not path.exists():
            raise SystemExit(f"spec file not found: {path}")
        try:
            return load(path)
        except SpecError as exc:
            raise SystemExit(f"bad scenario spec {path}: {exc}")
    raise SystemExit(
        f"unknown scenario {target!r} — run with --list, or pass a "
        ".toml/.json spec file"
    )


def _list_text() -> str:
    rows = catalogue()
    width = max(len(name) for name, _desc in rows)
    lines = [f"{len(rows)} built-in scenarios:", ""]
    for name, desc in rows:
        lines.append(f"  {name:<{width}}  {desc}")
    lines.append("")
    lines.append("Any .toml/.json spec file is also accepted (docs/SCENARIOS.md).")
    return "\n".join(lines)


def _check_expectations(scenario: Scenario, trial, args, violations: List[str]) -> None:
    """Evaluate the scenario's [expect] block against one trial."""
    if args.no_expect or not scenario.expect:
        return
    label = f"seed={trial.spec.base_seed}"
    if trial.spec.params:
        label += f" params={dict(trial.spec.params)}"
    for outcome in evaluate_expectations(scenario.expect, trial.measurements):
        if not outcome.ok:
            violations.append(f"{label}: {outcome.violation}")


def _report_expectations(scenario: Scenario, violations: List[str], args) -> int:
    """Print the property-check verdict; non-zero exit on violation."""
    if args.no_expect or not scenario.expect:
        return 0
    # With --json, stdout carries only the machine-readable results.
    stream = sys.stderr if args.json else sys.stdout
    declared = ", ".join(str(e) for e in scenario.expect)
    if not violations:
        print(f"[expect] PASS: {declared}", file=stream)
        return 0
    print(f"[expect] FAIL ({len(violations)} violation(s)): {declared}", file=stream)
    for line in violations:
        print(f"[expect]   {line}", file=stream)
    return 1


def _run_sweep(scenario: Scenario, args) -> int:
    """Sharded sweep: stream one JSON line per completed shard to --out.

    The archive lines carry no timing, so the file is byte-identical for
    any ``--jobs`` value; shards are never accumulated in memory.
    """
    grid = _parse_grid(args.grid)
    # Validate every axis against the scenario *before* touching --out:
    # a typo'd axis must fail cleanly, not truncate an existing archive.
    try:
        apply_overrides(scenario, {axis: values[0] for axis, values in grid.items()})
    except ValueError as exc:
        raise SystemExit(f"bad --grid axis: {exc}")
    out_path = pathlib.Path(args.out) if args.out else None
    if out_path is not None and out_path.parent != pathlib.Path(""):
        out_path.parent.mkdir(parents=True, exist_ok=True)
    out_file = out_path.open("w") if out_path is not None else None

    totals = {"trials": 0, "notifications_delivered": 0.0, "spurious_groups": 0.0}
    violations: List[str] = []
    started = wall_seconds()

    def sink(trial) -> None:
        totals["trials"] += 1
        _check_expectations(scenario, trial, args, violations)
        m = trial.measurements
        totals["notifications_delivered"] += m.get("notifications_delivered", 0)
        totals["spurious_groups"] += m.get("spurious_groups", 0)
        line = json.dumps(trial.to_json_dict(include_timing=False), sort_keys=True)
        if out_file is not None:
            out_file.write(line + "\n")
            out_file.flush()
        if args.json:
            # --json streams the same deterministic shard lines to stdout.
            print(line, flush=True)
        print(
            f"[shard {trial.spec.index}] params={dict(trial.spec.params)} "
            f"seed={trial.spec.base_seed} "
            f"msgs/s={m.get('msgs_per_sec', 0.0):.1f} "
            f"({trial.wall_seconds:.1f}s)",
            file=sys.stderr,
        )

    try:
        run_scenario_sweep(
            scenario,
            grid,
            jobs=max(1, args.jobs),
            seeds=_parse_seeds(args.seeds),
            on_result=sink,
            keep_results=False,
        )
    finally:
        if out_file is not None:
            out_file.close()
    elapsed = wall_seconds() - started
    where = f" -> {out_path}" if out_path is not None else ""
    print(
        f"[sweep {scenario.name}: {totals['trials']} shards, "
        f"{int(totals['notifications_delivered'])} notifications, "
        f"{int(totals['spurious_groups'])} spurious groups, "
        f"{elapsed:.1f}s wall, jobs={args.jobs}]{where}",
        # With --json, stdout carries only the shard JSON lines.
        file=sys.stderr if args.json else sys.stdout,
    )
    return _report_expectations(scenario, violations, args)


def _run_parallel(scenario: Scenario, args) -> int:
    """Single-scenario runs on a partitioned world (``--workers``).

    Orthogonal to ``--jobs``/``--grid`` (which fan *independent trials*
    across processes): ``--workers`` splits *one world* across worker
    processes via the conservative window protocol
    (:mod:`repro.engine.windows`).  Results are byte-identical for any
    worker count at fixed ``--partitions``; see docs/PERFORMANCE.md for
    when each axis pays off.
    """
    if args.grid:
        raise SystemExit("--workers cannot be combined with --grid (use --jobs for sweeps)")
    if args.jobs > 1:
        raise SystemExit("--workers partitions one world; use it with --jobs 1")
    seeds = _parse_seeds(args.seeds) or [scenario.seed]
    partitions = args.partitions if args.partitions else args.workers
    violations: List[str] = []
    records = []
    for seed in seeds:
        started = wall_seconds()
        out, _ctx, result = execute_parallel(
            scenario, seed=seed, workers=args.workers, partitions=partitions
        )
        elapsed = wall_seconds() - started
        cp = result.critical_path()
        records.append(
            {
                "seed": seed,
                "measurements": {
                    k: v for k, v in sorted(out.items()) if not isinstance(v, list)
                },
                "parallel": {
                    "workers": result.workers,
                    "partitions": result.plan.n_partitions,
                    "lookahead_ms": result.plan.lookahead_ms,
                    "windows": result.windows,
                    "speedup_bound": cp["speedup_bound"],
                    "wall_seconds": round(elapsed, 3),
                },
            }
        )
        if not args.no_expect:
            for outcome in evaluate_expectations(scenario.expect, out):
                if not outcome.ok:
                    violations.append(f"seed={seed}: {outcome.violation}")
        print(
            f"[{scenario.name} seed={seed}] workers={result.workers} "
            f"partitions={result.plan.n_partitions} windows={result.windows} "
            f"msgs/s={out.get('msgs_per_sec', 0.0):.1f} "
            f"events={out.get('events', 0)} ({elapsed:.1f}s)",
            file=sys.stderr if args.json else sys.stdout,
        )
    rendered = json.dumps(
        {"scenario": scenario.name, "trials": records},
        indent=2, sort_keys=True, default=str,
    )
    if args.json:
        print(rendered)
    if args.out:
        out_path = pathlib.Path(args.out)
        if out_path.parent != pathlib.Path(""):
            out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(rendered + "\n")
    return _report_expectations(scenario, violations, args)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios.run",
        description="Run a named or spec-file scenario through the trial engine.",
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        help="built-in scenario name (see --list) or a .toml/.json spec file",
    )
    parser.add_argument(
        "--list", action="store_true", help="list built-in scenarios and exit"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized variant of a built-in scenario (ignored for spec files)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for seed replicas (default: 1, serial)",
    )
    parser.add_argument(
        "--seeds",
        metavar="S1,S2,...",
        help="comma-separated base seeds replacing the scenario default",
    )
    parser.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="AXIS=V1,V2,...",
        help="add a sweep axis (n_nodes or tracks.<i>.<field>); "
        "repeatable — the cartesian product x --seeds becomes "
        "independent shards fanned over --jobs, archived incrementally "
        "to --out as one JSON line per shard (--json streams the same "
        "lines to stdout)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="partition one world across N worker processes (conservative "
        "window protocol; results identical for any N at fixed "
        "--partitions). Single-scenario runs only — not with --grid, "
        "and --jobs must stay 1",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=0,
        metavar="P",
        help="partition count for --workers (default: N); fix P while "
        "varying N to keep runs byte-identical",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable per-trial results instead of the table",
    )
    parser.add_argument(
        "--out", metavar="PATH", help="also write the output to PATH"
    )
    parser.add_argument(
        "--no-expect",
        action="store_true",
        help="skip the scenario's [expect] assertions (normally any "
        "violation makes the run exit non-zero)",
    )
    args = parser.parse_args(argv)

    if args.list:
        print(_list_text())
        return 0
    if not args.scenario:
        parser.error("pass a scenario name or spec file (or --list)")

    scenario = _resolve(args.scenario, args.quick)
    if args.workers:
        return _run_parallel(scenario, args)
    if args.partitions:
        parser.error("--partitions only applies together with --workers")
    if args.grid:
        return _run_sweep(scenario, args)
    started = wall_seconds()
    result = run_scenario(
        scenario, jobs=max(1, args.jobs), seeds=_parse_seeds(args.seeds)
    )
    elapsed = wall_seconds() - started

    if args.json:
        payload = result.result_set.to_json_dict()
        payload["scenario"] = scenario.name
        payload["n_nodes"] = scenario.n_nodes
        payload["phases"] = [
            {"name": p.name, "minutes": p.minutes, "measure": p.measure}
            for p in scenario.phases
        ]
        payload["wall_seconds"] = round(elapsed, 3)
        payload["jobs"] = max(1, args.jobs)
        rendered = json.dumps(payload, indent=2, sort_keys=True, default=str)
    else:
        rendered = result.format_table() + (
            f"\n[{scenario.name}: {elapsed:.1f}s wall clock, jobs={args.jobs}, "
            f"{len(result.result_set)} trials]"
        )

    if args.out:
        out = pathlib.Path(args.out)
        if out.parent != pathlib.Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(rendered + "\n")
    print(rendered)

    violations: List[str] = []
    for trial in result.result_set:
        _check_expectations(scenario, trial, args, violations)
    return _report_expectations(scenario, violations, args)


if __name__ == "__main__":
    sys.exit(main())

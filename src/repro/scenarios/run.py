"""Command-line scenario runner.

Run any built-in scenario by name, or any TOML/JSON spec file::

    python -m repro.scenarios.run --list
    python -m repro.scenarios.run steady
    python -m repro.scenarios.run partition-heal --quick --jobs 2
    python -m repro.scenarios.run paper-fig9 --seeds 4,5,6 --jobs 4 --json
    python -m repro.scenarios.run examples/scenario_creeping_loss.toml --out out.json

Scenarios execute through the shared trial engine
(:mod:`repro.scenarios.runner` -> :mod:`repro.engine`): ``--seeds``
replicates the scenario over base seeds, ``--jobs`` fans replicas across
processes with seed-for-seed-identical aggregate metrics, and
``--json``/``--out`` archive per-trial measurements.  The full DSL
reference lives in ``docs/SCENARIOS.md``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import List, Optional

from repro.scenarios.builtin import BUILTIN, catalogue
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import SpecError, load
from repro.scenarios.timeline import Scenario


def _parse_seeds(text: Optional[str]) -> Optional[List[int]]:
    if not text:
        return None
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise SystemExit(f"--seeds expects comma-separated integers: {exc}")


def _resolve(target: str, quick: bool) -> Scenario:
    factory = BUILTIN.get(target)
    if factory is not None:
        return factory(quick)
    path = pathlib.Path(target)
    if path.suffix in (".toml", ".json"):
        if not path.exists():
            raise SystemExit(f"spec file not found: {path}")
        try:
            return load(path)
        except SpecError as exc:
            raise SystemExit(f"bad scenario spec {path}: {exc}")
    raise SystemExit(
        f"unknown scenario {target!r} — run with --list, or pass a "
        ".toml/.json spec file"
    )


def _list_text() -> str:
    rows = catalogue()
    width = max(len(name) for name, _desc in rows)
    lines = [f"{len(rows)} built-in scenarios:", ""]
    for name, desc in rows:
        lines.append(f"  {name:<{width}}  {desc}")
    lines.append("")
    lines.append("Any .toml/.json spec file is also accepted (docs/SCENARIOS.md).")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios.run",
        description="Run a named or spec-file scenario through the trial engine.",
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        help="built-in scenario name (see --list) or a .toml/.json spec file",
    )
    parser.add_argument(
        "--list", action="store_true", help="list built-in scenarios and exit"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized variant of a built-in scenario (ignored for spec files)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for seed replicas (default: 1, serial)",
    )
    parser.add_argument(
        "--seeds",
        metavar="S1,S2,...",
        help="comma-separated base seeds replacing the scenario default",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable per-trial results instead of the table",
    )
    parser.add_argument(
        "--out", metavar="PATH", help="also write the output to PATH"
    )
    args = parser.parse_args(argv)

    if args.list:
        print(_list_text())
        return 0
    if not args.scenario:
        parser.error("pass a scenario name or spec file (or --list)")

    scenario = _resolve(args.scenario, args.quick)
    started = time.time()
    result = run_scenario(
        scenario, jobs=max(1, args.jobs), seeds=_parse_seeds(args.seeds)
    )
    elapsed = time.time() - started

    if args.json:
        payload = result.result_set.to_json_dict()
        payload["scenario"] = scenario.name
        payload["n_nodes"] = scenario.n_nodes
        payload["phases"] = [
            {"name": p.name, "minutes": p.minutes, "measure": p.measure}
            for p in scenario.phases
        ]
        payload["wall_seconds"] = round(elapsed, 3)
        payload["jobs"] = max(1, args.jobs)
        rendered = json.dumps(payload, indent=2, sort_keys=True, default=str)
    else:
        rendered = result.format_table() + (
            f"\n[{scenario.name}: {elapsed:.1f}s wall clock, jobs={args.jobs}, "
            f"{len(result.result_set)} trials]"
        )

    if args.out:
        out = pathlib.Path(args.out)
        if out.parent != pathlib.Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(rendered + "\n")
    print(rendered)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Declarative scenario engine: composable fault timelines for FUSE.

The paper's central claim (abstract, §3.5) is notification delivery
under *arbitrary* failure patterns; this package is the layer that makes
new failure patterns a declaration instead of a new experiment module.
A :class:`Scenario` composes **phases** (warmup / steady-state /
measurement windows) with **event tracks** (churn schedules, partition
and intransitive fault timelines, link-loss ramps, group and SV-tree
workloads — :mod:`repro.scenarios.tracks`), runs through the shared
trial engine (:mod:`repro.scenarios.runner`), and can be written in
Python or loaded from TOML/JSON (:mod:`repro.scenarios.spec`).

Entry points:

* ``python -m repro.scenarios.run <name|spec.toml>`` — the CLI;
* ``python -m repro.scenarios.fuzz`` — coverage-guided spec fuzzing
  over the full track vocabulary (:mod:`repro.scenarios.fuzz`);
* :func:`execute` — one scenario, one seed, one measurements dict;
* :func:`run_scenario` — seed replicas through the engine (``jobs`` /
  ``seeds`` exactly as in :mod:`repro.experiments.run`);
* :data:`BUILTIN` — the named catalogue (:mod:`repro.scenarios.builtin`).

Full DSL reference: ``docs/SCENARIOS.md``.
"""

from repro.scenarios.builtin import BUILTIN, catalogue, fig9_scenario, fig10_scenario
from repro.scenarios.expect import (
    ExpectError,
    Expectation,
    evaluate_expectations,
    parse_expect,
)
from repro.scenarios.runner import (
    ScenarioResult,
    apply_overrides,
    run_scenario,
    run_scenario_sweep,
    sweep_for,
)
from repro.scenarios.spec import SpecError, TRACK_KINDS, load, scenario_from_dict
from repro.scenarios.timeline import (
    MINUTE_MS,
    Phase,
    Scenario,
    ScenarioContext,
    Track,
    execute,
    execute_with_context,
)

__all__ = [
    "BUILTIN",
    "ExpectError",
    "Expectation",
    "MINUTE_MS",
    "Phase",
    "Scenario",
    "ScenarioContext",
    "ScenarioResult",
    "SpecError",
    "TRACK_KINDS",
    "Track",
    "apply_overrides",
    "catalogue",
    "evaluate_expectations",
    "execute",
    "execute_with_context",
    "fig10_scenario",
    "fig9_scenario",
    "load",
    "parse_expect",
    "run_scenario",
    "run_scenario_sweep",
    "scenario_from_dict",
    "sweep_for",
]

"""Declarative scenario engine: composable fault timelines for FUSE.

The paper's central claim (abstract, §3.5) is notification delivery
under *arbitrary* failure patterns; this package is the layer that makes
new failure patterns a declaration instead of a new experiment module.
A :class:`Scenario` composes **phases** (warmup / steady-state /
measurement windows) with **event tracks** (churn schedules, partition
and intransitive fault timelines, link-loss ramps, group and SV-tree
workloads — :mod:`repro.scenarios.tracks`), runs through the shared
trial engine (:mod:`repro.scenarios.runner`), and can be written in
Python or loaded from TOML/JSON (:mod:`repro.scenarios.spec`).

Entry points:

* ``python -m repro.scenarios.run <name|spec.toml>`` — the CLI;
* :func:`execute` — one scenario, one seed, one measurements dict;
* :func:`run_scenario` — seed replicas through the engine (``jobs`` /
  ``seeds`` exactly as in :mod:`repro.experiments.run`);
* :data:`BUILTIN` — the named catalogue (:mod:`repro.scenarios.builtin`).

Full DSL reference: ``docs/SCENARIOS.md``.
"""

from repro.scenarios.builtin import BUILTIN, catalogue, fig9_scenario, fig10_scenario
from repro.scenarios.runner import (
    ScenarioResult,
    apply_overrides,
    run_scenario,
    run_scenario_sweep,
    sweep_for,
)
from repro.scenarios.spec import SpecError, load, scenario_from_dict
from repro.scenarios.timeline import (
    MINUTE_MS,
    Phase,
    Scenario,
    ScenarioContext,
    Track,
    execute,
)

__all__ = [
    "BUILTIN",
    "MINUTE_MS",
    "Phase",
    "Scenario",
    "ScenarioContext",
    "ScenarioResult",
    "SpecError",
    "Track",
    "apply_overrides",
    "catalogue",
    "execute",
    "fig10_scenario",
    "fig9_scenario",
    "load",
    "run_scenario",
    "run_scenario_sweep",
    "scenario_from_dict",
    "sweep_for",
]

"""Bridge from scenarios to the shared trial engine (§7 methodology).

One scenario replica is one :class:`~repro.engine.trial.TrialSpec`: the
scenario object rides along as the spec's context, the derived seed
builds the world, and :func:`repro.scenarios.timeline.execute` is the
trial function.  Everything the engine provides — seed replication,
``--jobs`` process fan-out with seed-for-seed-identical aggregates, and
JSON archiving — therefore applies to scenarios unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple

from repro.engine import Measurements, ResultSet, Sweep, TrialSpec, run_trials
from repro.engine.trial import TrialResult
from repro.scenarios.timeline import Scenario, execute


def _trial(spec: TrialSpec) -> Measurements:
    """Module-level trial function (picklable for the process pool)."""
    scenario: Scenario = spec.context
    return execute(scenario, seed=spec.seed)


def apply_overrides(scenario: Scenario, overrides: Mapping[str, Any]) -> Scenario:
    """A new scenario with one sweep grid point applied.

    Supported axis keys:

    * ``n_nodes`` — world size;
    * ``tracks.<i>.<field>`` — any field of the i-th track (tracks are
      dataclasses, so the override goes through ``dataclasses.replace``
      and the track's own validation).

    Seeds are deliberately *not* an axis: the trial engine derives one
    seed per (experiment, base seed, grid point) and replicates the grid
    over ``--seeds`` — a ``seed`` override here would be silently
    shadowed by that derivation.
    """
    n_nodes = scenario.n_nodes
    tracks = list(scenario.tracks)
    for key, value in overrides.items():
        if key == "n_nodes":
            n_nodes = int(value)
        elif key == "seed":
            raise ValueError(
                "'seed' is not a sweep axis — replicate over base seeds "
                "with --seeds instead"
            )
        elif key.startswith("tracks."):
            try:
                _prefix, index_text, field = key.split(".", 2)
                index = int(index_text)
            except ValueError:
                raise ValueError(
                    f"bad track axis {key!r} (want tracks.<index>.<field>)"
                ) from None
            if not 0 <= index < len(tracks):
                raise ValueError(
                    f"axis {key!r}: scenario {scenario.name!r} has "
                    f"{len(tracks)} tracks"
                )
            track = tracks[index]
            if not hasattr(track, field):
                raise ValueError(
                    f"axis {key!r}: {type(track).__name__} has no field {field!r}"
                )
            tracks[index] = dataclasses.replace(track, **{field: value})
        else:
            raise ValueError(
                f"unknown sweep axis {key!r} (want n_nodes or "
                "tracks.<index>.<field>)"
            )
    return dataclasses.replace(scenario, n_nodes=n_nodes, tracks=tuple(tracks))


def _sweep_trial(spec: TrialSpec) -> Measurements:
    """Sweep trial: apply the spec's grid point, then execute."""
    scenario = apply_overrides(spec.context, spec.params)
    return execute(scenario, seed=spec.seed)


def run_scenario_sweep(
    scenario: Scenario,
    grid: Mapping[str, Sequence[Any]],
    *,
    jobs: int = 1,
    seeds: Optional[Sequence[int]] = None,
    on_result: Optional[Callable[[TrialResult], None]] = None,
    keep_results: bool = True,
) -> ResultSet:
    """Shard a sweep grid over a scenario across processes.

    Each grid point × base seed is one independent shard (its own world,
    seeded via the engine's position-independent derivation), so results
    are seed-for-seed identical for any ``jobs`` value.  ``on_result``
    receives completed shards in spec order as they finish — pass a
    writer there and ``keep_results=False`` to archive a large sweep
    incrementally instead of accumulating it in memory.
    """
    experiment = f"scenario-sweep:{scenario.name}"
    sweep = Sweep(
        grid=dict(grid), seeds=tuple(seeds) if seeds else (scenario.seed,)
    )
    specs = sweep.expand(experiment, context=scenario)
    results = run_trials(
        _sweep_trial,
        specs,
        jobs=jobs,
        on_result=on_result,
        keep_results=keep_results,
    )
    return ResultSet(results, experiment=experiment)


def sweep_for(scenario: Scenario, seeds: Optional[Sequence[int]] = None) -> Sweep:
    """One trial per base seed; the scenario's own seed is the default."""
    return Sweep(seeds=tuple(seeds) if seeds else (scenario.seed,))


class ScenarioResult:
    """Aggregated scenario measurements plus the raw :class:`ResultSet`."""

    def __init__(self, scenario: Scenario, result_set: ResultSet) -> None:
        self.scenario = scenario
        self.result_set = result_set

    def rows(self) -> List[Tuple]:
        rs = self.result_set
        rows: List[Tuple] = [
            ("trials (seed replicas)", len(rs)),
            ("msgs/s (mean over measured phases)", rs.mean("msgs_per_sec")),
            ("groups created", int(rs.total("groups_created"))),
            ("groups failed to create", int(rs.total("groups_failed"))),
            ("groups affected by faults", int(rs.total("groups_affected"))),
            ("groups notified", int(rs.total("groups_notified"))),
            ("notifications expected", int(rs.total("notifications_expected"))),
            ("notifications delivered", int(rs.total("notifications_delivered"))),
            ("spurious (false-positive) groups", int(rs.total("spurious_groups"))),
        ]
        latencies = rs.samples("latency_min")
        if latencies:
            for pct in (50, 95, 100):
                rows.append(
                    (f"notification latency p{pct} (min)", rs.percentile("latency_min", pct))
                )
        # Track-reported extras (partition_spanning_groups, blocked_pairs,
        # svtree_published, ...) vary by scenario; surface any present.
        # Reported as per-trial means: extras mix counts with level-type
        # values (final_link_loss, wave_size), and summing a level across
        # seed replicas would misreport it.
        skip = {
            "msgs_per_sec", "groups_created", "groups_failed", "groups_affected",
            "groups_notified", "notifications_expected", "notifications_delivered",
            "spurious_groups", "latency_min", "final_alive", "events",
        }
        seen: List[str] = []
        for trial in rs:
            for name in trial.measurements:
                if name not in skip and name not in seen:
                    seen.append(name)
        per_trial = " (mean/trial)" if len(rs) > 1 else ""
        for name in seen:
            rows.append((f"{name}{per_trial}", rs.mean(name)))
        rows.append(("final alive nodes", int(rs.total("final_alive"))))
        rows.append(("events dispatched", int(rs.total("events"))))
        return rows

    def format_table(self) -> str:
        from repro.experiments.report import format_table

        scenario = self.scenario
        timeline = " → ".join(
            f"{p.name}:{p.minutes:g}m" + ("*" if p.measure else "")
            for p in scenario.phases
        )
        title = (
            f"scenario {scenario.name!r} — {scenario.n_nodes} nodes, "
            f"{timeline} (* = measured)"
        )
        return format_table(["metric", "value"], self.rows(), title=title)


def run_scenario(
    scenario: Scenario,
    *,
    jobs: int = 1,
    seeds: Optional[Sequence[int]] = None,
) -> ScenarioResult:
    """Run seed replicas of ``scenario`` through the trial engine."""
    experiment = f"scenario:{scenario.name}"
    specs = sweep_for(scenario, seeds).expand(experiment, context=scenario)
    rs = ResultSet(run_trials(_trial, specs, jobs=jobs), experiment=experiment)
    return ScenarioResult(scenario, rs)

"""Scenario-level assertions: the ``[expect]`` block.

A scenario spec may declare expected outcomes; ``python -m
repro.scenarios.run`` then doubles as a property checker — it evaluates
every trial's measurements against the declarations and exits non-zero
on any violation (the ROADMAP's "scenario-level assertions" item, and
the checkable form of the paper's §3 one-way agreement guarantee)::

    [expect]
    spurious_groups = 0              # number -> exact equality
    delivered = "== expected"        # string -> "<op> <operand>"
    notify_p95_ms = "< 120000"       # operand: number or another metric

Operators: ``==  !=  <  <=  >  >=``.  The operand may be a literal
number or the name of another metric (``delivered == expected``).
Metrics resolve against the trial's flat measurement dict
(:func:`repro.scenarios.timeline.execute`) plus derived conveniences:

* ``delivered`` / ``expected`` — aliases for
  ``notifications_delivered`` / ``notifications_expected``;
* ``notify_p50_ms`` / ``notify_p95_ms`` / ``notify_max_ms`` — percentiles
  of the per-member notification latencies (``latency_min`` converted to
  ms; 0.0 when no notification was delivered).

Everything here is read-only post-processing of the measurements the
ledger-backed aggregation produced — evaluation can never perturb a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple, Union

from repro.sim.metrics import percentile

MINUTE_MS = 60_000.0

_OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class ExpectError(ValueError):
    """An [expect] declaration failed to parse."""


@dataclass(frozen=True)
class Expectation:
    """One declared outcome: ``metric <op> operand``."""

    metric: str
    op: str
    operand: Union[int, float, str]  # literal, or another metric's name

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ExpectError(
                f"bad [expect] operator {self.op!r} (want one of {sorted(_OPS)})"
            )

    def evaluate(
        self,
        measurements: Mapping[str, Any],
        values: "Dict[str, Any] | None" = None,
    ) -> "ExpectOutcome":
        """Evaluate against one trial.  ``values`` is the precomputed
        :func:`derived_metrics` view — pass it when evaluating several
        expectations over the same trial to avoid recomputing it."""
        if values is None:
            values = derived_metrics(measurements)
        actual = values.get(self.metric)
        if actual is None:
            return ExpectOutcome(self, None, None, f"metric {self.metric!r} not reported")
        if isinstance(self.operand, str):
            bound = values.get(self.operand)
            if bound is None:
                return ExpectOutcome(
                    self, actual, None, f"operand metric {self.operand!r} not reported"
                )
        else:
            bound = self.operand
        if _OPS[self.op](actual, bound):
            return ExpectOutcome(self, actual, bound, None)
        return ExpectOutcome(
            self,
            actual,
            bound,
            f"{self.metric} {self.op} {self.operand} violated: "
            f"{actual!r} vs {bound!r}",
        )

    def __str__(self) -> str:
        return f"{self.metric} {self.op} {self.operand}"


@dataclass(frozen=True)
class ExpectOutcome:
    """The result of evaluating one expectation against one trial."""

    expectation: Expectation
    actual: Any
    bound: Any
    violation: "str | None"  # None => satisfied

    @property
    def ok(self) -> bool:
        return self.violation is None


def derived_metrics(measurements: Mapping[str, Any]) -> Dict[str, Any]:
    """The measurement dict plus the aliases/percentiles specs may name."""
    values: Dict[str, Any] = dict(measurements)
    values.setdefault("delivered", measurements.get("notifications_delivered"))
    values.setdefault("expected", measurements.get("notifications_expected"))
    latencies = measurements.get("latency_min") or []
    latencies_ms = sorted(v * MINUTE_MS for v in latencies)
    values.setdefault(
        "notify_p50_ms", percentile(latencies_ms, 50) if latencies_ms else 0.0
    )
    values.setdefault(
        "notify_p95_ms", percentile(latencies_ms, 95) if latencies_ms else 0.0
    )
    values.setdefault("notify_max_ms", latencies_ms[-1] if latencies_ms else 0.0)
    return values


def _parse_operand(token: str) -> Union[int, float, str]:
    for cast in (int, float):
        try:
            return cast(token)
        except ValueError:
            continue
    return token  # another metric's name


def parse_expect(table: Mapping[str, Any]) -> Tuple[Expectation, ...]:
    """Build expectations from a spec's ``[expect]`` table.

    Values: a number means exact equality; a string must read
    ``"<op> <operand>"``.
    """
    out: List[Expectation] = []
    for metric, value in table.items():
        if isinstance(value, bool):
            raise ExpectError(
                f"[expect] {metric}: booleans are not supported; compare "
                "against 0/1 explicitly"
            )
        if isinstance(value, (int, float)):
            out.append(Expectation(metric, "==", value))
            continue
        if isinstance(value, str):
            parts = value.split(None, 1)
            if len(parts) != 2:
                raise ExpectError(
                    f"[expect] {metric}: want '<op> <operand>', got {value!r}"
                )
            op, operand = parts
            out.append(Expectation(metric, op, _parse_operand(operand.strip())))
            continue
        raise ExpectError(
            f"[expect] {metric}: unsupported value {value!r} "
            "(want a number or '<op> <operand>')"
        )
    return tuple(out)


def evaluate_expectations(
    expectations: Tuple[Expectation, ...], measurements: Mapping[str, Any]
) -> List[ExpectOutcome]:
    """Evaluate all declarations against one trial's measurements."""
    values = derived_metrics(measurements)
    return [e.evaluate(measurements, values) for e in expectations]

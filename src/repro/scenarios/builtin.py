"""The built-in named scenario catalogue.

Each entry is a factory ``f(quick: bool = False) -> Scenario``: the
default shape runs in seconds-to-a-minute on one core, ``quick=True`` is
the CI smoke shape.  ``python -m repro.scenarios.run --list`` renders
this table; :data:`BUILTIN` is the registry the CLI and tests consume.

Two entries — ``paper-fig9`` and ``paper-fig10`` — are the scenario
forms of the corresponding experiment modules; the shared factories
(:func:`fig9_scenario`, :func:`fig10_scenario`) are also what
:mod:`repro.experiments.crash_notification` and
:mod:`repro.experiments.churn` now delegate to, which is the proof that
the declarative layer subsumes the old hard-coded loops.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.scenarios.expect import Expectation
from repro.scenarios.timeline import Phase, Scenario
from repro.scenarios.tracks import (
    CrashRecoverWave,
    DisconnectWave,
    GroupWorkload,
    IntransitivePairs,
    LinkLossRamp,
    Partition,
    PoissonChurn,
    SvtreeTraffic,
)


#: The one-way agreement invariant (§3) as an [expect] block: every
#: observable member of every affected group notified, nothing notified
#: without a fault.  Built-ins declare these so the scenario conformance
#: matrix in CI doubles as a property check (docs/API.md).
AGREEMENT_EXPECT = (
    Expectation("delivered", "==", "expected"),
    Expectation("spurious_groups", "==", 0),
)


# ----------------------------------------------------------------------
# Scenario forms of the paper experiments (shared with repro.experiments)
# ----------------------------------------------------------------------
def fig9_scenario(config) -> Scenario:
    """The Fig 9 experiment as a scenario (see §7.4 of the paper).

    ``config`` is a :class:`repro.experiments.crash_notification.CrashConfig`
    (duck-typed).  Both tracks share the ``crash-workload`` RNG stream in
    the order the original hand-written trial drew from it, so the
    resulting worlds are *identical* to the pre-scenario implementation.
    """
    return Scenario(
        name="paper-fig9",
        description="Fig 9: disconnect one machine's nodes; measure the "
        "crash-notification latency CDF at surviving members (§7.4).",
        n_nodes=config.n_nodes,
        seed=config.seed,
        phases=(
            Phase("settle", 2.0),
            Phase("observe", config.observe_minutes),
        ),
        expect=AGREEMENT_EXPECT + (Expectation("notify_p95_ms", "<", 360_000.0),),
        tracks=(
            GroupWorkload(
                n_groups=config.n_groups,
                group_size=config.group_size,
                observe="members",
                stream="crash-workload",
            ),
            DisconnectWave(
                count=config.n_disconnected,
                phase="observe",
                stream="crash-workload",
            ),
        ),
    )


def fig10_scenario(config, variant: str) -> Scenario:
    """One Fig 10 measurement (§7.4 churn) as a scenario.

    ``config`` is a :class:`repro.experiments.churn.ChurnConfig`;
    ``variant`` is ``"stable"``, ``"churn"``, or ``"churn-fuse"``.
    Stream names and track order replicate the original trial's RNG draw
    sequence exactly.
    """
    if variant == "stable":
        return Scenario(
            name="paper-fig10-stable",
            description="Fig 10 baseline: stable overlay sized like the "
            "churn average, background message rate only.",
            n_nodes=config.n_stable + config.n_churning // 2,
            seed=config.seed,
            phases=(Phase("measure", config.window_minutes, measure=True),),
        )
    churn = PoissonChurn(
        nodes=f"last:{config.n_churning}",
        half_life_minutes=config.half_life_minutes,
        phase="measure",
        pre_kill_alternate=True,
        stream="churn-schedule",
    )
    tracks: Tuple = (churn,)
    if variant == "churn-fuse":
        tracks = (
            GroupWorkload(
                n_groups=config.n_groups,
                group_size=config.group_size,
                members=f"first:{config.n_stable}",
                observe="root",
                stream="churn-groups",
            ),
            churn,
        )
    elif variant != "churn":
        raise ValueError(f"unknown fig10 variant: {variant!r}")
    return Scenario(
        name=f"paper-fig10-{variant}",
        description="Fig 10: overlay churn at 30-minute half-life"
        + (" with FUSE groups on the stable nodes" if variant == "churn-fuse" else ""),
        n_nodes=config.n_stable + config.n_churning,
        seed=config.seed,
        phases=(
            Phase("settle", 3.0),
            Phase("measure", config.window_minutes, measure=True),
        ),
        expect=AGREEMENT_EXPECT,
        tracks=tracks,
    )


# ----------------------------------------------------------------------
# The catalogue
# ----------------------------------------------------------------------
def steady(quick: bool = False) -> Scenario:
    n = 24 if quick else 40
    return Scenario(
        name="steady",
        description="No faults: FUSE groups at steady state; baseline "
        "message rate and zero spurious notifications (§7.5 flavour).",
        n_nodes=n,
        seed=7,
        phases=(
            Phase("warmup", 2.0),
            Phase("measure", 3.0 if quick else 6.0, measure=True),
        ),
        expect=AGREEMENT_EXPECT + (Expectation("groups_failed", "==", 0),),
        tracks=(
            GroupWorkload(n_groups=6 if quick else 12, group_size=4),
        ),
    )


def flash_churn(quick: bool = False) -> Scenario:
    n = 28 if quick else 48
    wave = 8 if quick else 16
    return Scenario(
        name="flash-churn",
        description="A flash crowd: a third of the population sat out "
        "bootstrap (crashed) and rejoins simultaneously mid-measurement, "
        "stressing overlay join load under live FUSE groups.",
        n_nodes=n,
        seed=11,
        phases=(
            Phase("warmup", 2.0),
            Phase("flash", 3.0 if quick else 5.0, measure=True),
        ),
        # The join flash crowd can transiently suspect a stable node
        # (documented flash-crowd realism), so up to one spurious group is
        # tolerated here; delivery stays exact.
        expect=(
            Expectation("delivered", "==", "expected"),
            Expectation("spurious_groups", "<=", 1),
        ),
        tracks=(
            GroupWorkload(
                n_groups=8 if quick else 12,
                group_size=4,
                members=f"first:{n - wave}",
            ),
            CrashRecoverWave(
                count=wave,
                nodes=f"last:{wave}",
                recover_phase="flash",
                spacing_ms=100.0,
            ),
        ),
    )


def partition_heal(quick: bool = False) -> Scenario:
    n = 24 if quick else 40
    return Scenario(
        name="partition-heal",
        description="Partition-and-heal (§3.5): the host set splits "
        "60/40 mid-run and heals minutes later; groups spanning the cut "
        "must notify every member, groups inside one side must survive.",
        n_nodes=n,
        seed=13,
        phases=(
            Phase("warmup", 2.0),
            Phase("partition", 4.0 if quick else 6.0, measure=True),
            Phase("healed", 2.0 if quick else 3.0),
        ),
        expect=AGREEMENT_EXPECT,
        tracks=(
            GroupWorkload(n_groups=6 if quick else 10, group_size=4),
            Partition(
                phase="partition",
                fractions=(0.6, 0.4),
                heal_after_minutes=2.0 if quick else 3.0,
            ),
        ),
    )


def creeping_loss(quick: bool = False) -> Scenario:
    return Scenario(
        name="creeping-loss",
        description="Time-varying link loss: per-link drop probability "
        "ramps 0 -> 1.6% across the window (the Fig 11/12 loss model, "
        "animated); spurious notifications creep in with it.",
        n_nodes=20 if quick else 36,
        seed=17,
        phases=(
            Phase("warmup", 2.0),
            Phase("measure", 4.0 if quick else 8.0, measure=True),
        ),
        # Loss-induced spurious notifications are this scenario's point,
        # so they are deliberately not bounded here; delivery (vacuously
        # exact — no faults touch members) and creation still must hold.
        expect=(
            Expectation("delivered", "==", "expected"),
            Expectation("groups_failed", "==", 0),
        ),
        tracks=(
            GroupWorkload(n_groups=6 if quick else 10, group_size=4),
            LinkLossRamp(phase="measure", start_loss=0.0, end_loss=0.016, steps=4),
        ),
    )


def correlated_rack_failure(quick: bool = False) -> Scenario:
    n = 24 if quick else 48
    return Scenario(
        name="correlated-rack-failure",
        description="A contiguous block of hosts — one rack / physical "
        "machine of virtual nodes, the Fig 9 failure made correlated — "
        "disconnects at once; every group touching the rack must notify.",
        n_nodes=n,
        seed=19,
        phases=(
            Phase("warmup", 2.0),
            Phase("fail", 6.0 if quick else 8.0, measure=True),
        ),
        expect=AGREEMENT_EXPECT,
        tracks=(
            GroupWorkload(n_groups=8 if quick else 12, group_size=5),
            DisconnectWave(count=4 if quick else 6, phase="fail", contiguous=True),
        ),
    )


def intransitive_pairs(quick: bool = False) -> Scenario:
    return Scenario(
        name="intransitive-pairs",
        description="Intransitive connectivity failures (§2, §3.4): "
        "root-member pairs inside live groups are cut while both ends "
        "stay globally reachable; the application signals fail-on-send "
        "and FUSE notifies the whole group.",
        n_nodes=20 if quick else 36,
        seed=23,
        phases=(
            Phase("warmup", 2.0),
            Phase("fail", 4.0 if quick else 6.0),
        ),
        expect=AGREEMENT_EXPECT,
        tracks=(
            GroupWorkload(n_groups=8 if quick else 12, group_size=4),
            IntransitivePairs(
                n_pairs=2 if quick else 3,
                phase="fail",
                detect_minutes=1.0,
                within_groups=True,
            ),
        ),
    )


def svtree_steady(quick: bool = False) -> Scenario:
    return Scenario(
        name="svtree-steady",
        description="§4 application workload: SV-tree subscriptions plus "
        "periodic publishes riding on FUSE-guarded tree links.",
        n_nodes=24 if quick else 40,
        seed=29,
        phases=(
            Phase("warmup", 3.0),
            Phase("measure", 3.0 if quick else 6.0, measure=True),
        ),
        # SV-tree link groups are service-internal (not registered with
        # the workload accounting); no registered group may be notified.
        expect=(Expectation("spurious_groups", "==", 0),),
        tracks=(
            SvtreeTraffic(
                n_topics=1 if quick else 2,
                subscribers_per_topic=6 if quick else 8,
                phase="measure",
                publish_per_minute=4.0,
            ),
        ),
    )


def paper_fig9(quick: bool = False) -> Scenario:
    from repro.experiments.crash_notification import CrashConfig

    if quick:
        config = CrashConfig(n_nodes=40, n_groups=20, n_disconnected=3, observe_minutes=8.0)
    else:
        config = CrashConfig()
    return fig9_scenario(config)


def paper_fig10(quick: bool = False) -> Scenario:
    from repro.experiments.churn import ChurnConfig

    if quick:
        config = ChurnConfig(n_stable=24, n_churning=24, n_groups=10, window_minutes=5.0)
    else:
        config = ChurnConfig()
    return fig10_scenario(config, "churn-fuse")


BUILTIN: Dict[str, Callable[[bool], Scenario]] = {
    "steady": steady,
    "flash-churn": flash_churn,
    "partition-heal": partition_heal,
    "creeping-loss": creeping_loss,
    "correlated-rack-failure": correlated_rack_failure,
    "intransitive-pairs": intransitive_pairs,
    "svtree-steady": svtree_steady,
    "paper-fig9": paper_fig9,
    "paper-fig10": paper_fig10,
}


def catalogue() -> List[Tuple[str, str]]:
    """(name, description) rows for ``--list`` (built at default scale)."""
    return [(name, factory(False).description) for name, factory in sorted(BUILTIN.items())]

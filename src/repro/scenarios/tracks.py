"""Built-in scenario event tracks: churn, faults, and workloads.

Each track is a declarative dataclass composing onto one existing
primitive:

* **churn** — :class:`PoissonChurn` (exponential dwell kill/restart, the
  Fig 10 model), :class:`CrashRecoverWave` (flash crowds and mass
  crash-recover waves);
* **faults** (§3.5's "arbitrary network failures") —
  :class:`DisconnectWave` (Fig 9's disconnected machine, optionally a
  contiguous "rack"), :class:`RollingDisconnect`, :class:`Partition`
  (partition-and-heal via :meth:`FaultInjector.partition`),
  :class:`AsymmetricPartition` (one-way A→B blocking via
  :meth:`FaultInjector.block_one_way`), :class:`IntransitivePairs`
  (§2/§3.4 pairwise failures with fail-on-send signalling),
  :class:`LinkLossRamp` (time-varying per-link loss, the Fig 11/12 knob);
* **workloads** — :class:`GroupWorkload` (FUSE group creation, either
  up-front or at a rate), :class:`SvtreeTraffic` (§4 SV-tree
  subscribe/publish application load).

Tracks hold **no per-run mutable state**: anything a run accumulates
lives on the :class:`~repro.scenarios.timeline.ScenarioContext` (in
``ctx.scratch``/``ctx.extra`` or closures), because the same track
instances are reused across serial seed replicas.

Node subsets are expressed as *selectors* so they survive TOML specs:
``"all"``, ``"first:N"``, ``"last:N"``, ``"slice:A:B"`` (half-open index
range into the world's node list), or an explicit id list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.fuse.api import GroupStatus
from repro.net.address import NodeId
from repro.scenarios.timeline import MINUTE_MS, Phase, ScenarioContext, Track

NodeSelector = Union[str, Sequence[int]]


def resolve_nodes(selector: NodeSelector, node_ids: Sequence[NodeId]) -> List[NodeId]:
    """Resolve a node selector against the world's ordered node list."""
    if isinstance(selector, str):
        if selector == "all":
            return list(node_ids)
        kind, _, arg = selector.partition(":")
        try:
            if kind == "first":
                return list(node_ids[: int(arg)])
            if kind == "last":
                return list(node_ids[-int(arg) :]) if int(arg) > 0 else []
            if kind == "slice":
                a, _, b = arg.partition(":")
                return list(node_ids[int(a) : int(b)])
        except ValueError:
            pass
        raise ValueError(
            f"bad node selector {selector!r} "
            "(want 'all', 'first:N', 'last:N', 'slice:A:B', or an id list)"
        )
    return [NodeId(n) for n in selector]


# ----------------------------------------------------------------------
# Workload tracks
# ----------------------------------------------------------------------
@dataclass
class GroupWorkload(Track):
    """Create FUSE groups and observe their failure notifications.

    With ``rate_per_minute`` unset, all groups are created synchronously
    during setup (the shape of every §7 experiment).  With a rate, group
    creation is spread across ``phase`` at fixed spacing, asynchronously
    — an open-loop creation workload.

    ``observe`` controls notification recording: ``"members"`` attaches
    an observer per (group, member) including the root (Fig 9 style),
    ``"root"`` only at the group's root (Fig 10's false-positive probe),
    ``"none"`` skips observation.
    """

    n_groups: int
    group_size: int
    members: NodeSelector = "all"
    observe: str = "members"
    stream: str = "scenario-groups"
    rate_per_minute: Optional[float] = None
    phase: Optional[str] = None

    def __post_init__(self) -> None:
        if self.group_size < 2:
            raise ValueError("FUSE groups need at least a root and one member")
        if self.observe not in ("members", "root", "none"):
            raise ValueError(f"bad observe mode {self.observe!r}")
        if self.rate_per_minute is not None:
            if self.phase is None:
                raise ValueError("rate-based group creation needs a phase")
            if self.rate_per_minute <= 0:
                raise ValueError(f"rate_per_minute must be positive: {self.rate_per_minute}")

    def _register(self, ctx: ScenarioContext, fuse_id, root, members) -> None:
        everyone = [root] + list(members)
        ctx.register_group(fuse_id, root, everyone)
        # Delivery accounting reads the world ledger after the run; the
        # observe mode only selects whose rows count (Fig 9 vs Fig 10).
        if self.observe == "root":
            ctx.observe_group(fuse_id, [root])
        elif self.observe == "members":
            ctx.observe_group(fuse_id, everyone)

    def setup(self, ctx: ScenarioContext) -> None:
        if self.rate_per_minute is not None:
            return
        pool = resolve_nodes(self.members, ctx.world.node_ids)
        rng = ctx.stream(self.stream)
        for _ in range(self.n_groups):
            root, *members = rng.sample(pool, self.group_size)
            fuse_id, status, _latency = ctx.world.create_group_sync(root, members)
            if status == "ok":
                self._register(ctx, fuse_id, root, members)
            else:
                ctx.groups_failed += 1

    def on_phase_start(self, ctx: ScenarioContext, phase: Phase) -> None:
        if self.rate_per_minute is None or phase.name != self.phase:
            return
        world = ctx.world
        pool = resolve_nodes(self.members, world.node_ids)
        rng = ctx.stream(self.stream)
        spacing_ms = MINUTE_MS / self.rate_per_minute
        end = ctx.phase_end_ms[phase.name]

        def create_one() -> None:
            root, *members = rng.sample(pool, self.group_size)

            def live(g, root=root, members=members) -> None:
                self._register(ctx, g.fuse_id, root, members)

            def failed(g, _reason) -> None:
                if g.status is GroupStatus.FAILED_CREATE:
                    ctx.groups_failed += 1

            world.fuse(root).create_group(members).on_live(live).on_notified(failed)

        for k in range(self.n_groups):
            when = ctx.phase_start_ms[phase.name] + k * spacing_ms
            if when >= end:
                break
            world.sim.call_at(when, create_one)


@dataclass
class SvtreeTraffic(Track):
    """§4 application load: SV-tree subscriptions plus periodic publishes.

    Subscribers join their topics during setup (the joins — and the FUSE
    groups guarding each tree link — settle over the warmup phase);
    publishing runs at a fixed rate per topic across ``phase``.  Reports
    ``svtree_published`` / ``svtree_delivered`` event counts.
    """

    n_topics: int
    subscribers_per_topic: int
    phase: str
    publish_per_minute: float = 2.0
    nodes: NodeSelector = "all"
    stream: str = "scenario-svtree"

    def __post_init__(self) -> None:
        if self.publish_per_minute <= 0:
            raise ValueError(f"publish_per_minute must be positive: {self.publish_per_minute}")

    def setup(self, ctx: ScenarioContext) -> None:
        from repro.apps.svtree import SVTreeService

        world = ctx.world
        rng = ctx.stream(self.stream)
        pool = resolve_nodes(self.nodes, world.node_ids)
        # Every node needs a service: interior nodes of a tree (the RPF
        # path between a subscriber and its attach point) adopt and
        # forward content even when they never subscribed themselves.
        services = {node: SVTreeService(world.fuse(node)) for node in world.node_ids}
        ctx.extra.setdefault("svtree_published", 0)
        ctx.extra.setdefault("svtree_delivered", 0)

        def on_event(topic, payload) -> None:
            ctx.extra["svtree_delivered"] += 1

        topics = []
        for t in range(self.n_topics):
            topic = f"scenario-topic-{t}"
            subscribers = rng.sample(pool, self.subscribers_per_topic)
            for node in subscribers:
                services[node].subscribe(topic, on_event)
            publisher = rng.choice(pool)
            topics.append((topic, publisher))
        # Scratch keys by track identity are per-process bookkeeping:
        # never ordered, serialized, or compared across replicas.
        ctx.scratch[id(self)] = (topics, services)  # repro: allow[DH004]

    def on_phase_start(self, ctx: ScenarioContext, phase: Phase) -> None:
        if phase.name != self.phase:
            return
        world = ctx.world
        topics, services = ctx.scratch[id(self)]  # repro: allow[DH004] scratch key, never ordered
        spacing_ms = MINUTE_MS / self.publish_per_minute
        end = ctx.phase_end_ms[phase.name]

        def publish(topic: str, publisher) -> None:
            ctx.extra["svtree_published"] += 1
            services[publisher].publish(topic, f"event@{world.sim.now:.0f}")
            when = world.sim.now + spacing_ms
            if when < end:
                world.sim.call_at(when, lambda: publish(topic, publisher))

        for index, (topic, publisher) in enumerate(topics):
            # Stagger topics so publishes do not all land on one tick.
            first = ctx.phase_start_ms[phase.name] + index * spacing_ms / max(1, len(topics))
            world.sim.call_at(first, lambda t=topic, p=publisher: publish(t, p))


# ----------------------------------------------------------------------
# Churn tracks
# ----------------------------------------------------------------------
@dataclass
class PoissonChurn(Track):
    """Kill/restart nodes with exponential dwell times (the Fig 10 model).

    Each churner alternates alive/dead with exponentially distributed
    dwell times whose mean is ``half_life_minutes / 2``, so roughly half
    the churners are alive at any instant.  ``pre_kill_alternate`` kills
    every other churner during setup so the population starts at its
    steady-state mean instead of decaying toward it.

    Active from the start of ``phase`` to the end of ``end_phase``
    (default: ``phase`` itself).
    """

    nodes: NodeSelector
    half_life_minutes: float
    phase: str
    end_phase: Optional[str] = None
    pre_kill_alternate: bool = False
    stream: str = "churn-schedule"

    def setup(self, ctx: ScenarioContext) -> None:
        if not self.pre_kill_alternate:
            return
        for node in resolve_nodes(self.nodes, ctx.world.node_ids)[::2]:
            ctx.world.crash(node)
            ctx.note_fault(node, observable=False)

    def on_phase_start(self, ctx: ScenarioContext, phase: Phase) -> None:
        if phase.name != self.phase:
            return
        world = ctx.world
        rng = ctx.stream(self.stream)
        mean_dwell = self.half_life_minutes * MINUTE_MS / 2.0
        stop_at = ctx.phase_end_ms[self.end_phase or self.phase] + 1.0

        def schedule_flip(node) -> None:
            delay = rng.expovariate(1.0 / mean_dwell)
            when = world.sim.now + delay
            if when >= stop_at:
                return
            world.sim.call_at(when, lambda: flip(node))

        def flip(node) -> None:
            host = world.host(node)
            if host.alive:
                world.crash(node)
                ctx.note_fault(node, observable=False)
            else:
                world.restart(node)
            schedule_flip(node)

        for node in resolve_nodes(self.nodes, world.node_ids):
            schedule_flip(node)


@dataclass
class CrashRecoverWave(Track):
    """A correlated wave: ``count`` nodes crash together, then all restart.

    With ``crash_phase=None`` the wave crashes during setup — the nodes
    sit out the early phases and their simultaneous restart at
    ``recover_phase`` models a *flash crowd* of joins.  With a crash
    phase, it models a mass crash-recover event (a power cycle).
    ``spacing_ms`` staggers the restarts.
    """

    count: int
    recover_phase: str
    crash_phase: Optional[str] = None
    spacing_ms: float = 0.0
    nodes: NodeSelector = "all"
    stream: str = "scenario-churn"

    def _victims(self, ctx: ScenarioContext) -> List[NodeId]:
        victims = ctx.scratch.get(id(self))  # repro: allow[DH004] scratch key, never ordered
        if victims is None:
            pool = resolve_nodes(self.nodes, ctx.world.node_ids)
            victims = ctx.stream(self.stream).sample(pool, self.count)
            ctx.scratch[id(self)] = victims  # repro: allow[DH004] scratch key, never ordered
        return victims

    def _crash_all(self, ctx: ScenarioContext) -> None:
        for node in self._victims(ctx):
            ctx.note_fault(node, observable=False)
            ctx.world.crash(node)

    def setup(self, ctx: ScenarioContext) -> None:
        if self.crash_phase is None:
            self._crash_all(ctx)

    def on_phase_start(self, ctx: ScenarioContext, phase: Phase) -> None:
        if phase.name == self.crash_phase:
            self._crash_all(ctx)
        if phase.name == self.recover_phase:
            world = ctx.world
            for index, node in enumerate(self._victims(ctx)):
                world.sim.call_after(
                    index * self.spacing_ms, lambda n=node: world.restart(n)
                )
            ctx.extra["wave_size"] = self.count


# ----------------------------------------------------------------------
# Fault tracks
# ----------------------------------------------------------------------
def _reconnect_and_rejoin(world, node_id) -> None:
    """Heal a disconnected host: plug the network back in and rejoin the
    overlay if the outage got the node evicted (peers time it out and
    drop it from their rings; without a rejoin it would stay a zombie —
    reachable but overlay-invisible — for the rest of the run)."""
    world.net.reconnect_host(node_id)
    node = world.overlay_node(node_id)
    if not node.joined:
        node.join()


@dataclass
class DisconnectWave(Track):
    """Disconnect ``count`` hosts at a phase boundary (Fig 9's failure).

    ``contiguous=True`` picks one contiguous block of the node list —
    virtual nodes sharing a physical machine or rack, the correlated
    variant — instead of an independent random sample.  Optionally
    reconnects everyone after ``reconnect_after_minutes``.
    """

    count: int
    phase: str
    nodes: NodeSelector = "all"
    contiguous: bool = False
    reconnect_after_minutes: Optional[float] = None
    stream: str = "scenario-faults"

    def on_phase_start(self, ctx: ScenarioContext, phase: Phase) -> None:
        if phase.name != self.phase:
            return
        world = ctx.world
        pool = resolve_nodes(self.nodes, world.node_ids)
        rng = ctx.stream(self.stream)
        if self.contiguous:
            start = rng.randrange(max(1, len(pool) - self.count + 1))
            victims = set(pool[start : start + self.count])
        else:
            victims = set(rng.sample(pool, self.count))
        for victim in victims:
            ctx.note_fault(victim, observable=False)
        for victim in victims:
            world.disconnect(victim)
        if self.reconnect_after_minutes is not None:
            def heal() -> None:
                for victim in victims:
                    _reconnect_and_rejoin(world, victim)

            world.sim.call_after(self.reconnect_after_minutes * MINUTE_MS, heal)


@dataclass
class RollingDisconnect(Track):
    """Disconnect one node every ``interval_minutes``, healing each after
    ``down_minutes`` — a rolling maintenance/outage pattern."""

    count: int
    phase: str
    interval_minutes: float = 1.0
    down_minutes: float = 2.0
    nodes: NodeSelector = "all"
    stream: str = "scenario-faults"

    def on_phase_start(self, ctx: ScenarioContext, phase: Phase) -> None:
        if phase.name != self.phase:
            return
        world = ctx.world
        pool = resolve_nodes(self.nodes, world.node_ids)
        victims = ctx.stream(self.stream).sample(pool, self.count)

        def hit(node) -> None:
            ctx.note_fault(node, observable=False)
            world.disconnect(node)
            world.sim.call_after(
                self.down_minutes * MINUTE_MS,
                lambda: _reconnect_and_rejoin(world, node),
            )

        for index, node in enumerate(victims):
            world.sim.call_after(index * self.interval_minutes * MINUTE_MS, lambda n=node: hit(n))


@dataclass
class Partition(Track):
    """Split the host set into isolated groups, then heal (§3.5).

    The node list is cut contiguously by ``fractions`` at the start of
    ``phase``; groups whose members straddle a cut are declared doomed
    (their notification latency is measured from partition onset).
    Healing happens ``heal_after_minutes`` into the phase, or at phase
    end when unset.  Reports ``partition_spanning_groups``.
    """

    phase: str
    fractions: Tuple[float, ...] = (0.5, 0.5)
    heal_after_minutes: Optional[float] = None

    def __post_init__(self) -> None:
        if len(self.fractions) < 2:
            raise ValueError("a partition needs at least two groups")
        if abs(sum(self.fractions) - 1.0) > 1e-9:
            raise ValueError(f"partition fractions must sum to 1: {self.fractions}")

    def _sides(self, node_ids: Sequence[NodeId]) -> List[List[NodeId]]:
        sides: List[List[NodeId]] = []
        start = 0
        for index, fraction in enumerate(self.fractions):
            if index == len(self.fractions) - 1:
                end = len(node_ids)
            else:
                end = start + int(round(fraction * len(node_ids)))
            sides.append(list(node_ids[start:end]))
            start = end
        return sides

    def on_phase_start(self, ctx: ScenarioContext, phase: Phase) -> None:
        if phase.name != self.phase:
            return
        world = ctx.world
        sides = self._sides(world.node_ids)
        side_of = {node: index for index, side in enumerate(sides) for node in side}
        world.net.faults.partition(sides)
        spanning = 0
        for fuse_id, (_root, members) in ctx.groups.items():
            if len({side_of[m] for m in members if m in side_of}) > 1:
                ctx.expect_group_failure(fuse_id)
                spanning += 1
        ctx.extra["partition_spanning_groups"] = spanning
        if self.heal_after_minutes is not None:
            world.sim.call_after(
                self.heal_after_minutes * MINUTE_MS, world.net.faults.heal_partition
            )

    def on_phase_end(self, ctx: ScenarioContext, phase: Phase) -> None:
        if phase.name == self.phase and self.heal_after_minutes is None:
            ctx.world.net.faults.heal_partition()


@dataclass
class AsymmetricPartition(Track):
    """A one-way partition: side A's packets to side B vanish, B→A flows.

    The transport was historically symmetric; this track exercises the
    asymmetric half of §3.5's "arbitrary network failures" (a
    misconfigured firewall).  The node list is cut contiguously at
    ``fraction``; at the start of ``phase`` every (A→B) direction is
    blocked via :meth:`FaultInjector.block_one_way`.  Both sides still
    *detect*: B times out A's silent pings, and A never sees B's acks —
    so groups spanning the cut are declared doomed and the one-way
    agreement guarantee must notify every observable member.

    Per-member deliveries on spanning groups are counted through the
    group handles' ``on_member_notified`` subscription and reported as
    ``asym_member_notifications`` (alongside ``asym_spanning_groups``).
    Healing happens ``heal_after_minutes`` into the phase, or at phase
    end when unset.
    """

    phase: str
    fraction: float = 0.5
    heal_after_minutes: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1): {self.fraction}")

    def _heal(self, ctx: ScenarioContext) -> None:
        sides = ctx.scratch.pop(("asym", id(self)), None)  # repro: allow[DH004] scratch key, never ordered
        if sides is not None:
            ctx.world.net.faults.unblock_one_way_sets(*sides)

    def on_phase_start(self, ctx: ScenarioContext, phase: Phase) -> None:
        if phase.name != self.phase:
            return
        world = ctx.world
        cut = int(round(self.fraction * len(world.node_ids)))
        cut = min(max(cut, 1), len(world.node_ids) - 1)
        side_a, side_b = world.node_ids[:cut], world.node_ids[cut:]
        # One (side, side) cut, not |A|x|B| enumerated pairs: O(n) at any
        # world size.
        world.net.faults.block_one_way_sets(side_a, side_b)
        ctx.scratch[("asym", id(self))] = (side_a, side_b)  # repro: allow[DH004] scratch key, never ordered
        ctx.extra.setdefault("asym_member_notifications", 0)

        def count_delivery(_group, _node, _reason) -> None:
            ctx.extra["asym_member_notifications"] += 1

        b_side = set(side_b)
        spanning = 0
        for fuse_id, (_root, members) in ctx.groups.items():
            if world.ledger.status_of(fuse_id) is GroupStatus.NOTIFIED:
                continue  # already failed before the cut: not doomed by it
            sides = {m in b_side for m in members}
            if len(sides) > 1:
                ctx.expect_group_failure(fuse_id)
                spanning += 1
                handle = world.ledger.handle(fuse_id)
                if handle is not None:
                    handle.on_member_notified(count_delivery)
        ctx.extra["asym_spanning_groups"] = spanning
        if self.heal_after_minutes is not None:
            world.sim.call_after(
                self.heal_after_minutes * MINUTE_MS, lambda: self._heal(ctx)
            )

    def on_phase_end(self, ctx: ScenarioContext, phase: Phase) -> None:
        if phase.name == self.phase and self.heal_after_minutes is None:
            self._heal(ctx)


@dataclass
class IntransitivePairs(Track):
    """Block random host pairs — §2/§3.4's intransitive failures.

    Both endpoints stay reachable from everyone else; only the pair is
    cut.  FUSE's delegate tree need not traverse the broken pair, so —
    exactly as §3.4 prescribes — the *application* detects the break on
    send and calls SignalFailure: for every group containing both
    endpoints, one endpoint signals after ``detect_minutes``.  Reports
    ``blocked_pairs``.

    ``within_groups=True`` draws each pair as (root, member) of a
    registered group, guaranteeing the break cuts through a live group;
    otherwise pairs are sampled from ``nodes`` at large — which almost
    never intersects a group, demonstrating that intransitive failures
    do *not* take down healthy groups.
    """

    n_pairs: int
    phase: str
    detect_minutes: float = 1.0
    signal: bool = True
    within_groups: bool = False
    nodes: NodeSelector = "all"
    stream: str = "scenario-faults"

    def on_phase_start(self, ctx: ScenarioContext, phase: Phase) -> None:
        if phase.name != self.phase:
            return
        world = ctx.world
        rng = ctx.stream(self.stream)
        if self.within_groups:
            fids = rng.sample(sorted(ctx.groups), min(self.n_pairs, len(ctx.groups)))
            pairs = []
            for fid in fids:
                root, members = ctx.groups[fid]
                pairs.append((root, rng.choice([m for m in members if m != root])))
        else:
            pool = resolve_nodes(self.nodes, world.node_ids)
            chosen = rng.sample(pool, 2 * self.n_pairs)
            pairs = [(chosen[2 * i], chosen[2 * i + 1]) for i in range(self.n_pairs)]
        for a, b in pairs:
            world.net.faults.block_pair(a, b)
        ctx.extra["blocked_pairs"] = len(pairs)
        if not self.signal:
            return
        for a, b in pairs:
            for fuse_id, (_root, members) in ctx.groups.items():
                if a in members and b in members:
                    ctx.expect_group_failure(fuse_id)
                    world.sim.call_after(
                        self.detect_minutes * MINUTE_MS,
                        lambda fid=fuse_id, node=a: world.fuse(node).signal_failure(fid)
                        if fid in world.fuse(node).groups
                        else None,
                    )


@dataclass
class LinkLossRamp(Track):
    """Time-varying uniform per-link loss (the Fig 11/12 knob, animated).

    Loss steps linearly from ``start_loss`` toward ``end_loss`` across
    ``phase`` in ``steps`` increments, the first applied at phase start
    and the last reaching ``end_loss``.  ``restore_loss`` (if set) is
    applied at phase end.  Reports ``final_link_loss``.
    """

    phase: str
    start_loss: float = 0.0
    end_loss: float = 0.016
    steps: int = 4
    restore_loss: Optional[float] = None

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("loss ramp needs at least one step")

    def on_phase_start(self, ctx: ScenarioContext, phase: Phase) -> None:
        if phase.name != self.phase:
            return
        world = ctx.world
        phase_ms = ctx.phase_end_ms[phase.name] - ctx.phase_start_ms[phase.name]
        span = self.end_loss - self.start_loss
        for i in range(self.steps):
            level = self.start_loss + span * (i + 1) / self.steps
            when = ctx.phase_start_ms[phase.name] + i * phase_ms / self.steps
            world.sim.call_at(
                when, lambda lv=level: world.topology.set_uniform_loss(lv)
            )
        ctx.extra["final_link_loss"] = self.end_loss

    def on_phase_end(self, ctx: ScenarioContext, phase: Phase) -> None:
        if phase.name == self.phase and self.restore_loss is not None:
            ctx.world.topology.set_uniform_loss(self.restore_loss)


@dataclass
class BurstLoss(Track):
    """Gilbert-Elliott correlated loss bursts on every link (adversarial
    Fig 12).

    At the start of ``phase`` every link gets an independent two-state
    burst chain (:class:`repro.net.topology.GilbertElliott`): per packet
    it drops with ``loss_good``/``loss_bad`` depending on state and flips
    state with ``p_g2b``/``p_b2g``.  Long bad dwells (small ``p_b2g``)
    concentrate the same average loss into runs that eat a whole
    retransmission budget — socket breaks, and with them loss-induced
    false positives, at average rates the memoryless Fig 12 analysis
    masks.  Bursty links are heterogeneity: the lane plane ejects every
    absorbed node when the burst installs and refuses re-absorption until
    ``restore`` clears it at phase end.  Reports ``burst_links``.
    """

    phase: str
    p_g2b: float = 0.02
    p_b2g: float = 0.25
    loss_good: float = 0.0
    loss_bad: float = 0.35
    restore: bool = True

    def on_phase_start(self, ctx: ScenarioContext, phase: Phase) -> None:
        if phase.name != self.phase:
            return
        ctx.extra["burst_links"] = ctx.world.topology.set_uniform_burst(
            self.p_g2b, self.p_b2g, self.loss_good, self.loss_bad
        )

    def on_phase_end(self, ctx: ScenarioContext, phase: Phase) -> None:
        if phase.name == self.phase and self.restore:
            ctx.world.topology.clear_burst()


@dataclass
class _PerfWindow(Track):
    """Shared machinery for node-scoped performance-fault windows."""

    count: int
    phase: str
    factor: float = 4.0
    heal_after_minutes: Optional[float] = None
    nodes: NodeSelector = "all"
    stream: str = "scenario-perf"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("a performance window needs at least one victim")

    def _apply(self, faults, node: NodeId) -> None:
        raise NotImplementedError

    def _restore(self, faults, node: NodeId) -> None:
        raise NotImplementedError

    def _heal(self, ctx: ScenarioContext) -> None:
        victims = ctx.scratch.pop(("perf", id(self)), None)  # repro: allow[DH004] scratch key, never ordered
        if victims is not None:
            faults = ctx.world.net.faults
            for node in victims:
                self._restore(faults, node)

    def on_phase_start(self, ctx: ScenarioContext, phase: Phase) -> None:
        if phase.name != self.phase:
            return
        world = ctx.world
        pool = resolve_nodes(self.nodes, world.node_ids)
        victims = ctx.stream(self.stream).sample(pool, self.count)
        faults = world.net.faults
        for node in victims:
            self._apply(faults, node)
        ctx.scratch[("perf", id(self))] = victims  # repro: allow[DH004] scratch key, never ordered
        if self.heal_after_minutes is not None:
            world.sim.call_after(
                self.heal_after_minutes * MINUTE_MS, lambda: self._heal(ctx)
            )

    def on_phase_end(self, ctx: ScenarioContext, phase: Phase) -> None:
        if phase.name == self.phase and self.heal_after_minutes is None:
            self._heal(ctx)


@dataclass
class LatencyInflation(_PerfWindow):
    """Inflate packet latency to/from ``count`` victims by ``factor``.

    A performance fault, not a reachability fault: every packet still
    arrives, just late.  Factors large enough to push a ping round trip
    past the liveness timeout manufacture detections that the ledger
    classifies ``false_positive`` — no member is crashed, disconnected,
    or gray, and no path fault exists — which is precisely Fig 12's
    false-positive bound probed from the timing side instead of the loss
    side.  The lane plane stays scalar for the duration (inflated timing
    is per-endpoint heterogeneity).  Victims heal ``heal_after_minutes``
    into the phase, or at phase end.  Reports ``inflated_nodes``.
    """

    def _apply(self, faults, node: NodeId) -> None:
        faults.inflate_latency(node, self.factor)

    def _restore(self, faults, node: NodeId) -> None:
        faults.restore_latency(node)

    def on_phase_start(self, ctx: ScenarioContext, phase: Phase) -> None:
        super().on_phase_start(ctx, phase)
        if phase.name == self.phase:
            ctx.extra["inflated_nodes"] = self.count


@dataclass
class BandwidthContention(_PerfWindow):
    """Multiply ``count`` victims' per-message send overhead by ``factor``.

    Models a congested uplink: the victim's sends serialize ``factor``
    times slower, so its outbound queue — pings, acks, and FUSE control
    traffic alike — backs up.  Severe contention delays acks past the
    ping timeout and manufactures false positives without dropping a
    packet.  Heals like :class:`LatencyInflation`.  Reports
    ``contended_nodes``.
    """

    factor: float = 8.0

    def _apply(self, faults, node: NodeId) -> None:
        faults.contend_bandwidth(node, self.factor)

    def _restore(self, faults, node: NodeId) -> None:
        faults.restore_bandwidth(node)

    def on_phase_start(self, ctx: ScenarioContext, phase: Phase) -> None:
        super().on_phase_start(ctx, phase)
        if phase.name == self.phase:
            ctx.extra["contended_nodes"] = self.count


@dataclass
class GrayFailure(Track):
    """Gray-fail ``count`` nodes: liveness green, application blackholed.

    The nastiest case in the fault vocabulary: the victim keeps answering
    overlay pings — FUSE's checking trees stay green, no delegate ever
    suspects it — while every inbound application-class message is
    silently dropped (:meth:`FaultInjector.gray_fail`).  Detection must
    come from the application, exactly §3.4's prescription: for every
    registered group containing a victim, one *live* member calls
    SignalFailure after ``detect_minutes`` (its requests to the victim
    went unanswered).  Victims are unobservable — they cannot receive
    their own notifications — and groups whose members are all gray are
    skipped (no live member remains to detect anything).  The signaller's
    local failure spreads soft notifications through the checking tree;
    members that cannot reach a gray root harden via member-repair
    timeouts, so every live member is still notified — the one-way
    agreement guarantee under a fault the liveness plane cannot see.
    Heals ``heal_after_minutes`` into the phase, or never (gray nodes
    stay gray; ``restore=False`` matches a wedged process that nobody
    restarts).  Reports ``gray_nodes``.
    """

    count: int
    phase: str
    detect_minutes: float = 1.0
    signal: bool = True
    heal_after_minutes: Optional[float] = None
    nodes: NodeSelector = "all"
    stream: str = "scenario-faults"

    def on_phase_start(self, ctx: ScenarioContext, phase: Phase) -> None:
        if phase.name != self.phase:
            return
        world = ctx.world
        pool = resolve_nodes(self.nodes, world.node_ids)
        rng = ctx.stream(self.stream)
        victims = rng.sample(pool, self.count)
        faults = world.net.faults
        for victim in victims:
            ctx.note_fault(victim, observable=False)
        for victim in victims:
            faults.gray_fail(victim)
        ctx.extra["gray_nodes"] = len(victims)
        gray = set(victims)
        if self.signal:
            for fuse_id, (_root, members) in ctx.groups.items():
                if ctx.world.ledger.status_of(fuse_id) is GroupStatus.NOTIFIED:
                    continue  # already failed before the gray window
                if not any(m in gray for m in members):
                    continue
                live = [m for m in members if m not in gray]
                if not live:
                    continue  # nobody left to detect; delivery is vacuous
                ctx.expect_group_failure(fuse_id)
                signaller = rng.choice(live)
                world.sim.call_after(
                    self.detect_minutes * MINUTE_MS,
                    lambda fid=fuse_id, node=signaller: world.fuse(node).signal_failure(fid)
                    if fid in world.fuse(node).groups
                    else None,
                )
        if self.heal_after_minutes is not None:
            def heal() -> None:
                for victim in victims:
                    faults.gray_recover(victim)

            world.sim.call_after(self.heal_after_minutes * MINUTE_MS, heal)

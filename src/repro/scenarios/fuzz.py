"""Coverage-guided scenario fuzzer: ``python -m repro.scenarios.fuzz``.

The fuzzer hunts the corners no hand-written scenario reaches: it draws
thousands of seeded random-but-valid specs from the **full** track
vocabulary (:data:`repro.scenarios.spec.TRACK_KINDS` — partitions,
asymmetric cuts, intransitive pairs, loss ramps, Gilbert-Elliott bursts,
latency/bandwidth windows, gray failures, churn), validates each through
the hard spec loader, executes it, and checks §3's one-way agreement
against the world's :class:`~repro.fuse.api.GroupLedger`:

* **delivery** — every observable member of every group hit by an
  injected fault records a notification;
* **exactly-once** — no duplicate member-level ledger rows;
* **no spurious** — specs whose faults are all node-scoped (crash /
  disconnect waves) must produce zero spurious group notifications
  (path- and performance-fault specs may legitimately brush healthy
  groups — Fig 12's false positives are the *point* of those tracks);
* **accounting** — created + failed-create groups add up.

**Coverage guidance.**  Each run's coverage signature is the set of
``(NotificationReason, phase)`` combinations its ledger recorded.  Specs
that discover a previously unseen combination enter the seed corpus;
when unseen *reasons* remain, a fraction of later trials mutate a corpus
parent — biased toward track kinds known to produce the missing reasons
— instead of generating from scratch.  The corpus persists across runs
via ``--corpus`` (JSON), so a nightly job keeps deepening the same
frontier instead of rediscovering it.

**Shrinking.**  On failure the spec is shrunk to a minimal repro by
greedy fixpoint: try dropping each track, dropping each phase, halving
every phase duration, and halving the group count — keeping a candidate
only if it still validates through the spec loader *and* still violates
the same invariant categories.  The shrunken spec is written as JSON
(``--out``), directly replayable with ``python -m repro.scenarios.run``.

Determinism: trial ``i`` is fully determined by ``--seed-base + i`` and
the coverage state at its batch boundary; batches have a fixed size, so
results are byte-identical for any ``--jobs``.
"""

from __future__ import annotations

import argparse
import copy
import json
import pathlib
import random
import sys
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.fuse.api import NotificationReason
from repro.scenarios.spec import SpecError, TRACK_KINDS, scenario_from_dict
from repro.scenarios.timeline import execute_with_context

CoverageKey = Tuple[str, str]  # (NotificationReason.value, phase name)

#: Phase names every generated spec uses (tracks reference them by name).
WARMUP, FAULT, DRAIN = "warmup", "fault", "drain"

#: Shrinking never takes a phase below this (a zero-length phase hides
#: the fault it was supposed to host).
DURATION_FLOOR_MINUTES = 0.25

#: Track kinds that only create load, never faults.
WORKLOAD_KINDS = frozenset({"groups", "svtree"})

#: Fault kinds that touch *nodes* (crash/disconnect semantics) and
#: nothing else.  Specs drawing only from these must be spurious-free;
#: everything else (paths, loss, bursts, perf windows, gray) may
#: legitimately notify groups its faults brush.
NODE_SCOPED_KINDS = frozenset(
    {"disconnect-wave", "crash-recover-wave", "rolling-disconnect", "poisson-churn"}
)


# ----------------------------------------------------------------------
# Spec generation vocabulary
# ----------------------------------------------------------------------
def _mk_disconnect_wave(rng: random.Random) -> Dict[str, Any]:
    return {"kind": "disconnect-wave", "count": rng.randint(1, 2), "phase": FAULT}


def _mk_crash_recover_wave(rng: random.Random) -> Dict[str, Any]:
    return {
        "kind": "crash-recover-wave",
        "count": 2,
        "crash_phase": FAULT,
        "recover_phase": DRAIN,
        "spacing_ms": float(rng.choice([0.0, 200.0])),
    }


def _mk_rolling_disconnect(rng: random.Random) -> Dict[str, Any]:
    return {
        "kind": "rolling-disconnect",
        "count": 2,
        "phase": FAULT,
        "interval_minutes": 0.5,
        "down_minutes": rng.choice([1.5, 2.0]),
    }


def _mk_partition(rng: random.Random) -> Dict[str, Any]:
    return {"kind": "partition", "phase": FAULT, "fractions": [0.5, 0.5]}


def _mk_asymmetric(rng: random.Random) -> Dict[str, Any]:
    return {
        "kind": "asymmetric-partition",
        "phase": FAULT,
        "fraction": rng.choice([0.4, 0.5]),
    }


def _mk_intransitive(rng: random.Random) -> Dict[str, Any]:
    return {
        "kind": "intransitive-pairs",
        "n_pairs": 1,
        "phase": FAULT,
        "detect_minutes": 0.5,
        "within_groups": True,
    }


def _mk_link_loss(rng: random.Random) -> Dict[str, Any]:
    return {
        "kind": "link-loss",
        "phase": FAULT,
        "end_loss": rng.choice([0.008, 0.016, 0.04]),
        "restore_loss": 0.0,
    }


def _mk_burst_loss(rng: random.Random) -> Dict[str, Any]:
    return {
        "kind": "burst-loss",
        "phase": FAULT,
        "p_g2b": rng.choice([0.02, 0.05]),
        "p_b2g": rng.choice([0.1, 0.25]),
        "loss_bad": rng.choice([0.35, 0.6]),
    }


def _mk_latency_inflation(rng: random.Random) -> Dict[str, Any]:
    # Factors span mild degradation to past-the-ping-timeout adversarial.
    return {
        "kind": "latency-inflation",
        "count": rng.randint(2, 3),
        "phase": FAULT,
        "factor": float(rng.choice([4.0, 50.0, 400.0])),
    }


def _mk_bandwidth_contention(rng: random.Random) -> Dict[str, Any]:
    return {
        "kind": "bandwidth-contention",
        "count": rng.randint(2, 3),
        "phase": FAULT,
        "factor": float(rng.choice([8.0, 1000.0, 8000.0])),
    }


def _mk_gray_failure(rng: random.Random) -> Dict[str, Any]:
    return {
        "kind": "gray-failure",
        "count": rng.randint(1, 2),
        "phase": FAULT,
        "detect_minutes": 0.5,
    }


class _FaultMaker(NamedTuple):
    make: Callable[[random.Random], Dict[str, Any]]
    #: NotificationReason values this kind tends to produce — the hint
    #: table coverage-guided mutation steers by.
    reasons: FrozenSet[str]


FAULT_MAKERS: Dict[str, _FaultMaker] = {
    "disconnect-wave": _FaultMaker(_mk_disconnect_wave, frozenset({"disconnect"})),
    "crash-recover-wave": _FaultMaker(_mk_crash_recover_wave, frozenset({"crash"})),
    "rolling-disconnect": _FaultMaker(_mk_rolling_disconnect, frozenset({"disconnect"})),
    "partition": _FaultMaker(
        _mk_partition, frozenset({"link_timeout", "repair_failed", "reconcile"})
    ),
    "asymmetric-partition": _FaultMaker(
        _mk_asymmetric, frozenset({"link_timeout", "repair_failed", "reconcile"})
    ),
    "intransitive-pairs": _FaultMaker(_mk_intransitive, frozenset({"signalled"})),
    "link-loss": _FaultMaker(_mk_link_loss, frozenset({"false_positive"})),
    "burst-loss": _FaultMaker(_mk_burst_loss, frozenset({"false_positive"})),
    "latency-inflation": _FaultMaker(
        _mk_latency_inflation, frozenset({"false_positive"})
    ),
    "bandwidth-contention": _FaultMaker(
        _mk_bandwidth_contention, frozenset({"false_positive"})
    ),
    "gray-failure": _FaultMaker(
        _mk_gray_failure, frozenset({"gray_fail", "signalled"})
    ),
}

# Every fault maker must name a registered track kind, and every fault
# kind in the registry must have a maker (workloads excepted) — keeps
# the fuzz vocabulary in lockstep with the track vocabulary.
assert set(FAULT_MAKERS) == set(TRACK_KINDS) - WORKLOAD_KINDS - {"poisson-churn"}, (
    "fuzz vocabulary out of sync with TRACK_KINDS"
)


def generate_spec(seed: int, quick: bool = True) -> Dict[str, Any]:
    """One random-but-valid spec dict, fully determined by ``seed``."""
    rng = random.Random(seed)
    if quick:
        n_nodes = rng.choice([12, 14])
        n_groups = rng.randint(2, 4)
        group_size = rng.choice([3, 4])
    else:
        n_nodes = rng.choice([16, 20, 24])
        n_groups = rng.randint(4, 8)
        group_size = rng.choice([3, 4, 5])
    tracks: List[Dict[str, Any]] = [
        {"kind": "groups", "n_groups": n_groups, "group_size": group_size}
    ]
    kinds = sorted(FAULT_MAKERS)
    for kind in rng.sample(kinds, rng.randint(1, 2)):
        tracks.append(FAULT_MAKERS[kind].make(rng))
    return {
        "scenario": {"name": f"fuzz-{seed}", "n_nodes": n_nodes, "seed": seed},
        "phase": [
            {"name": WARMUP, "minutes": rng.choice([1.0, 1.5])},
            {"name": FAULT, "minutes": rng.choice([2.0, 3.0]), "measure": True},
            {"name": DRAIN, "minutes": 8.0},
        ],
        "track": tracks,
    }


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------
def spec_fault_kinds(spec: Mapping[str, Any]) -> Set[str]:
    return {
        t.get("kind") for t in spec.get("track") or () if t.get("kind") not in WORKLOAD_KINDS
    }


def spec_is_node_only(spec: Mapping[str, Any]) -> bool:
    """True when every fault track is node-scoped (strict spurious check)."""
    return spec_fault_kinds(spec) <= NODE_SCOPED_KINDS


def check_invariants(spec: Mapping[str, Any], measurements: Mapping[str, Any], ctx) -> List[str]:
    """One-way agreement violations for one executed spec.

    Each violation string starts with a stable category prefix
    (``exactly-once:``, ``delivery:``, ``spurious:``, ``accounting:``) —
    the shrinker keys on the prefix to preserve the failure mode while
    minimizing.
    """
    violations: List[str] = []
    ledger = ctx.world.ledger

    dupes = [
        d for d in ledger.duplicates if d.role != "delegate" and d.fuse_id in ctx.groups
    ]
    if dupes:
        violations.append(f"exactly-once: duplicate notifications {dupes[:3]!r}")

    for fid, (_root, members) in ctx.groups.items():
        if not any(m in ctx.fault_times for m in members) and fid not in ctx.group_fault_times:
            continue
        times = ledger.notification_times(fid)
        missing = [m for m in members if m not in ctx.unobservable and m not in times]
        if missing:
            violations.append(f"delivery: group {fid} missed members {missing}")

    if spec_is_node_only(spec) and measurements["spurious_groups"] != 0:
        violations.append(
            f"spurious: {measurements['spurious_groups']} group(s) notified "
            "with only node-scoped faults injected"
        )

    group_tracks = [t for t in spec.get("track") or () if t.get("kind") == "groups"]
    if group_tracks and not any(t.get("rate_per_minute") for t in group_tracks):
        expected = sum(t["n_groups"] for t in group_tracks)
        total = measurements["groups_created"] + measurements["groups_failed"]
        if total != expected:
            violations.append(
                f"accounting: {total} created+failed groups != {expected} requested"
            )
    return violations


class FuzzResult(NamedTuple):
    spec: Dict[str, Any]
    violations: List[str]
    coverage: FrozenSet[CoverageKey]
    measurements: Dict[str, Any]


def run_spec(spec: Mapping[str, Any]) -> FuzzResult:
    """Validate, execute, and invariant-check one spec."""
    scenario = scenario_from_dict(spec)  # hard validation: bad specs fail loudly
    measurements, ctx = execute_with_context(scenario)
    coverage = frozenset(
        (rec.reason.value, rec.phase) for rec in ctx.world.ledger.notes
    )
    violations = check_invariants(spec, measurements, ctx)
    # Drop the non-JSON-serializable bits before the result crosses a
    # process boundary (multiprocessing workers return FuzzResults).
    slim = {
        k: v for k, v in measurements.items() if isinstance(v, (int, float, str, bool))
    }
    return FuzzResult(dict(spec), violations, coverage, slim)


def violation_categories(violations: Sequence[str]) -> FrozenSet[str]:
    return frozenset(v.split(":", 1)[0] for v in violations)


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def shrink_candidates(spec: Mapping[str, Any]):
    """Yield ``(step_name, candidate_spec)`` reductions, deterministic order.

    Candidates may be invalid (e.g. dropping a phase a track references
    in a way the loader rejects) — the caller re-validates through
    :func:`scenario_from_dict` and skips rejects.
    """
    tracks = list(spec.get("track") or ())
    phases = list(spec.get("phase") or ())
    for i in range(len(tracks)):
        kind = tracks[i].get("kind", "?")
        yield (
            f"drop-track[{i}:{kind}]",
            {**spec, "track": tracks[:i] + tracks[i + 1 :]},
        )
    if len(phases) > 1:
        for i in range(len(phases)):
            name = phases[i].get("name", "?")
            yield (
                f"drop-phase[{i}:{name}]",
                {**spec, "phase": phases[:i] + phases[i + 1 :]},
            )
    halved = []
    changed = False
    for p in phases:
        minutes = p.get("minutes", 0.0)
        if minutes / 2.0 >= DURATION_FLOOR_MINUTES:
            halved.append({**p, "minutes": minutes / 2.0})
            changed = True
        else:
            halved.append(dict(p))
    if changed:
        yield ("halve-durations", {**spec, "phase": halved})
    for i, t in enumerate(tracks):
        if t.get("kind") == "groups" and t.get("n_groups", 0) > 1:
            smaller = {**t, "n_groups": t["n_groups"] // 2}
            yield (
                f"halve-groups[{i}]",
                {**spec, "track": tracks[:i] + [smaller] + tracks[i + 1 :]},
            )


def shrink(
    spec: Mapping[str, Any],
    still_fails: Callable[[Dict[str, Any]], bool],
    max_steps: int = 200,
) -> Tuple[Dict[str, Any], List[str]]:
    """Greedy fixpoint shrink: apply the first reduction that still fails.

    Every candidate is re-validated through the hard spec loader before
    being tried; ``still_fails`` decides whether the failure survives.
    Returns ``(minimal_spec, applied_step_names)``.  The result is
    1-minimal with respect to :func:`shrink_candidates`: no single
    further reduction both validates and still fails.
    """
    current = copy.deepcopy(dict(spec))
    steps: List[str] = []
    progress = True
    while progress and len(steps) < max_steps:
        progress = False
        for name, candidate in shrink_candidates(current):
            candidate = copy.deepcopy(candidate)
            try:
                scenario_from_dict(candidate)
            except SpecError:
                continue  # reduction made the spec invalid; skip it
            if still_fails(candidate):
                current = candidate
                steps.append(name)
                progress = True
                break
    return current, steps


def default_still_fails(original_categories: FrozenSet[str]) -> Callable[[Dict[str, Any]], bool]:
    """Predicate preserving the original failure mode during shrinking.

    A candidate "still fails" when it reproduces at least one of the
    original violation categories; candidates that merely fail some
    *other* way (or crash) are rejected so the minimal repro demonstrates
    the same bug the fuzzer found.
    """

    def predicate(candidate: Dict[str, Any]) -> bool:
        try:
            result = run_spec(candidate)
        except Exception:
            return False
        return bool(violation_categories(result.violations) & original_categories)

    return predicate


# ----------------------------------------------------------------------
# Coverage-guided mutation
# ----------------------------------------------------------------------
def all_reason_values() -> Set[str]:
    return {r.value for r in NotificationReason if r is not NotificationReason.UNKNOWN}


def mutate_spec(
    parent: Mapping[str, Any], rng: random.Random, unseen_reasons: Set[str]
) -> Dict[str, Any]:
    """Mutate a corpus parent, biased toward tracks hitting unseen reasons."""
    spec = copy.deepcopy(dict(parent))
    tracks = list(spec.get("track") or ())
    fault_indexes = [
        i for i, t in enumerate(tracks) if t.get("kind") not in WORKLOAD_KINDS
    ]
    targeted = sorted(
        kind for kind, maker in FAULT_MAKERS.items() if maker.reasons & unseen_reasons
    )
    present = {t.get("kind") for t in tracks}
    addable = [k for k in targeted if k not in present] or sorted(
        set(FAULT_MAKERS) - present
    )

    ops = ["reseed"]
    if addable and len(fault_indexes) < 3:
        ops.append("add-track")
        ops.append("add-track")  # weight toward widening the vocabulary
    if len(fault_indexes) >= 2:
        ops.append("drop-track")
    if fault_indexes:
        ops.append("tweak-track")
    op = rng.choice(ops)

    if op == "add-track":
        kind = rng.choice(addable)
        tracks.append(FAULT_MAKERS[kind].make(rng))
        spec["track"] = tracks
    elif op == "drop-track":
        tracks.pop(rng.choice(fault_indexes))
        spec["track"] = tracks
    elif op == "tweak-track":
        index = rng.choice(fault_indexes)
        kind = tracks[index].get("kind")
        # Regenerate the track from its maker with fresh randomness —
        # a structured "tweak every numeric field at once".
        tracks[index] = FAULT_MAKERS[kind].make(rng)
        spec["track"] = tracks
    # Always reseed the world so the mutant explores a different
    # trajectory even when the structural edit is a no-op.
    header = dict(spec["scenario"])
    header["seed"] = rng.randrange(1 << 30)
    header["name"] = f"{header.get('name', 'fuzz')}-mut"
    spec["scenario"] = header
    return spec


# ----------------------------------------------------------------------
# Corpus
# ----------------------------------------------------------------------
CORPUS_VERSION = 1


def load_corpus(path: pathlib.Path) -> Tuple[List[Dict[str, Any]], Set[CoverageKey]]:
    """Load (entries, covered) from a corpus file; empty when absent."""
    if not path.exists():
        return [], set()
    data = json.loads(path.read_text())
    if data.get("version") != CORPUS_VERSION:
        return [], set()
    entries = list(data.get("entries") or ())
    covered: Set[CoverageKey] = set()
    for entry in entries:
        covered.update((r, p) for r, p in entry.get("coverage") or ())
    return entries, covered


def save_corpus(path: pathlib.Path, entries: Sequence[Mapping[str, Any]]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({"version": CORPUS_VERSION, "entries": list(entries)}, indent=1)
        + "\n"
    )


# ----------------------------------------------------------------------
# The campaign driver
# ----------------------------------------------------------------------
#: Trials are scheduled in fixed-size batches; coverage/corpus state only
#: advances at batch boundaries, so results are identical for any --jobs.
BATCH_SIZE = 32

#: Fraction of trials that mutate a corpus parent (once a corpus exists
#: and unseen reasons remain) instead of generating from scratch.
MUTATE_FRACTION = 0.5


def _plan_trial(
    index: int,
    seed_base: int,
    quick: bool,
    corpus: Sequence[Mapping[str, Any]],
    covered: Set[CoverageKey],
) -> Dict[str, Any]:
    """Deterministically choose generate-vs-mutate for one trial."""
    seed = seed_base + index
    unseen = all_reason_values() - {reason for reason, _phase in covered}
    rng = random.Random(seed * 1_000_003 + 17)
    if corpus and unseen and rng.random() < MUTATE_FRACTION:
        parent = corpus[rng.randrange(len(corpus))]["spec"]
        spec = mutate_spec(parent, rng, unseen)
        spec["scenario"]["name"] = f"fuzz-{seed}-mut"
        return spec
    return generate_spec(seed, quick=quick)


def _run_trial(spec: Dict[str, Any]) -> Tuple[Dict[str, Any], List[str], List[CoverageKey]]:
    """Worker entry point (must stay top-level picklable)."""
    try:
        result = run_spec(spec)
    except Exception as exc:  # a crash is a finding, not a fuzzer abort
        return spec, [f"exception: {type(exc).__name__}: {exc}"], []
    return spec, result.violations, sorted(result.coverage)


class CampaignResult(NamedTuple):
    trials: int
    failures: List[Tuple[Dict[str, Any], List[str]]]
    covered: Set[CoverageKey]
    corpus: List[Dict[str, Any]]
    new_corpus_entries: int


def run_campaign(
    seeds: int,
    seed_base: int = 0,
    quick: bool = True,
    jobs: int = 1,
    corpus_entries: Optional[List[Dict[str, Any]]] = None,
    covered: Optional[Set[CoverageKey]] = None,
    stop_on_failure: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Run ``seeds`` trials; returns failures, coverage, and the corpus."""
    corpus = list(corpus_entries or ())
    covered = set(covered or ())
    failures: List[Tuple[Dict[str, Any], List[str]]] = []
    new_entries = 0
    pool = None
    if jobs > 1:
        import multiprocessing

        pool = multiprocessing.Pool(jobs)
    try:
        done = 0
        while done < seeds:
            batch_n = min(BATCH_SIZE, seeds - done)
            specs = [
                _plan_trial(done + k, seed_base, quick, corpus, covered)
                for k in range(batch_n)
            ]
            if pool is not None:
                outcomes = pool.map(_run_trial, specs)
            else:
                outcomes = [_run_trial(spec) for spec in specs]
            for spec, violations, coverage in outcomes:
                if violations:
                    failures.append((spec, violations))
                fresh = set(coverage) - covered
                if fresh:
                    covered.update(fresh)
                    corpus.append(
                        {
                            "seed": spec["scenario"].get("seed"),
                            "spec": spec,
                            "coverage": sorted(set(coverage)),
                        }
                    )
                    new_entries += 1
            done += batch_n
            if progress is not None:
                progress(
                    f"{done}/{seeds} trials, {len(covered)} reason-phase combos, "
                    f"{len(failures)} failure(s)"
                )
            if failures and stop_on_failure:
                break
    finally:
        if pool is not None:
            pool.close()
            pool.join()
    return CampaignResult(done, failures, covered, corpus, new_entries)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios.fuzz",
        description="Coverage-guided scenario fuzzing over the full track vocabulary.",
    )
    parser.add_argument("--seeds", type=int, default=250, help="number of trials")
    parser.add_argument(
        "--seed-base", type=int, default=0, help="first trial seed (default 0)"
    )
    parser.add_argument(
        "--quick", action="store_true", help="small worlds (12-14 nodes, CI-sized)"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (identical results)"
    )
    parser.add_argument(
        "--corpus",
        type=pathlib.Path,
        default=None,
        help="seed-corpus JSON to load and extend (created if missing)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("fuzz-repro.json"),
        help="where the shrunken failing spec is written (JSON, runnable "
        "via python -m repro.scenarios.run)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true", help="report the raw failing spec"
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="collect every failure instead of stopping at the first",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable summary on stdout"
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be >= 1")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    say = print if not args.json else lambda *a, **k: print(*a, file=sys.stderr, **k)

    corpus_entries: List[Dict[str, Any]] = []
    covered: Set[CoverageKey] = set()
    if args.corpus is not None:
        corpus_entries, covered = load_corpus(args.corpus)
        if corpus_entries:
            say(
                f"corpus: {len(corpus_entries)} entries, "
                f"{len(covered)} reason-phase combos already covered"
            )

    result = run_campaign(
        seeds=args.seeds,
        seed_base=args.seed_base,
        quick=args.quick,
        jobs=args.jobs,
        corpus_entries=corpus_entries,
        covered=covered,
        stop_on_failure=not args.keep_going,
        progress=lambda msg: say(f"  {msg}"),
    )

    if args.corpus is not None and result.new_corpus_entries:
        save_corpus(args.corpus, result.corpus)
        say(
            f"corpus: +{result.new_corpus_entries} entries "
            f"-> {args.corpus} ({len(result.corpus)} total)"
        )

    reasons_seen = sorted({reason for reason, _phase in result.covered})
    say(
        f"fuzz: {result.trials} trial(s), "
        f"{len(result.covered)} reason-phase combos "
        f"({', '.join(reasons_seen) or 'none'}), "
        f"{len(result.failures)} failure(s)"
    )

    summary: Dict[str, Any] = {
        "trials": result.trials,
        "coverage": sorted(result.covered),
        "failures": [],
    }

    exit_code = 0
    if result.failures:
        exit_code = 1
        spec, violations = result.failures[0]
        say(f"FAILURE (seed {spec['scenario'].get('seed')}):")
        for violation in violations:
            say(f"  {violation}")
        repro = spec
        steps: List[str] = []
        if not args.no_shrink:
            say("shrinking...")
            repro, steps = shrink(
                spec, default_still_fails(violation_categories(violations))
            )
            say(
                f"  {len(steps)} reduction(s): "
                f"{len(spec.get('track') or ())} -> {len(repro.get('track') or ())} tracks, "
                f"{len(spec.get('phase') or ())} -> {len(repro.get('phase') or ())} phases"
            )
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(repro, indent=1) + "\n")
        say(f"minimal repro spec -> {args.out}")
        summary["failures"] = [
            {
                "seed": spec["scenario"].get("seed"),
                "violations": violations,
                "repro": str(args.out),
                "shrink_steps": steps,
            }
        ]

    if args.json:
        json.dump(summary, sys.stdout, indent=1)
        print()
    return exit_code


if __name__ == "__main__":
    sys.exit(main())

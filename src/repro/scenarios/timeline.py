"""Timeline-driven scenario model: phases, event tracks, and the executor.

The paper's claim (abstract, §3.5) is that FUSE delivers failure
notifications under *arbitrary* failure patterns — crashes, disconnects,
partitions, intransitive link failures, packet loss.  A
:class:`Scenario` makes "arbitrary" concrete: it is a named, seedable
composition of

* **phases** — consecutive windows of virtual time (warmup,
  steady-state, measurement); phases marked ``measure=True`` reset the
  metrics counters at their start and contribute to the reported
  message rate;
* **tracks** — independent generators of load and faults
  (:mod:`repro.scenarios.tracks`): churn schedules, partition-and-heal
  waves, rolling disconnects, intransitive pair failures, time-varying
  link loss, and FUSE/SV-tree workloads.

A scenario compiles onto the existing primitives with no new mechanism:
tracks schedule through ``world.sim``, drive
:class:`repro.net.faults.FaultInjector` and
:meth:`repro.net.topology.Topology.set_uniform_loss`, and the whole
scenario runs as one trial function under :mod:`repro.engine`, so seed
replication, ``--jobs`` parallelism, and JSON archiving work unchanged
(see :mod:`repro.scenarios.runner`).

Execution order is deterministic and mirrors the hand-written experiment
loops this layer replaced:

1. build the world from the trial seed and ``bootstrap()`` it;
2. run every track's ``setup`` hook, in track order (synchronous work —
   e.g. group creation — may advance the clock here);
3. fix the phase boundary times;
4. for each phase: run every track's ``on_phase_start`` hook, reset
   counters if measuring, ``run_for`` the phase, then ``on_phase_end``;
5. aggregate the shared measurement state into a flat dict.

Determinism rules: tracks draw randomness only from named streams via
:meth:`ScenarioContext.stream` (memoized per name, so two tracks naming
the same stream share one draw sequence — how the fig 9 scenario
reproduces the old experiment's exact victim sample), and all
phase-boundary work happens in Python between ``run_for`` calls, never
through racing sim timers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.trial import Measurements
from repro.net.address import NodeId
from repro.scenarios.expect import Expectation
from repro.world import FuseWorld

MINUTE_MS = 60_000.0


@dataclass(frozen=True)
class Phase:
    """One consecutive window of a scenario's timeline.

    Attributes:
        name: phase label; tracks reference phases by name.
        minutes: duration in virtual minutes.
        measure: when True, metrics counters reset at phase start and the
            phase's message count contributes to ``msgs_per_sec``.
    """

    name: str
    minutes: float
    measure: bool = False

    def __post_init__(self) -> None:
        if self.minutes < 0:
            raise ValueError(f"phase {self.name!r} has negative duration")


class Track:
    """Base class for scenario event tracks.

    Hooks run in track-list order at deterministic points of the
    scenario lifecycle; all of them are optional.  Tracks communicate
    with the aggregation step only through the :class:`ScenarioContext`.
    """

    def setup(self, ctx: "ScenarioContext") -> None:
        """Synchronous work after bootstrap, before the first phase."""

    def on_phase_start(self, ctx: "ScenarioContext", phase: Phase) -> None:
        """Runs immediately before ``run_for`` of ``phase``."""

    def on_phase_end(self, ctx: "ScenarioContext", phase: Phase) -> None:
        """Runs immediately after ``run_for`` of ``phase``."""


@dataclass
class Scenario:
    """A named, seedable composition of phases and tracks.

    ``seed`` is only the *default* base seed: the runner derives one world
    seed per (scenario, base seed) pair, and ``execute(scenario, seed=...)``
    overrides it per trial.
    """

    name: str
    n_nodes: int
    phases: Tuple[Phase, ...]
    tracks: Tuple[Track, ...] = ()
    seed: int = 0
    description: str = ""
    #: declared outcomes evaluated per trial by the runner (the spec's
    #: ``[expect]`` block — see :mod:`repro.scenarios.expect`)
    expect: Tuple[Expectation, ...] = ()

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("scenario needs a positive node count")
        if not self.phases:
            raise ValueError(f"scenario {self.name!r} has no phases")
        names = [p.name for p in self.phases]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate phase names in scenario {self.name!r}: {names}")

    @property
    def total_minutes(self) -> float:
        return sum(p.minutes for p in self.phases)

    def phase(self, name: str) -> Phase:
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(f"scenario {self.name!r} has no phase {name!r}")


class ScenarioContext:
    """Mutable state shared by a running scenario's tracks.

    Tracks register groups and record faults/notifications here; the
    aggregation step turns this into the flat measurements dict.  Nodes
    marked *unobservable* (crashed or disconnected by a fault track)
    still run their local FUSE instance — which self-notifies — but
    their notifications are excluded from delivery accounting, matching
    the paper's Fig 9 methodology (only the remaining live members'
    notifications are reported).
    """

    def __init__(self, world: FuseWorld, scenario: Scenario) -> None:
        self.world = world
        self.scenario = scenario
        self.sim = world.sim
        #: fuse_id -> (root, [root] + members)
        self.groups: Dict[str, Tuple[NodeId, List[NodeId]]] = {}
        self.groups_failed = 0
        #: fuse_id -> nodes whose notifications count for delivery
        #: accounting (filled by workload tracks; resolved against the
        #: world ledger after the run)
        self.observed: Dict[str, Set[NodeId]] = {}
        #: (fuse_id, node) -> virtual ms of the node's *first* notification
        self.notification_times: Dict[Tuple[str, NodeId], float] = {}
        #: node -> virtual ms of the node's first injected fault
        self.fault_times: Dict[NodeId, float] = {}
        #: fuse_id -> virtual ms a track declared the whole group doomed
        #: (e.g. a partition cutting through it) without faulting a node
        self.group_fault_times: Dict[str, float] = {}
        #: nodes whose notifications must not count as deliveries
        self.unobservable: Set[NodeId] = set()
        self.phase_start_ms: Dict[str, float] = {}
        self.phase_end_ms: Dict[str, float] = {}
        #: extra scalar measurements tracks report (merged into the
        #: final dict; must be JSON-serializable)
        self.extra: Dict[str, Any] = {}
        #: per-run scratch space, typically keyed by ``id(track)``.
        #: Tracks are shared across serial seed replicas, so per-run
        #: mutable state must live here, never on the track instance.
        self.scratch: Dict[Any, Any] = {}

    # ------------------------------------------------------------------
    # Facilities for tracks
    # ------------------------------------------------------------------
    def stream(self, name: str):
        """The named RNG stream (memoized: same name -> same sequence)."""
        return self.sim.rng.stream(name)

    def register_group(self, fuse_id: str, root: NodeId, members: Sequence[NodeId]) -> None:
        self.groups[fuse_id] = (root, list(members))

    def observe_group(self, fuse_id: str, nodes: Sequence[NodeId]) -> None:
        """Count these nodes' notifications for ``fuse_id`` as deliveries.

        The actual times are read from the world's
        :class:`~repro.fuse.api.GroupLedger` after the run — tracks no
        longer attach per-(group, member) observers.
        """
        self.observed.setdefault(fuse_id, set()).update(nodes)

    def record_notification(self, fuse_id: str, node: NodeId) -> None:
        """Record ``node``'s first notification for ``fuse_id`` directly
        (custom tracks only; the ledger pass uses setdefault too, so
        manual records merge cleanly)."""
        self.notification_times.setdefault((fuse_id, node), self.sim.now)

    def resolve_notifications(self) -> None:
        """Fill :attr:`notification_times` from the world ledger.

        Scanned in ledger append order — chronological — so downstream
        latency lists keep the exact ordering the old per-node observers
        produced."""
        observed = self.observed
        if not observed:
            return
        for rec in self.world.ledger.notes:
            nodes = observed.get(rec.fuse_id)
            if nodes is not None and rec.node in nodes:
                self.notification_times.setdefault((rec.fuse_id, rec.node), rec.when)

    def note_fault(self, node: NodeId, observable: bool = True) -> None:
        """Record that a fault track hit ``node`` now.

        ``observable=False`` marks nodes whose own notifications must not
        count as deliveries (crashed / disconnected nodes).
        """
        self.fault_times.setdefault(node, self.sim.now)
        if not observable:
            self.unobservable.add(node)

    def expect_group_failure(self, fuse_id: str) -> None:
        """Declare a registered group doomed as of now (no node faulted)."""
        if fuse_id in self.groups:
            self.group_fault_times.setdefault(fuse_id, self.sim.now)


def execute(scenario: Scenario, seed: Optional[int] = None) -> Measurements:
    """Run ``scenario`` in a fresh world and return flat measurements.

    Pure apart from its arguments: the same (scenario, seed) pair always
    yields the same measurements, which is what lets the runner fan seed
    replicas across processes (:mod:`repro.scenarios.runner`).
    """
    return execute_with_context(scenario, seed)[0]


def execute_with_context(
    scenario: Scenario,
    seed: Optional[int] = None,
    world_factory=None,
) -> Tuple[Measurements, ScenarioContext]:
    """:func:`execute`, additionally returning the run's context (world,
    ledger, raw records) for property checks that need more than the flat
    measurements — the scenario fuzzer and ledger-level assertions.

    ``world_factory`` (``(n_nodes, seed) -> world``) swaps the backend the
    scenario runs on; the default builds a simulated :class:`FuseWorld`.
    The parity harness (:mod:`repro.scenarios.parity`) passes a factory
    building a :class:`repro.net.backends.liveworld.LiveWorld` so the same
    timeline drives real sockets."""
    run_seed = scenario.seed if seed is None else seed
    if world_factory is None:
        world = FuseWorld(n_nodes=scenario.n_nodes, seed=run_seed)
    else:
        world = world_factory(scenario.n_nodes, run_seed)
    world.bootstrap()
    ctx = ScenarioContext(world, scenario)
    world.ledger.set_phase("setup")
    for track in scenario.tracks:
        track.setup(ctx)

    # Fix phase boundaries after setup (synchronous group creation may
    # have advanced the clock).
    t = world.sim.now
    for phase in scenario.phases:
        ctx.phase_start_ms[phase.name] = t
        t += phase.minutes * MINUTE_MS
        ctx.phase_end_ms[phase.name] = t

    msgs = world.sim.metrics.counter("net.messages")
    measured_msgs = 0
    measured_ms = 0.0
    phase_rates: Dict[str, float] = {}
    for phase in scenario.phases:
        world.ledger.set_phase(phase.name)
        for track in scenario.tracks:
            track.on_phase_start(ctx, phase)
        if phase.measure:
            world.sim.metrics.reset_counters()
        msgs_before = msgs.value
        world.run_for(phase.minutes * MINUTE_MS)
        phase_msgs = msgs.value - msgs_before
        if phase.minutes > 0:
            phase_rates[phase.name] = phase_msgs / (phase.minutes * 60.0)
        if phase.measure:
            measured_msgs += msgs.value
            measured_ms += phase.minutes * MINUTE_MS
        for track in scenario.tracks:
            track.on_phase_end(ctx, phase)

    ctx.resolve_notifications()
    out = _aggregate(ctx, measured_msgs, measured_ms)
    # Per-phase measurement windows: a per-phase message rate for every
    # phase, and per-phase first-notification counts (observable nodes),
    # so partition-vs-healed behaviour is visible in one run instead of
    # pooled across all measured phases.
    for name, rate in phase_rates.items():
        out[f"msgs_per_sec[{name}]"] = rate
    last_phase = scenario.phases[-1]
    for phase in scenario.phases:
        start = ctx.phase_start_ms[phase.name]
        end = ctx.phase_end_ms[phase.name]
        # Half-open windows, except the final phase: events scheduled at
        # exactly the scenario's end time do dispatch, so the last window
        # closes inclusively.
        if phase is last_phase:
            count = sum(
                1
                for (_fid, node), when in ctx.notification_times.items()
                if start <= when <= end and node not in ctx.unobservable
            )
        else:
            count = sum(
                1
                for (_fid, node), when in ctx.notification_times.items()
                if start <= when < end and node not in ctx.unobservable
            )
        out[f"notifications[{phase.name}]"] = count
    out.update(ctx.extra)
    return out, ctx


def execute_parallel(
    scenario: Scenario,
    seed: Optional[int] = None,
    workers: int = 2,
    partitions: Optional[int] = None,
    record_stream: bool = False,
):
    """Run ``scenario`` on a partitioned world (`repro.engine.windows`).

    Semantically the parallel twin of :func:`execute_with_context`: the
    same world build / setup / phase loop, with every ``run_for`` going
    through the conservative window protocol.  The merged measurements
    are a pure function of ``partitions`` — byte-identical for any
    ``workers`` value — and the partitioned execution model itself is
    documented in :mod:`repro.sim.parallel`.

    Returns ``(measurements, ctx, result)`` where ``result`` is the
    :class:`repro.engine.windows.ParallelResult` (window stats, critical
    path, optional canonical stream).
    """
    from repro.engine.windows import run_partitioned

    world = FuseWorld(
        n_nodes=scenario.n_nodes,
        seed=scenario.seed if seed is None else seed,
    )
    world.bootstrap()
    ctx = ScenarioContext(world, scenario)
    world.ledger.set_phase("setup")
    # Setup (and the synchronous clock advancement it may do) runs before
    # the fork: every worker inherits the post-setup world identically.
    for track in scenario.tracks:
        track.setup(ctx)
    groups_failed_setup = ctx.groups_failed

    t = world.sim.now
    for phase in scenario.phases:
        ctx.phase_start_ms[phase.name] = t
        t += phase.minutes * MINUTE_MS
        ctx.phase_end_ms[phase.name] = t

    msgs = world.sim.metrics.counter("net.messages")
    # Parent-local per-phase tallies; the partitioned share dispatched by
    # the *other* workers is folded in from result.call_partitioned_deltas
    # after the merge (call index == phase index: one run_for per phase).
    local: Dict[str, Any] = {"phase_msgs": [], "measured_calls": []}

    def body(session) -> None:
        measured_ms = 0.0
        for index, phase in enumerate(scenario.phases):
            world.ledger.set_phase(phase.name)
            for track in scenario.tracks:
                track.on_phase_start(ctx, phase)
            if phase.measure:
                world.sim.metrics.reset_counters()
                local["measured_calls"].append(index)
            msgs_before = msgs.value
            session.run_for(phase.minutes * MINUTE_MS)
            local["phase_msgs"].append(msgs.value - msgs_before)
            if phase.measure:
                measured_ms += phase.minutes * MINUTE_MS
            for track in scenario.tracks:
                track.on_phase_end(ctx, phase)
        local["measured_ms"] = measured_ms

    result = run_partitioned(
        world, body, workers=workers, partitions=partitions,
        record_stream=record_stream,
    )

    foreign = result.call_partitioned_deltas
    phase_rates = {}
    measured_msgs = 0
    for index, phase in enumerate(scenario.phases):
        phase_msgs = local["phase_msgs"][index] + foreign[index].get("net.messages", 0)
        if phase.minutes > 0:
            phase_rates[phase.name] = phase_msgs / (phase.minutes * 60.0)
        if index in local["measured_calls"]:
            measured_msgs += phase_msgs

    _reconcile_parallel_context(ctx, scenario, groups_failed_setup)
    ctx.resolve_notifications()
    out = _aggregate(ctx, measured_msgs, local["measured_ms"])
    for name, rate in phase_rates.items():
        out[f"msgs_per_sec[{name}]"] = rate
    last_phase = scenario.phases[-1]
    for phase in scenario.phases:
        start = ctx.phase_start_ms[phase.name]
        end = ctx.phase_end_ms[phase.name]
        if phase is last_phase:
            count = sum(
                1
                for (_fid, node), when in ctx.notification_times.items()
                if start <= when <= end and node not in ctx.unobservable
            )
        else:
            count = sum(
                1
                for (_fid, node), when in ctx.notification_times.items()
                if start <= when < end and node not in ctx.unobservable
            )
        out[f"notifications[{phase.name}]"] = count
    out.update(ctx.extra)
    return out, ctx, result


def _reconcile_parallel_context(
    ctx: ScenarioContext, scenario: Scenario, groups_failed_setup: int
) -> None:
    """Rebuild group bookkeeping that rides on handle callbacks.

    ``on_live`` / ``on_notified`` callbacks fire inside the owning
    partition's phase, so in a multi-worker run the parent only saw them
    for its own partitions.  The merged ledger (creates + outcomes) holds
    the canonical record; this re-derives the parent's ``ctx.groups`` /
    ``ctx.observed`` / ``groups_failed`` from it, exactly matching what
    the callbacks produce in a single-worker run.
    """
    from repro.scenarios.tracks import GroupWorkload

    ledger = ctx.world.ledger
    observe = "members"
    for track in scenario.tracks:
        if isinstance(track, GroupWorkload) and track.rate_per_minute is not None:
            observe = track.observe
            break

    midphase_failed = 0
    for rec in ledger.creates:
        outcome = ledger._outcome.get(rec.fuse_id)
        if outcome is None:
            continue
        if rec.phase == "setup":
            continue
        if outcome[0] == "failed_create":
            midphase_failed += 1
        elif outcome[0] == "live" and rec.fuse_id not in ctx.groups:
            everyone = list(rec.members)
            ctx.register_group(rec.fuse_id, rec.root, everyone)
            if observe == "root":
                ctx.observe_group(rec.fuse_id, [rec.root])
            elif observe == "members":
                ctx.observe_group(rec.fuse_id, everyone)
    ctx.groups_failed = groups_failed_setup + midphase_failed


def _group_fault_time(ctx: ScenarioContext, fuse_id: str, members: Sequence[NodeId]) -> Optional[float]:
    """Earliest injected-fault time relevant to a group, or None."""
    times = [ctx.fault_times[m] for m in members if m in ctx.fault_times]
    declared = ctx.group_fault_times.get(fuse_id)
    if declared is not None:
        times.append(declared)
    return min(times) if times else None


def _aggregate(ctx: ScenarioContext, measured_msgs: int, measured_ms: float) -> Measurements:
    """Reduce the context's raw records to the shared measurement set.

    * ``notifications_delivered`` / ``latency_min`` cover *affected*
      groups (>= 1 faulted member or a declared group fault) at
      observable nodes; latency is minutes since the group's earliest
      fault.
    * ``spurious_groups`` counts distinct groups notified with no fault
      touching them — the false-positive metric of Figs 10 and 12.
    """
    affected: Dict[str, float] = {}
    for fuse_id, (_root, members) in ctx.groups.items():
        t0 = _group_fault_time(ctx, fuse_id, members)
        if t0 is not None:
            affected[fuse_id] = t0

    latency_min: List[float] = []
    delivered = 0
    spurious: Set[str] = set()
    notified: Set[str] = set()
    for (fuse_id, node), when in ctx.notification_times.items():
        notified.add(fuse_id)
        if fuse_id in affected:
            if node in ctx.unobservable:
                continue
            delivered += 1
            latency_min.append((when - affected[fuse_id]) / MINUTE_MS)
        else:
            spurious.add(fuse_id)

    expected = sum(
        sum(1 for m in members if m not in ctx.unobservable)
        for fuse_id, (_root, members) in ctx.groups.items()
        if fuse_id in affected
    )
    return {
        "msgs_per_sec": measured_msgs / (measured_ms / 1000.0) if measured_ms > 0 else 0.0,
        "groups_created": len(ctx.groups),
        "groups_failed": ctx.groups_failed,
        "groups_affected": len(affected),
        "groups_notified": len(notified),
        "notifications_expected": expected,
        "notifications_delivered": delivered,
        "spurious_groups": len(spurious),
        "latency_min": latency_min,
        "final_alive": len(ctx.world.alive_node_ids()),
        "events": ctx.world.sim.events_dispatched,
    }

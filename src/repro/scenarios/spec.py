"""Load scenarios from declarative TOML or JSON spec files.

A spec is the on-disk form of a :class:`~repro.scenarios.timeline.Scenario`
— a new fault timeline becomes a config file instead of a new experiment
module.  The schema (full reference in ``docs/SCENARIOS.md``)::

    [scenario]
    name = "my-partition"
    n_nodes = 40
    seed = 13
    description = "optional free text"

    [[phase]]
    name = "warmup"
    minutes = 2.0

    [[phase]]
    name = "partition"
    minutes = 6.0
    measure = true

    [[track]]
    kind = "groups"            # see TRACK_KINDS for the vocabulary
    n_groups = 10
    group_size = 4

    [[track]]
    kind = "partition"
    phase = "partition"
    fractions = [0.6, 0.4]
    heal_after_minutes = 3.0

    [expect]                       # optional: scenarios.run exits non-zero
    spurious_groups = 0            # on any violation (repro.scenarios.expect)
    delivered = "== expected"

The same structure as JSON (``{"scenario": {...}, "phase": [...],
"track": [...], "expect": {...}}``) loads identically.  Every track
field maps 1:1 onto the dataclass fields in
:mod:`repro.scenarios.tracks`; unknown kinds and unknown fields are hard
errors so specs fail loudly, not silently.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Dict, Mapping, Type, Union

from repro.scenarios.expect import ExpectError, parse_expect
from repro.scenarios.timeline import Phase, Scenario, Track
from repro.scenarios.tracks import (
    AsymmetricPartition,
    BandwidthContention,
    BurstLoss,
    CrashRecoverWave,
    DisconnectWave,
    GrayFailure,
    GroupWorkload,
    IntransitivePairs,
    LatencyInflation,
    LinkLossRamp,
    Partition,
    PoissonChurn,
    RollingDisconnect,
    SvtreeTraffic,
)

#: spec ``kind`` -> track dataclass
TRACK_KINDS: Dict[str, Type[Track]] = {
    "groups": GroupWorkload,
    "svtree": SvtreeTraffic,
    "poisson-churn": PoissonChurn,
    "crash-recover-wave": CrashRecoverWave,
    "disconnect-wave": DisconnectWave,
    "rolling-disconnect": RollingDisconnect,
    "partition": Partition,
    "asymmetric-partition": AsymmetricPartition,
    "intransitive-pairs": IntransitivePairs,
    "link-loss": LinkLossRamp,
    "burst-loss": BurstLoss,
    "latency-inflation": LatencyInflation,
    "bandwidth-contention": BandwidthContention,
    "gray-failure": GrayFailure,
}


class SpecError(ValueError):
    """A scenario spec failed validation."""


def _build_track(entry: Mapping[str, Any]) -> Track:
    data = dict(entry)
    kind = data.pop("kind", None)
    if not kind:
        raise SpecError(f"track entry missing 'kind': {entry!r}")
    cls = TRACK_KINDS.get(kind)
    if cls is None:
        raise SpecError(
            f"unknown track kind {kind!r} (known: {', '.join(sorted(TRACK_KINDS))})"
        )
    fields = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - fields
    if unknown:
        raise SpecError(
            f"track kind {kind!r} has no field(s) {sorted(unknown)} "
            f"(known: {sorted(fields)})"
        )
    # TOML has no null; lists arrive as lists (fractions, explicit node
    # ids) and are coerced to the tuple/list shapes the dataclasses use.
    if "fractions" in data:
        data["fractions"] = tuple(data["fractions"])
    try:
        return cls(**data)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"bad {kind!r} track: {exc}") from exc


def scenario_from_dict(spec: Mapping[str, Any]) -> Scenario:
    """Build a :class:`Scenario` from parsed spec data."""
    header = spec.get("scenario")
    if not isinstance(header, Mapping):
        raise SpecError("spec needs a [scenario] table with name and n_nodes")
    for key in ("name", "n_nodes"):
        if key not in header:
            raise SpecError(f"[scenario] is missing {key!r}")
    unknown = set(header) - {"name", "n_nodes", "seed", "description"}
    if unknown:
        raise SpecError(f"[scenario] has unknown key(s) {sorted(unknown)}")
    phases = spec.get("phase") or ()
    if not phases:
        raise SpecError("spec needs at least one [[phase]]")
    try:
        phase_objs = tuple(Phase(**dict(p)) for p in phases)
    except TypeError as exc:
        raise SpecError(f"bad phase entry: {exc}") from exc
    tracks = tuple(_build_track(t) for t in spec.get("track") or ())
    expect_table = spec.get("expect") or {}
    if not isinstance(expect_table, Mapping):
        raise SpecError("[expect] must be a table of metric = assertion entries")
    try:
        expectations = parse_expect(expect_table)
    except ExpectError as exc:
        raise SpecError(str(exc)) from exc
    unknown_top = set(spec) - {"scenario", "phase", "track", "expect"}
    if unknown_top:
        raise SpecError(f"spec has unknown top-level table(s) {sorted(unknown_top)}")
    try:
        return Scenario(
            name=str(header["name"]),
            n_nodes=int(header["n_nodes"]),
            seed=int(header.get("seed", 0)),
            description=str(header.get("description", "")),
            phases=phase_objs,
            tracks=tracks,
            expect=expectations,
        )
    except ValueError as exc:
        raise SpecError(str(exc)) from exc


def load(path: Union[str, pathlib.Path]) -> Scenario:
    """Load a scenario from a ``.toml`` or ``.json`` spec file."""
    path = pathlib.Path(path)
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # Python 3.10: stdlib tomllib is 3.11+
            raise SpecError(
                "TOML specs need Python >= 3.11 (stdlib tomllib); "
                "use the equivalent .json form on older interpreters"
            ) from exc
        data = tomllib.loads(path.read_text())
    elif path.suffix == ".json":
        data = json.loads(path.read_text())
    else:
        raise SpecError(f"spec files must be .toml or .json, got {path.name!r}")
    return scenario_from_dict(data)

"""Sim-vs-wire parity harness: one scenario, two backends, one verdict.

Runs a built-in scenario twice — once on the simulated backend
(:class:`repro.world.FuseWorld`) and once on the asyncio UDP backend
(:class:`repro.net.backends.liveworld.LiveWorld`) — with the same seed,
then compares the two :class:`repro.fuse.api.GroupLedger` outcomes.
Because both backends derive fuse ids from the same seeded RNG streams
and per-creator serials, the ledgers are keyed identically and can be
joined row by row.

What must match exactly:

* the set of groups created (by fuse id) and the counts the scenario
  aggregates (affected groups, delivered notifications, spurious groups);
* the per-member ``NotificationReason`` verdict for every delivered
  notification — crash is crash and gray is gray on the wire too.
  One carve-out, part of the documented tolerance model: the ledger
  classifies *at delivery time*, so the link-level refinables
  (``LINK_TIMEOUT`` / ``REPAIR_FAILED`` / ``RECONCILE`` /
  ``FALSE_POSITIVE`` / ``UNKNOWN``) race heal boundaries — a note landing
  just after ``heal_partition`` refines to ``FALSE_POSITIVE``, the same
  note a sweep earlier stays ``REPAIR_FAILED``.  Those five are compared
  as one equivalence class; the fault-attributing verdicts (``CRASH``,
  ``DISCONNECT``, ``GRAY_FAIL``) must match member for member.

What matches within a tolerance band: notification *latency* (measured
from the group's earliest injected fault, so differing bootstrap lengths
cancel out).  The paper's detection window is 20-80 s (§7.2: a 60 s ping
period plus a 20 s ping timeout), and the two backends need not suspect a
silent link in the same sweep — so per-note latencies may legitimately
differ by up to one full detection window plus transport slack.  The
default band is that model: ``liveness_silence_ms + 10 s``.

CLI::

    python -m repro.scenarios.parity                       # 3 defaults, --quick
    python -m repro.scenarios.parity partition-heal --seed 3
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.backends.wallclock import wall_seconds
from repro.overlay.skipnet.config import OverlayConfig
from repro.scenarios.builtin import BUILTIN
from repro.scenarios.timeline import (
    ScenarioContext,
    _group_fault_time,
    execute_with_context,
)

#: Scenarios with deterministic fault→outcome structure on both backends.
DEFAULT_SCENARIOS = ("steady", "partition-heal", "correlated-rack-failure")

#: Wall seconds per virtual second for the live leg.
DEFAULT_TIME_SCALE = 0.02


def default_tolerance_ms() -> float:
    """The documented tolerance band for per-note latency deltas.

    One paper detection window — the backends may catch a failure one
    liveness sweep apart — plus 10 s of transport slack (retries and
    repair backoff landing on different sides of a sweep boundary).
    """
    return OverlayConfig().liveness_silence_ms + 10_000.0


#: Link-level refinables: classification depends on whether delivery
#: lands before or after a heal, so backends compare them as one class
#: (see the module docstring's tolerance model).
LINK_LEVEL_REASONS = frozenset(
    {"LINK_TIMEOUT", "REPAIR_FAILED", "RECONCILE", "FALSE_POSITIVE", "UNKNOWN"}
)

#: Aggregate measurements that must agree exactly between backends.
EXACT_KEYS = (
    "groups_created",
    "groups_affected",
    "notifications_expected",
    "notifications_delivered",
    "spurious_groups",
)


@dataclass
class ParityResult:
    scenario: str
    seed: int
    tolerance_ms: float
    ok: bool = True
    mismatches: List[str] = field(default_factory=list)
    verdicts_compared: int = 0
    max_latency_delta_ms: float = 0.0
    sim_wall_s: float = 0.0
    live_wall_s: float = 0.0

    def fail(self, why: str) -> None:
        self.ok = False
        self.mismatches.append(why)

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "ok": self.ok,
            "mismatches": self.mismatches,
            "verdicts_compared": self.verdicts_compared,
            "max_latency_delta_ms": round(self.max_latency_delta_ms, 1),
            "tolerance_ms": self.tolerance_ms,
            "sim_wall_s": round(self.sim_wall_s, 2),
            "live_wall_s": round(self.live_wall_s, 2),
        }


def _verdicts(ctx: ScenarioContext) -> Dict[Tuple[str, int], str]:
    """(fuse_id, node) → NotificationReason name, first note per pair."""
    out: Dict[Tuple[str, int], str] = {}
    ledger = ctx.world.ledger
    for fuse_id in ctx.groups:
        for rec in ledger.member_notes(fuse_id):
            out.setdefault((fuse_id, rec.node), rec.reason.name)
    return out


def _latencies(ctx: ScenarioContext) -> Dict[Tuple[str, int], float]:
    """(fuse_id, node) → ms from the group's earliest fault to delivery."""
    out: Dict[Tuple[str, int], float] = {}
    for fuse_id, (_root, members) in ctx.groups.items():
        t0 = _group_fault_time(ctx, fuse_id, members)
        if t0 is None:
            continue
        for (fid, node), when in ctx.notification_times.items():
            if fid == fuse_id:
                out[(fid, node)] = when - t0
    return out


def live_world_factory(time_scale: float = DEFAULT_TIME_SCALE):
    """A ``world_factory`` for :func:`execute_with_context` building the
    asyncio backend with the given time compression."""
    from repro.net.backends.liveworld import LiveWorld

    def factory(n_nodes: int, seed: int) -> "LiveWorld":
        return LiveWorld(n_nodes=n_nodes, seed=seed, time_scale=time_scale)

    return factory


def run_parity(
    name,
    quick: bool = True,
    seed: Optional[int] = None,
    time_scale: float = DEFAULT_TIME_SCALE,
    tolerance_ms: Optional[float] = None,
) -> ParityResult:
    """Run a scenario on both backends and compare ledger outcomes.

    ``name`` is either a built-in scenario name (``quick`` selects the
    fast variant) or a :class:`repro.scenarios.timeline.Scenario`
    instance, which is run as given.
    """
    scenario = BUILTIN[name](quick=quick) if isinstance(name, str) else name
    run_seed = scenario.seed if seed is None else seed
    tol = default_tolerance_ms() if tolerance_ms is None else tolerance_ms
    result = ParityResult(scenario=scenario.name, seed=run_seed, tolerance_ms=tol)

    t0 = wall_seconds()
    sim_out, sim_ctx = execute_with_context(scenario, seed=run_seed)
    result.sim_wall_s = wall_seconds() - t0

    t0 = wall_seconds()
    live_out, live_ctx = execute_with_context(
        scenario, seed=run_seed, world_factory=live_world_factory(time_scale)
    )
    result.live_wall_s = wall_seconds() - t0
    try:
        # ---- exact aggregates -----------------------------------------
        for key in EXACT_KEYS:
            if sim_out.get(key) != live_out.get(key):
                result.fail(
                    f"{key}: sim={sim_out.get(key)} live={live_out.get(key)}"
                )

        # ---- group identity -------------------------------------------
        sim_groups = set(sim_ctx.groups)
        live_groups = set(live_ctx.groups)
        if sim_groups != live_groups:
            only_sim = sorted(sim_groups - live_groups)
            only_live = sorted(live_groups - sim_groups)
            result.fail(f"group sets differ: only_sim={only_sim} only_live={only_live}")

        # ---- per-member reason verdicts -------------------------------
        sim_verdicts = _verdicts(sim_ctx)
        live_verdicts = _verdicts(live_ctx)
        for key in sorted(set(sim_verdicts) | set(live_verdicts)):
            a = sim_verdicts.get(key)
            b = live_verdicts.get(key)
            result.verdicts_compared += 1
            if a == b:
                continue
            if a in LINK_LEVEL_REASONS and b in LINK_LEVEL_REASONS:
                continue  # heal-boundary race within the tolerance model
            result.fail(f"verdict {key}: sim={a} live={b}")

        # ---- latency tolerance band -----------------------------------
        sim_lat = _latencies(sim_ctx)
        live_lat = _latencies(live_ctx)
        for key in sorted(set(sim_lat) & set(live_lat)):
            delta = abs(sim_lat[key] - live_lat[key])
            result.max_latency_delta_ms = max(result.max_latency_delta_ms, delta)
            if delta > tol:
                result.fail(
                    f"latency {key}: sim={sim_lat[key]:.0f}ms "
                    f"live={live_lat[key]:.0f}ms delta>{tol:.0f}ms"
                )
    finally:
        close = getattr(live_ctx.world, "close", None)
        if close is not None:
            close()
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios.parity",
        description="Run built-in scenarios on both backends and compare ledgers.",
    )
    parser.add_argument(
        "scenarios", nargs="*", default=list(DEFAULT_SCENARIOS),
        help=f"built-in scenario names (default: {', '.join(DEFAULT_SCENARIOS)})",
    )
    parser.add_argument("--full", action="store_true", help="paper-scale variants (default: --quick)")
    parser.add_argument("--seed", type=int, default=None, help="override the scenario seed")
    parser.add_argument("--time-scale", type=float, default=DEFAULT_TIME_SCALE,
                        help="wall seconds per virtual second for the live leg")
    parser.add_argument("--tolerance-ms", type=float, default=None,
                        help="latency tolerance band (default: detection window + 10s)")
    parser.add_argument("--json", action="store_true", help="emit one JSON object per scenario")
    args = parser.parse_args(argv)

    failures = 0
    for name in args.scenarios:
        if name not in BUILTIN:
            print(f"unknown scenario: {name} (known: {', '.join(sorted(BUILTIN))})")
            return 2
        result = run_parity(
            name,
            quick=not args.full,
            seed=args.seed,
            time_scale=args.time_scale,
            tolerance_ms=args.tolerance_ms,
        )
        if args.json:
            print(json.dumps(result.to_dict()))
        else:
            status = "PARITY" if result.ok else "MISMATCH"
            print(
                f"[{status}] {name} seed={result.seed} "
                f"verdicts={result.verdicts_compared} "
                f"max_latency_delta={result.max_latency_delta_ms / 1000.0:.1f}s "
                f"(tolerance {result.tolerance_ms / 1000.0:.0f}s) "
                f"sim={result.sim_wall_s:.1f}s live={result.live_wall_s:.1f}s wall"
            )
            for line in result.mismatches:
                print(f"    {line}")
        if not result.ok:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

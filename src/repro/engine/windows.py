"""Worker pool and window barrier protocol for parallel simulation.

:func:`run_partitioned` is the entry point: it builds a
:class:`~repro.sim.parallel.PartitionPlan` for one bootstrapped world,
forks ``workers - 1`` replicas (the heaps are full of closures, so the
world travels by fork, not pickle), and runs a caller-supplied ``body``
callback in *every* process.  The body drives virtual time exclusively
through :meth:`ParallelSession.run_for`; everything it does between those
calls (scenario hooks, phase bookkeeping) executes replicated — the same
Python, the same shared RNG streams — in each worker.  Only
``run_for`` is divided: the session advances the world in lock-stepped
conservative windows (see :mod:`repro.sim.parallel` for the invariants),
exchanging cross-partition deliveries, deferred membership ops and
per-sender busy state at each barrier over pipes.

The barrier costs one message round-trip per window in the common case:
the parent piggybacks the next window bounds on the ``apply`` broadcast,
because with no membership ops in flight it can compute every worker's
next event horizon from their reported heap minima plus the exchanged
arrival times.  Windows containing membership ops pay one extra ``min``
exchange (the ops reshape ring timers unpredictably).  Windows with no
events anywhere fast-forward: the next window starts at the global
minimum event time rather than crawling forward lookahead by lookahead.

Single-partition plans short-circuit to the classic serial kernel loop —
that path is byte-identical to ``world.run_for`` by construction and
anchors the identity matrix in ``tests/test_parallel_identity.py``.
"""

from __future__ import annotations

import os
import sys
import traceback
from multiprocessing import Pipe
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.parallel import (
    REPLICATED,
    PartitionPlan,
    WindowRunner,
    _DirtyTrackingDict,
    delivery_sort_key,
    ring_op_sort_key,
)

_EPS = 1e-9


class ParallelWorkerError(RuntimeError):
    """A worker process failed; carries the remote traceback."""


class ParallelResult:
    """Merged outcome of a partitioned run (parent process only).

    By the time the caller sees this, the parent's ``world`` has already
    been patched into the canonical merged state: ledger lists replaced
    and re-indexed, counters and ``events_dispatched`` folded.  The
    fields here add the parallel-only views on top.
    """

    def __init__(
        self,
        plan: PartitionPlan,
        workers: int,
        stream: Optional[List[Tuple[int, int, float, str]]],
        window_counts: List[Dict[int, int]],
        call_partitioned_deltas: List[Dict[str, float]],
        events: int,
    ) -> None:
        self.plan = plan
        self.workers = workers
        #: canonical merged event stream ``(window, context, when, label)``
        #: when record_stream was requested; None otherwise.
        self.stream = stream
        #: per window: dispatch count per context (REPLICATED or partition).
        self.window_counts = window_counts
        #: per ``run_for`` call: summed partitioned counter deltas from the
        #: *other* workers (the parent's own are already in its registry).
        self.call_partitioned_deltas = call_partitioned_deltas
        #: merged total events dispatched (equals world.sim.events_dispatched).
        self.events = events

    @property
    def windows(self) -> int:
        return len(self.window_counts)

    def critical_path(self) -> Dict[str, float]:
        """Idealized speedup bound from the window dispatch profile.

        Serial cost of a window is all its events; parallel cost is the
        replicated phase plus the busiest partition (partitions run
        concurrently).  The ratio is the speedup a perfectly parallel
        runner would reach with this plan on unlimited cores — the
        honest companion to wall-clock numbers on shared/small runners.
        """
        total = 0
        critical = 0
        for counts in self.window_counts:
            r = counts.get(REPLICATED, 0)
            parts = [v for k, v in counts.items() if k != REPLICATED]
            total += r + sum(parts)
            critical += r + (max(parts) if parts else 0)
        return {
            "total_events": total,
            "critical_path_events": critical,
            "speedup_bound": (total / critical) if critical else 1.0,
        }


class ParallelSession:
    """One process's handle on a partitioned run (parent or child)."""

    def __init__(
        self,
        world,
        plan: PartitionPlan,
        worker_index: int,
        workers: int,
        conns: Optional[List[Any]] = None,
        conn: Optional[Any] = None,
        pids: Optional[List[int]] = None,
        record_stream: bool = False,
    ) -> None:
        self.world = world
        self.plan = plan
        self.worker_index = worker_index
        self.workers = workers
        self.conns = conns or []
        self.conn = conn
        self.pids = pids or []
        self.is_parent = worker_index == 0
        owned = [p for p in range(plan.n_partitions) if p % workers == worker_index]
        self.runner = WindowRunner(world, plan, owned, record_stream=record_stream)
        #: per run_for call: this worker's partitioned counter deltas.
        self.call_deltas: List[Dict[str, float]] = []
        self._serial = plan.n_partitions == 1
        #: window-grid anchor: windows live on the fixed lattice
        #: ``epoch + k * lookahead``, so boundaries (and the slot labels
        #: in stream records) are invariant to how minima are discovered.
        self._epoch = world.sim.now

    # ------------------------------------------------------------------
    # Virtual-time advancement
    # ------------------------------------------------------------------
    def run_for(self, duration_ms: float) -> None:
        sim = self.world.sim
        end = sim.now + duration_ms
        if self._serial:
            sim.run(until=end)
            self.call_deltas.append({})
            return
        runner = self.runner
        call_mark = dict(runner.partitioned_counter_totals)
        if self.is_parent:
            self._parent_run(end)
        else:
            self._child_run(end)
        totals = runner.partitioned_counter_totals
        self.call_deltas.append(
            {
                name: value - call_mark.get(name, 0)
                for name, value in totals.items()
                if value != call_mark.get(name, 0)
            }
        )
        runner.sync_dispatch_total()

    def _decide(
        self, mins: List[Optional[float]], extra: List[float], end: float, now: float
    ) -> Tuple:
        values = [m for m in mins if m is not None]
        values.extend(extra)
        if not values:
            return ("end", end)
        earliest = min(values)
        if earliest >= end - _EPS:
            return ("end", end)
        # Snap to the fixed lookahead grid: the slot containing the
        # earliest event.  Grid alignment keeps window boundaries — and
        # hence event-to-window assignment and all same-time tie-breaks —
        # identical for every worker count, even when a stale replica of
        # an owner-cancelled event drags the fast-forward to an earlier
        # (then empty) slot.
        lookahead = self.plan.lookahead_ms
        slot = int((earliest - self._epoch) // lookahead)
        w0 = max(now, self._epoch + slot * lookahead)
        w1 = min(end, self._epoch + (slot + 1) * lookahead)
        return ("window", w0, w1, slot)

    def _parent_run(self, end: float) -> None:
        runner = self.runner
        conns = self.conns
        workers = self.workers
        worker_of = {
            p: p % workers for p in range(self.plan.n_partitions)
        }
        partition_of = self.plan.partition_of_host
        mins = [runner.next_event_time()]
        mins.extend(self._recv(conn)[1] for conn in conns)
        nxt = self._decide(mins, [], end, self.world.sim.now)
        if nxt[0] == "end":
            self._broadcast(("end", end))
            runner.finish_run(end)
            return
        self._broadcast(nxt)
        while True:
            outs = [runner.run_window(nxt[1], nxt[2], nxt[3])]
            outs.extend(self._recv(conn)[1] for conn in conns)
            ring_ops = sorted(
                (op for out in outs for op in out["ring_ops"]), key=ring_op_sort_key
            )
            deliveries = sorted(
                (d for out in outs for d in out["outbox"]), key=delivery_sort_key
            )
            busy: Dict[Any, float] = {}
            for out in outs:
                busy.update(out["busy"])
            per_worker: List[List[Tuple]] = [[] for _ in range(workers)]
            for d in deliveries:
                per_worker[worker_of[partition_of[d[2]]]].append(d)
            if ring_ops:
                # Membership ops create events at times the parent cannot
                # predict — apply everywhere, then resynchronize minima.
                for w, conn in enumerate(conns, start=1):
                    conn.send(("apply", ring_ops, per_worker[w], busy, "resync"))
                runner.apply_barrier(ring_ops, per_worker[0], busy)
                mins = [runner.next_event_time()]
                mins.extend(self._recv(conn)[1] for conn in conns)
                nxt = self._decide(mins, [], end, self.world.sim.now)
                if nxt[0] == "end":
                    self._broadcast(("end", end))
                    runner.finish_run(end)
                    return
                self._broadcast(nxt)
            else:
                heap_mins = [out["heap_min"] for out in outs]
                arrivals = [d[0] for d in deliveries]
                nxt = self._decide(heap_mins, arrivals, end, self.world.sim.now)
                for w, conn in enumerate(conns, start=1):
                    conn.send(("apply", (), per_worker[w], busy, nxt))
                runner.apply_barrier((), per_worker[0], busy)
                if nxt[0] == "end":
                    runner.finish_run(end)
                    return

    def _child_run(self, end: float) -> None:
        runner = self.runner
        conn = self.conn
        conn.send(("min", runner.next_event_time()))
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "window":
                conn.send(("out", runner.run_window(msg[1], msg[2], msg[3])))
            elif kind == "apply":
                _, ring_ops, deliveries, busy, nxt = msg
                runner.apply_barrier(ring_ops, deliveries, busy)
                if nxt == "resync":
                    conn.send(("min", runner.next_event_time()))
                elif nxt[0] == "window":
                    conn.send(("out", runner.run_window(nxt[1], nxt[2], nxt[3])))
                else:  # ("end", end)
                    runner.finish_run(nxt[1])
                    return
            else:  # ("end", end)
                runner.finish_run(msg[1])
                return

    def _broadcast(self, msg: Tuple) -> None:
        for conn in self.conns:
            conn.send(msg)

    def _recv(self, conn) -> Tuple:
        try:
            msg = conn.recv()
        except EOFError:
            raise ParallelWorkerError("worker pipe closed unexpectedly")
        if msg[0] == "error":
            raise ParallelWorkerError(f"worker failed:\n{msg[1]}")
        return msg

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def _final_payload(self) -> Dict[str, Any]:
        runner = self.runner
        ledger = self.world.ledger
        lists = {
            "creates": ledger.creates,
            "notes": ledger.notes,
            "duplicates": ledger.duplicates,
        }
        rows = [
            (name, partition, lists[name][idx])
            for name, idx, partition in runner.partitioned_ledger_rows
        ]
        return {
            "counters": dict(runner.partitioned_counter_totals),
            "call_deltas": self.call_deltas,
            "ledger_rows": rows,
            "outcomes": dict(ledger._outcome),
            "stream": [r for r in runner.stream if r[1] != REPLICATED],
            "window_counts": runner.window_counts,
            "dispatched": runner.lifetime_partitioned,
        }

    def _child_finish(self) -> None:
        self.conn.send(("final", self._final_payload()))
        # Parent drains the pipe before waitpid; once the payload is
        # flushed this replica's job is done.  Never return to caller
        # code — the parent owns the continuation.
        self.conn.close()
        os._exit(0)

    def _parent_finish(self) -> ParallelResult:
        world = self.world
        sim = world.sim
        payloads = []
        for conn in self.conns:
            payloads.append(self._recv(conn)[1])
            conn.close()
        for pid in self.pids:
            os.waitpid(pid, 0)

        own = self._final_payload()
        # Counters: parent already holds replicated + own-partition
        # increments; fold in the other workers' partitioned deltas.
        for payload in payloads:
            for name, delta in payload["counters"].items():
                sim.metrics.counter(name).value += delta
        # Ledger: parent rows (replicated + own partitions) plus foreign
        # partitioned rows, in canonical (when, repr) order.
        ledger = world.ledger
        merged = {
            "creates": list(ledger.creates),
            "notes": list(ledger.notes),
            "duplicates": list(ledger.duplicates),
        }
        for payload in payloads:
            for name, _partition, row in payload["ledger_rows"]:
                merged[name].append(row)
        ledger.creates[:] = sorted(merged["creates"], key=lambda r: (r.when, repr(r)))
        ledger.notes[:] = sorted(merged["notes"], key=lambda r: (r.when, repr(r)))
        ledger.duplicates[:] = sorted(
            merged["duplicates"], key=lambda r: (r.when, repr(r))
        )
        # Group outcomes are recorded once, by the root's partition; take
        # the earliest record per group across workers (first-write-wins,
        # matching the serial guard in record_live/record_failed_create).
        for payload in payloads:
            for fuse_id, entry in payload["outcomes"].items():
                existing = ledger._outcome.get(fuse_id)
                if existing is None or entry[1] < existing[1]:
                    ledger._outcome[fuse_id] = entry
        _rebuild_ledger_indices(ledger)

        stream = None
        if self.runner.record_stream:
            records = list(self.runner.stream)
            for payload in payloads:
                records.extend(payload["stream"])
            # Stable sort: (window, context) groups order; append order
            # within each context is already canonical.
            stream = sorted(records, key=lambda r: (r[0], r[1]))

        window_counts: List[Dict[int, int]] = [
            dict(c) for c in self.runner.window_counts
        ]
        for payload in payloads:
            for idx, counts in enumerate(payload["window_counts"]):
                window_counts[idx].update(counts)

        foreign_dispatched = sum(p["dispatched"] for p in payloads)
        sim._dispatched += foreign_dispatched

        call_deltas: List[Dict[str, float]] = [dict() for _ in self.call_deltas]
        for payload in payloads:
            for idx, deltas in enumerate(payload["call_deltas"]):
                bucket = call_deltas[idx]
                for name, delta in deltas.items():
                    bucket[name] = bucket.get(name, 0) + delta

        return ParallelResult(
            plan=self.plan,
            workers=self.workers,
            stream=stream,
            window_counts=window_counts,
            call_partitioned_deltas=call_deltas,
            events=sim.events_dispatched,
        )


def _rebuild_ledger_indices(ledger) -> None:
    """Recompute the ledger's derived lookup state from the merged lists."""
    ledger._members = {}
    for rec in ledger.creates:
        ledger._members.setdefault(rec.fuse_id, rec.members)
    ledger._first = {}
    ledger._times = {}
    ledger._member_notes = {}
    ledger._notified_groups = set()
    for rec in ledger.notes:
        key = (rec.fuse_id, rec.node)
        if key not in ledger._first:
            ledger._first[key] = rec
        if rec.role != "delegate":
            ledger._times.setdefault(rec.fuse_id, {}).setdefault(rec.node, rec.when)
            ledger._member_notes.setdefault(rec.fuse_id, []).append(rec)
            ledger._notified_groups.add(rec.fuse_id)


def run_partitioned(
    world,
    body: Callable[[ParallelSession], Any],
    workers: int = 1,
    partitions: Optional[int] = None,
    record_stream: bool = False,
) -> ParallelResult:
    """Run ``body`` over ``world`` divided into lock-stepped partitions.

    ``body(session)`` executes in the parent *and* in every forked
    worker; it must drive virtual time only via ``session.run_for`` and
    keep everything between those calls deterministic (it is running
    replicated).  Only the parent returns; workers ship their partition
    results over a pipe and exit inside this call.

    ``workers`` is the process count, ``partitions`` (default: workers)
    the partition count — fixing ``partitions`` while varying
    ``workers`` keeps the window schedule, and therefore every merged
    artifact, byte-identical across worker counts.
    """
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    if partitions is None:
        partitions = workers
    plan = PartitionPlan.build(world, partitions)
    workers = min(workers, plan.n_partitions)

    sim = world.sim
    net = world.net
    plane = sim.lane_plane
    # Lanes batch replicated liveness traffic; inside windows every event
    # must flow through the attributable per-event path, so the plane is
    # suspended for the session (lane and non-lane dispatch are
    # byte-identical by the lanes contract, so all lanes modes converge).
    if plane is not None:
        plane.suspend()
    busy_plain = net._send_busy_until
    net._send_busy_until = _DirtyTrackingDict(busy_plain)

    conns: List[Any] = []
    pids: List[int] = []
    child_session: Optional[ParallelSession] = None
    try:
        for index in range(1, workers):
            parent_end, child_end = Pipe(duplex=True)
            sys.stdout.flush()
            sys.stderr.flush()
            pid = os.fork()
            if pid == 0:
                for c in conns:
                    c.close()
                parent_end.close()
                child_session = ParallelSession(
                    world, plan, index, workers,
                    conn=child_end, record_stream=record_stream,
                )
                break
            child_end.close()
            conns.append(parent_end)
            pids.append(pid)

        if child_session is not None:
            try:
                body(child_session)
                child_session._child_finish()
            except BaseException:
                try:
                    child_session.conn.send(("error", traceback.format_exc()))
                    child_session.conn.close()
                except Exception:
                    pass
                os._exit(1)
            os._exit(0)  # pragma: no cover - _child_finish never returns

        session = ParallelSession(
            world, plan, 0, workers,
            conns=conns, pids=pids, record_stream=record_stream,
        )
        try:
            body(session)
            return session._parent_finish()
        except BaseException:
            for conn in conns:
                try:
                    conn.close()
                except Exception:
                    pass
            for pid in pids:
                try:
                    os.waitpid(pid, 0)
                except ChildProcessError:
                    pass
            raise
    finally:
        # Parent-only teardown (children exited above).
        net._send_busy_until = dict(net._send_busy_until)
        if plane is not None:
            plane.resume()

"""Unified aggregation over completed trials.

A :class:`ResultSet` wraps the ordered list of
:class:`~repro.engine.trial.TrialResult` an executor returned and offers
the operations every experiment's reporting needs:

* selection — :meth:`where` / :meth:`group_by` over grid parameters;
* sample series — :meth:`samples`, :meth:`percentile`, :meth:`cdf`,
  :meth:`histogram` (lists concatenated across trials);
* scalar reduction — :meth:`total`, :meth:`mean`, :meth:`ci95`;
* reporting — a generic :meth:`format_table` plus JSON serialization
  (:meth:`to_json` / :meth:`from_json`) so any figure can be archived as
  machine-readable results and reloaded later.

Aggregation is always performed in trial-index order, so a parallel run
aggregates to exactly the same numbers as a serial one.

Paper cross-reference: §7 — the reductions here are the paper's three
reporting shapes (rates over a window for Fig 10/§7.5, percentile bars
for Figs 7-8, CDFs for Figs 6/9/11) applied over merged trials.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine.trial import TrialResult
from repro.sim.metrics import CdfSeries, Histogram, percentile


class ResultSet:
    """An ordered collection of trial results with aggregation helpers."""

    def __init__(self, trials: Sequence[TrialResult], experiment: str = "") -> None:
        self.trials: List[TrialResult] = sorted(trials, key=lambda t: t.spec.index)
        self.experiment = experiment or (
            self.trials[0].spec.experiment if self.trials else ""
        )

    def __len__(self) -> int:
        return len(self.trials)

    def __iter__(self) -> Iterator[TrialResult]:
        return iter(self.trials)

    # ------------------------------------------------------------------
    # Selection over grid parameters
    # ------------------------------------------------------------------
    def where(self, **params: Any) -> "ResultSet":
        """Trials whose grid point matches every given parameter."""
        kept = [
            t
            for t in self.trials
            if all(t.spec.params.get(k) == v for k, v in params.items())
        ]
        return ResultSet(kept, experiment=self.experiment)

    def axis(self, name: str) -> List[Any]:
        """Ordered distinct values of one grid parameter."""
        seen: List[Any] = []
        for t in self.trials:
            value = t.spec.params.get(name)
            if value not in seen:
                seen.append(value)
        return seen

    def group_by(self, name: str) -> "Dict[Any, ResultSet]":
        """Split into sub-sets per distinct value of one grid parameter."""
        return {value: self.where(**{name: value}) for value in self.axis(name)}

    # ------------------------------------------------------------------
    # Measurement access
    # ------------------------------------------------------------------
    def samples(self, name: str) -> List[float]:
        """All values recorded under ``name``, lists flattened, in trial order."""
        out: List[float] = []
        for t in self.trials:
            value = t.measurements.get(name)
            if value is None:
                continue
            if isinstance(value, (list, tuple)):
                out.extend(value)
            else:
                out.append(value)
        return out

    def scalars(self, name: str) -> List[Any]:
        """One value per trial that recorded ``name`` (no flattening)."""
        return [
            t.measurements[name] for t in self.trials if name in t.measurements
        ]

    def total(self, name: str) -> float:
        return sum(self.scalars(name))

    def mean(self, name: str) -> float:
        values = self.samples(name)
        if not values:
            raise ValueError(f"no samples recorded under {name!r}")
        return sum(values) / len(values)

    def percentile(self, name: str, pct: float) -> float:
        return percentile(self.samples(name), pct)

    def ci95(self, name: str) -> Tuple[float, float]:
        """Normal-approximation 95% confidence interval on the mean."""
        values = self.samples(name)
        if not values:
            raise ValueError(f"no samples recorded under {name!r}")
        n = len(values)
        mean = sum(values) / n
        if n == 1:
            return (mean, mean)
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        half = 1.96 * math.sqrt(var / n)
        return (mean - half, mean + half)

    def cdf(self, name: str, series_name: str = "") -> CdfSeries:
        return CdfSeries(series_name or name, self.samples(name))

    def histogram(self, name: str, series_name: str = "") -> Histogram:
        hist = Histogram(series_name or name)
        hist.extend(self.samples(name))
        return hist

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @property
    def total_wall_seconds(self) -> float:
        """Summed per-trial CPU-side wall clock (serial-equivalent cost)."""
        return sum(t.wall_seconds for t in self.trials)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def format_table(self, title: str = "") -> str:
        """Generic one-row-per-grid-point summary table.

        Experiments ship their own figure-specific tables; this renderer
        is the fallback for ad-hoc sweeps: grid axes as leading columns,
        then each measurement reduced to a mean (scalars) or a median over
        the concatenated samples (lists).
        """
        from repro.experiments.report import format_table as render

        axes = []
        for t in self.trials:
            for name in t.spec.params:
                if name not in axes:
                    axes.append(name)
        measurement_names: List[str] = []
        for t in self.trials:
            for name in t.measurements:
                if name not in measurement_names:
                    measurement_names.append(name)

        def reduce(subset: "ResultSet", name: str) -> object:
            values = subset.samples(name)
            numeric = [v for v in values if isinstance(v, (int, float))]
            if not numeric:
                return "-"
            if any(
                isinstance(t.measurements.get(name), (list, tuple))
                for t in subset.trials
            ):
                return percentile(numeric, 50)
            return sum(numeric) / len(numeric)

        points: List[Tuple[Any, ...]] = []
        for t in self.trials:
            key = tuple(t.spec.params.get(a) for a in axes)
            if key not in points:
                points.append(key)
        rows = []
        for key in points:
            subset = self.where(**{a: v for a, v in zip(axes, key) if v is not None})
            rows.append(
                tuple(key)
                + tuple(reduce(subset, name) for name in measurement_names)
                + (len(subset),)
            )
        headers = list(axes) + measurement_names + ["trials"]
        return render(
            headers, rows, title=title or f"{self.experiment} — sweep summary"
        )

    # ------------------------------------------------------------------
    # JSON serialization
    # ------------------------------------------------------------------
    def to_json_dict(self, include_timing: bool = True) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "trials": [t.to_json_dict(include_timing) for t in self.trials],
        }

    def to_json(self, include_timing: bool = True, indent: Optional[int] = None) -> str:
        return json.dumps(
            self.to_json_dict(include_timing), indent=indent, sort_keys=True
        )

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "ResultSet":
        trials = [TrialResult.from_json_dict(t) for t in data.get("trials", [])]
        return cls(trials, experiment=data.get("experiment", ""))

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        return cls.from_json_dict(json.loads(text))

    def __repr__(self) -> str:
        return f"ResultSet({self.experiment!r}, trials={len(self.trials)})"

"""Trial primitives for the shared experiment engine.

A *trial* is the unit of work every experiment decomposes into: build one
isolated simulated world from a seed and a point in a parameter grid, run
a scenario, and return a flat dictionary of measurements.  Because a trial
owns its :class:`~repro.sim.kernel.Simulator` end to end, trials are
independent of each other — which is what lets the executor in
:mod:`repro.engine.parallel` fan them out across processes while keeping
results seed-for-seed identical to a serial run.

Measurement values must be JSON-serializable: scalars (int/float/str/bool)
or flat lists of them.  Lists are treated as *sample series* by the
aggregation layer (concatenated across trials); scalars are collected and
reduced (summed or averaged).

Paper cross-reference: §7 methodology — one trial is one "run" of a §7
experiment (or of a :mod:`repro.scenarios` timeline) at one parameter
point under one seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping

from repro.net.backends.wallclock import perf_seconds

#: What a trial function returns: measurement name -> scalar or sample list.
Measurements = Dict[str, Any]

#: A trial function: pure apart from its spec; must be a module-level
#: callable so the parallel executor can ship it to worker processes.
TrialFn = Callable[["TrialSpec"], Measurements]


@dataclass(frozen=True)
class TrialSpec:
    """One schedulable unit of experiment work.

    Attributes:
        experiment: name of the experiment this trial belongs to ("fig7").
        index: stable ordinal within the expanded sweep; aggregation
            happens in index order so serial and parallel runs agree.
        seed: the derived seed this trial's world is built from.
        base_seed: the user-facing seed the derivation started from
            (useful for grouping seed replicas).
        params: this trial's point in the parameter grid.
        context: experiment-level configuration shared by every trial
            (typically the experiment's config dataclass).  Must be
            picklable; it is *not* included in JSON serialization.
    """

    experiment: str
    index: int
    seed: int
    base_seed: int
    params: Mapping[str, Any] = field(default_factory=dict)
    context: Any = None

    def __getitem__(self, name: str) -> Any:
        return self.params[name]

    def get(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)


@dataclass
class TrialResult:
    """A completed trial: its spec, measurements, and wall-clock cost."""

    spec: TrialSpec
    measurements: Measurements
    wall_seconds: float

    def to_json_dict(self, include_timing: bool = True) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "experiment": self.spec.experiment,
            "index": self.spec.index,
            "seed": self.spec.seed,
            "base_seed": self.spec.base_seed,
            "params": dict(self.spec.params),
            "measurements": self.measurements,
        }
        if include_timing:
            out["wall_seconds"] = self.wall_seconds
        return out

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "TrialResult":
        spec = TrialSpec(
            experiment=data["experiment"],
            index=data["index"],
            seed=data["seed"],
            base_seed=data["base_seed"],
            params=dict(data.get("params", {})),
        )
        return cls(
            spec=spec,
            measurements=dict(data.get("measurements", {})),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
        )


def run_trial(fn: TrialFn, spec: TrialSpec) -> TrialResult:
    """Execute one trial, timing it.  Runs in the caller's process."""
    started = perf_seconds()
    measurements = fn(spec)
    elapsed = perf_seconds() - started
    if not isinstance(measurements, dict):
        raise TypeError(
            f"trial function for {spec.experiment!r} returned "
            f"{type(measurements).__name__}, expected a measurements dict"
        )
    return TrialResult(spec=spec, measurements=measurements, wall_seconds=elapsed)

"""Shared trial engine: declarative sweeps, multi-core execution, unified
aggregation.

Paper cross-reference: this is the §7 evaluation *methodology* layer —
the paper reports each figure over repeated runs with controlled
parameters; here that becomes an explicit grid × seeds decomposition
with machine-checkable serial/parallel equivalence.  The figures
themselves live in :mod:`repro.experiments`; open-ended fault timelines
run through the same engine via :mod:`repro.scenarios`.

Every experiment in :mod:`repro.experiments` is expressed as:

1. a **trial function** — a module-level callable building one isolated
   world from a :class:`TrialSpec` and returning a measurements dict
   (:mod:`repro.engine.trial`);
2. a **sweep** — the parameter grid × seed replication that expands into
   trial specs (:mod:`repro.engine.sweep`);
3. an **executor** call — serial loop or multiprocessing fan-out with
   identical results either way (:mod:`repro.engine.parallel`);
4. an **aggregation** step over the returned :class:`ResultSet`
   (:mod:`repro.engine.results`).

Minimal use::

    from repro.engine import ResultSet, Sweep, run_trials

    def _trial(spec):
        world = build_world(seed=spec.seed, size=spec["size"])
        return {"latency_ms": measure(world)}

    specs = Sweep(grid={"size": (2, 4, 8)}, seeds=(1, 2)).expand("demo")
    rs = ResultSet(run_trials(_trial, specs, jobs=4))
    print(rs.format_table())
"""

from repro.engine.parallel import run_trials
from repro.engine.results import ResultSet
from repro.engine.sweep import Sweep, derive_seed
from repro.engine.trial import Measurements, TrialFn, TrialResult, TrialSpec, run_trial

__all__ = [
    "Measurements",
    "ResultSet",
    "Sweep",
    "TrialFn",
    "TrialResult",
    "TrialSpec",
    "derive_seed",
    "run_trial",
    "run_trials",
]

"""Trial executor: fan independent trials across cores, or run serially.

Because each trial owns an isolated :class:`~repro.sim.kernel.Simulator`
seeded from its spec, the *results* of a trial are a pure function of the
spec — so executing trials in worker processes and executing them in a
serial loop produce identical measurements, and aggregate results are
seed-for-seed identical for any ``jobs`` value.  Only wall-clock timings
differ.

The worker entry point is :func:`repro.engine.trial.run_trial` partially
applied to the experiment's module-level trial function, so everything the
pool ships is picklable by reference.  ``fork`` is preferred when the
platform offers it (cheap on Linux); ``spawn`` is the fallback.

Paper cross-reference: §7 methodology — regenerating the paper's
evaluation is embarrassingly parallel across runs; this module is the
``--jobs`` flag behind every experiment and scenario CLI.
"""

from __future__ import annotations

import functools
import multiprocessing
from typing import Callable, Iterable, List, Optional, Sequence

from repro.engine.trial import TrialFn, TrialResult, TrialSpec, run_trial

#: Streaming hook: receives each completed :class:`TrialResult` in spec
#: order, as soon as it is available.
ResultSink = Callable[[TrialResult], None]


def _pick_start_method(preferred: Optional[str]) -> str:
    available = multiprocessing.get_all_start_methods()
    if preferred is not None:
        if preferred not in available:
            raise ValueError(
                f"start method {preferred!r} unavailable (have {available})"
            )
        return preferred
    return "fork" if "fork" in available else "spawn"


def run_trials(
    fn: TrialFn,
    specs: Iterable[TrialSpec],
    jobs: int = 1,
    start_method: Optional[str] = None,
    on_result: Optional[ResultSink] = None,
    keep_results: bool = True,
) -> List[TrialResult]:
    """Run every trial and return results in spec order.

    Args:
        fn: module-level trial function (picklable when ``jobs > 1``).
        specs: trial specs, typically from :meth:`Sweep.expand`.
        jobs: worker process count; ``<= 1`` means a serial in-process
            loop (the deterministic fallback — no multiprocessing at all).
        start_method: override the multiprocessing start method.
        on_result: streaming sink invoked with each completed trial *in
            spec order* as soon as it is available (``imap`` under the
            hood, so a parallel run streams exactly the sequence a serial
            run would).  Large sharded sweeps archive incrementally here.
        keep_results: set False to drop results after the sink has seen
            them — the memory-lean mode for sweeps whose only consumer is
            ``on_result``; the return value is then an empty list.
    """
    spec_list: Sequence[TrialSpec] = list(specs)
    jobs = min(max(1, int(jobs)), len(spec_list)) if spec_list else 1
    results: List[TrialResult] = []
    if jobs <= 1:
        for spec in spec_list:
            result = run_trial(fn, spec)
            if on_result is not None:
                on_result(result)
            if keep_results:
                results.append(result)
        return results

    ctx = multiprocessing.get_context(_pick_start_method(start_method))
    worker = functools.partial(run_trial, fn)
    with ctx.Pool(processes=jobs) as pool:
        # chunksize=1: trials are coarse-grained; balance beats batching.
        # imap (not map) so completed shards stream out in spec order
        # while later shards are still running.
        for result in pool.imap(worker, spec_list, chunksize=1):
            if on_result is not None:
                on_result(result)
            if keep_results:
                results.append(result)
    return results

"""Declarative parameter sweeps: grid axes × seed replication.

A :class:`Sweep` describes *what* to run — a cartesian product of named
parameter axes, replicated over a set of base seeds — and expands into the
flat, deterministically ordered list of :class:`~repro.engine.trial.TrialSpec`
the executor consumes.

Seed derivation is position-independent: a trial's seed depends only on
the experiment name, the base seed, and the trial's own grid point — not
on how many other axes or seeds the sweep has.  Adding a grid value or an
extra seed therefore never perturbs the worlds of existing trials.

Paper cross-reference: §7 methodology — the paper varies group size
(Figs 7, 8), loss rate (Figs 11, 12), and scenario (Fig 10) axis by
axis; a :class:`Sweep` is that experimental design made declarative.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence

from repro.engine.trial import TrialSpec


def derive_seed(*components: Any) -> int:
    """Deterministically hash ``components`` into a 63-bit seed.

    Stable across processes and Python invocations (unlike ``hash()``,
    which is randomized per process for strings).
    """
    key = "\x1f".join(repr(c) for c in components)
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1


@dataclass
class Sweep:
    """A parameter grid crossed with a set of base seeds.

    Attributes:
        grid: axis name -> sequence of values.  The expansion order is the
            cartesian product with the *last* axis varying fastest, per
            base seed.  An empty grid yields one trial per seed.
        seeds: base seeds; the whole grid is replicated once per seed.
    """

    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    seeds: Sequence[int] = (0,)

    def grid_points(self) -> List[Dict[str, Any]]:
        """The grid's points in deterministic expansion order."""
        names = list(self.grid)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.grid[n] for n in names))
        ]

    @property
    def n_trials(self) -> int:
        return len(self.grid_points()) * len(self.seeds)

    def expand(self, experiment: str, context: Any = None) -> List[TrialSpec]:
        """Flatten into trial specs with derived per-trial seeds."""
        specs: List[TrialSpec] = []
        for base_seed in self.seeds:
            for point in self.grid_points():
                seed = derive_seed(
                    experiment, base_seed, sorted(point.items(), key=lambda kv: kv[0])
                )
                specs.append(
                    TrialSpec(
                        experiment=experiment,
                        index=len(specs),
                        seed=seed,
                        base_seed=base_seed,
                        params=point,
                        context=context,
                    )
                )
        return specs

"""First-class FUSE group API: handles, lifecycle events, notification ledger.

The paper's application surface is three calls (§2, Fig 1): CreateGroup,
RegisterFailureHandler, SignalFailure.  This module is the typed,
object-level form of that surface for everything that *consumes* groups —
apps, experiments, scenario tracks:

* :class:`FuseGroup` — the handle ``create_group`` returns.  It carries
  the group's identity (``fuse_id``, ``root``, ``members``), its
  lifecycle :class:`GroupStatus`, and subscription points for the three
  observable transitions::

      creating ──ok──────────▶ live ──first member notified──▶ notified
          │                     on_live(cb)                  on_notified(cb)
          └──any member unreachable──▶ failed_create         on_member_notified(cb)
                                       (on_notified fires too)

* :class:`GroupLedger` — one per world (``FuseWorld.ledger``): the
  append-only record of every creation attempt and every per-member
  notification (who, when, why, in which scenario phase).  It is the
  single source of truth for agreement / false-positive / latency
  accounting: experiments and scenario ``[expect]`` assertions read the
  ledger instead of re-implementing observer bookkeeping per consumer.

* :class:`NotificationReason` — the typed "why" of a notification.  The
  protocol reports raw cause strings (``"link-timeout"``,
  ``"repair-unknown-at-17"``, …); the ledger classifies them and — when
  it can see the world's fault state — refines detection-driven causes
  into ``crash`` / ``disconnect`` / ``false_positive``.

Dispatch semantics, which the byte-identical guarantee of the refactor
rests on: ledger recording and handle callbacks run *synchronously* at
the instant the underlying service event fires, never through the event
queue, so adopting handles schedules no new events and perturbs no RNG
stream.  Callbacks subscribed after the fact are caught up immediately
(``on_live`` on an already-live group fires right away), mirroring §3.2's
"RegisterFailureHandler on a failed group notifies immediately".

Exactly-once: the ledger keeps the *first* notification per
(group, member) — the first-cause record — and files any later report
for the same pair under :attr:`GroupLedger.duplicates` instead of
double-counting it (a group both signalled and crash-detected in one
trial yields one row per member).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.fuse.ids import FuseId
from repro.net.address import NodeId


class GroupStatus(str, enum.Enum):
    """Lifecycle of one FUSE group as the ledger sees it."""

    CREATING = "creating"
    LIVE = "live"
    NOTIFIED = "notified"
    FAILED_CREATE = "failed_create"


class NotificationReason(str, enum.Enum):
    """Typed cause of a hard notification (§6.4's notification sources)."""

    SIGNALLED = "signalled"  # the application called SignalFailure (§3.2)
    CRASH = "crash"  # detection, and a group member is crashed
    DISCONNECT = "disconnect"  # detection, and a group member is unplugged
    LINK_TIMEOUT = "link_timeout"  # a liveness-checking link fell silent (§6.3)
    CREATE_FAILED = "create_failed"  # blocking create could not reach a member (§6.2)
    REPAIR_FAILED = "repair_failed"  # repair gave up or found no state (§6.5)
    RECONCILE = "reconcile"  # id-list reconciliation disagreed (§6.3)
    GRAY_FAIL = "gray_fail"  # detection, and a group member is gray-failed
    FALSE_POSITIVE = "false_positive"  # detection with no fault in the world
    UNKNOWN = "unknown"


#: Detection-driven reasons the ledger refines against live fault state.
_REFINABLE = frozenset(
    {
        NotificationReason.LINK_TIMEOUT,
        NotificationReason.REPAIR_FAILED,
        NotificationReason.RECONCILE,
        NotificationReason.UNKNOWN,
    }
)


def base_reason(raw: str) -> NotificationReason:
    """Map a protocol cause string to its typed reason.

    Covers both the overlay implementation's strings
    (:mod:`repro.fuse.service`) and the §5 alternative topologies'
    (``silent:…``, ``server-…``).  The no-repair ablation prefixes causes
    with ``no-repair:``; classification looks through the prefix.
    """
    if raw.startswith("no-repair:"):
        raw = raw[len("no-repair:") :]
    if raw == "signaled":
        return NotificationReason.SIGNALLED
    if raw.startswith("create-failed"):
        return NotificationReason.CREATE_FAILED
    if raw in ("link-timeout", "no-checking-installed", "soft-notification"):
        return NotificationReason.LINK_TIMEOUT
    if raw.startswith("overlay-") or raw.startswith("silent:"):
        return NotificationReason.LINK_TIMEOUT
    if raw == "reconcile-disagreement":
        return NotificationReason.RECONCILE
    if (
        raw in ("member-repair-timeout", "group-gone", "stable-storage-recovery")
        or raw.startswith("repair-")
        or raw.startswith("server-")
        or raw.startswith("dropped-by-")
        or (raw.startswith("node-") and raw.endswith("-silent"))
    ):
        return NotificationReason.REPAIR_FAILED
    return NotificationReason.UNKNOWN


class CreateRecord(NamedTuple):
    """One CreateGroup attempt (ledger row)."""

    when: float
    fuse_id: FuseId
    root: NodeId
    members: Tuple[NodeId, ...]  # includes the root
    phase: str


class NoteRecord(NamedTuple):
    """One delivered notification (ledger row): who, when, why, where."""

    when: float
    fuse_id: FuseId
    node: NodeId
    role: str  # "root" | "member" | "delegate"
    reason: "NotificationReason"
    raw: str  # the protocol's cause string, verbatim
    phase: str


class FuseGroup:
    """Application-facing handle for one FUSE group.

    Returned by ``FuseService.create_group`` (and the §5 alternative
    topologies, and ``FuseWorld.create_group``).  ``owner`` is the
    creating service — ``signal()`` forwards to its ``signal_failure``.
    """

    __slots__ = (
        "owner",
        "fuse_id",
        "root",
        "members",
        "_ledger",
        "_live_cbs",
        "_notified_cbs",
        "_member_cbs",
        "_live_fired",
        "_notified_fired",
        "_notified_reason",
    )

    def __init__(
        self,
        owner,
        ledger: "GroupLedger",
        fuse_id: FuseId,
        root: NodeId,
        members: Sequence[NodeId],
    ) -> None:
        self.owner = owner
        self.fuse_id = fuse_id
        self.root = root
        self.members: Tuple[NodeId, ...] = tuple(members)
        self._ledger = ledger
        self._live_cbs: List[Callable[["FuseGroup"], None]] = []
        self._notified_cbs: List[Callable[["FuseGroup", NotificationReason], None]] = []
        self._member_cbs: List[
            Callable[["FuseGroup", NodeId, NotificationReason], None]
        ] = []
        self._live_fired = False
        self._notified_fired = False
        self._notified_reason: Optional[NotificationReason] = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def status(self) -> GroupStatus:
        return self._ledger.status_of(self.fuse_id)

    @property
    def ledger(self) -> "GroupLedger":
        return self._ledger

    @property
    def create_failure_reason(self) -> Optional[str]:
        """The raw cause string when creation failed, else ``None``."""
        return self._ledger.create_failure_reason(self.fuse_id)

    def notified_members(self) -> Dict[NodeId, float]:
        """member -> virtual ms of that member's (first) notification."""
        return dict(self._ledger.notification_times(self.fuse_id))

    # ------------------------------------------------------------------
    # Subscriptions (synchronous dispatch; late subscribers catch up)
    # ------------------------------------------------------------------
    def on_live(self, cb: Callable[["FuseGroup"], None]) -> "FuseGroup":
        """``cb(group)`` once creation completes on every member (§3.2)."""
        if self._live_fired:
            cb(self)
        else:
            self._live_cbs.append(cb)
        return self

    def on_notified(
        self, cb: Callable[["FuseGroup", NotificationReason], None]
    ) -> "FuseGroup":
        """``cb(group, reason)`` once, when the group transitions to
        ``notified`` (first member-level notification anywhere) or to
        ``failed_create``."""
        if self._notified_fired:
            cb(self, self._notified_reason or NotificationReason.UNKNOWN)
        else:
            self._notified_cbs.append(cb)
        return self

    def on_member_notified(
        self, cb: Callable[["FuseGroup", NodeId, NotificationReason], None]
    ) -> "FuseGroup":
        """``cb(group, member, reason)`` for every member's first
        notification (the one-way-agreement fan-out, §3).  Past member
        notifications are replayed immediately on subscription."""
        for rec in self._ledger.member_notes(self.fuse_id):
            cb(self, rec.node, rec.reason)
        self._member_cbs.append(cb)
        return self

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def signal(self) -> None:
        """SignalFailure through the creating service (§3.2)."""
        self.owner.signal_failure(self.fuse_id)

    # ------------------------------------------------------------------
    # Ledger-driven dispatch (internal)
    # ------------------------------------------------------------------
    def _fire_live(self) -> None:
        if self._live_fired:
            return
        self._live_fired = True
        cbs, self._live_cbs = self._live_cbs, []
        for cb in cbs:
            cb(self)

    def _fire_notified(self, reason: NotificationReason) -> None:
        if self._notified_fired:
            return
        self._notified_fired = True
        self._notified_reason = reason
        cbs, self._notified_cbs = self._notified_cbs, []
        for cb in cbs:
            cb(self, reason)

    def _fire_member(self, node: NodeId, reason: NotificationReason) -> None:
        for cb in list(self._member_cbs):
            cb(self, node, reason)

    def __repr__(self) -> str:
        return (
            f"FuseGroup({self.fuse_id}, root={self.root}, "
            f"members={list(self.members)}, status={self.status.value})"
        )


#: note listener signature: fn(record, first) — ``first`` is False for a
#: duplicate report of an already-notified (group, member) pair.
NoteListener = Callable[[NoteRecord, bool], None]


class GroupLedger:
    """World-level append-only record of group lifecycle events.

    One instance per :class:`~repro.world.FuseWorld` (shared by every
    ``FuseService``); standalone services create a private one.  Rows are
    cheap named tuples; recording never touches the event queue or any
    RNG stream, so the ledger is observationally free.
    """

    __slots__ = (
        "sim",
        "faults",
        "creates",
        "notes",
        "duplicates",
        "_members",
        "_outcome",
        "_first",
        "_times",
        "_member_notes",
        "_notified_groups",
        "_handles",
        "_listeners",
        "_phase",
    )

    def __init__(self, sim, faults=None) -> None:
        self.sim = sim
        #: optional :class:`repro.net.faults.FaultInjector` used to refine
        #: detection-driven reasons into crash/disconnect/false_positive.
        self.faults = faults
        self.creates: List[CreateRecord] = []
        self.notes: List[NoteRecord] = []
        #: suppressed second-and-later reports per (group, member) — the
        #: double-count guard; agreement checks assert this stays empty.
        self.duplicates: List[NoteRecord] = []
        self._members: Dict[FuseId, Tuple[NodeId, ...]] = {}
        self._outcome: Dict[FuseId, Tuple[str, float, str]] = {}
        self._first: Dict[Tuple[FuseId, NodeId], NoteRecord] = {}
        self._times: Dict[FuseId, Dict[NodeId, float]] = {}
        self._member_notes: Dict[FuseId, List[NoteRecord]] = {}
        self._notified_groups: Set[FuseId] = set()
        self._handles: Dict[FuseId, FuseGroup] = {}
        self._listeners: List[NoteListener] = []
        self._phase = ""

    # ------------------------------------------------------------------
    # Phase labelling (scenario integration)
    # ------------------------------------------------------------------
    @property
    def phase(self) -> str:
        return self._phase

    def set_phase(self, name: str) -> None:
        """Label subsequent rows with a scenario phase name."""
        self._phase = name

    # ------------------------------------------------------------------
    # Recording (called by the FUSE implementations)
    # ------------------------------------------------------------------
    def record_create(
        self, fuse_id: FuseId, root: NodeId, members: Sequence[NodeId]
    ) -> None:
        """A CreateGroup attempt started (root + full membership)."""
        everyone = tuple(members)
        self.creates.append(
            CreateRecord(self.sim.now, fuse_id, root, everyone, self._phase)
        )
        self._members[fuse_id] = everyone

    def attach_handle(self, handle: FuseGroup) -> None:
        self._handles[handle.fuse_id] = handle

    def handle(self, fuse_id: FuseId) -> Optional[FuseGroup]:
        """The creator's handle for ``fuse_id`` (None for legacy creates)."""
        return self._handles.get(fuse_id)

    def group_live(self, fuse_id: FuseId) -> None:
        """Creation completed on every member.  First outcome wins."""
        if fuse_id in self._outcome:
            return
        self._outcome[fuse_id] = ("live", self.sim.now, "ok")
        handle = self._handles.get(fuse_id)
        if handle is not None:
            handle._fire_live()

    def group_create_failed(self, fuse_id: FuseId, reason: str) -> None:
        """Blocking create gave up.  First outcome wins (§6.2)."""
        if fuse_id in self._outcome:
            return
        self._outcome[fuse_id] = ("failed_create", self.sim.now, reason)
        handle = self._handles.get(fuse_id)
        if handle is not None:
            handle._fire_notified(NotificationReason.CREATE_FAILED)

    def notified(self, fuse_id: FuseId, node: NodeId, role: str, raw: str) -> None:
        """A node's FUSE instance delivered a hard notification.

        The first report per (group, member) is the ledger row — the
        *first-cause* record; later reports for the same pair land in
        :attr:`duplicates`.  ``role`` is "root"/"member"/"delegate";
        delegate rows are kept (experiments count them) but do not drive
        handle callbacks or group status.
        """
        record = NoteRecord(
            self.sim.now, fuse_id, node, role, self._classify(fuse_id, raw), raw, self._phase
        )
        key = (fuse_id, node)
        first = key not in self._first
        if not first:
            self.duplicates.append(record)
        else:
            self._first[key] = record
            self.notes.append(record)
            if role != "delegate":
                self._times.setdefault(fuse_id, {})[node] = record.when
                self._member_notes.setdefault(fuse_id, []).append(record)
                newly_notified = fuse_id not in self._notified_groups
                self._notified_groups.add(fuse_id)
                handle = self._handles.get(fuse_id)
                if handle is not None:
                    handle._fire_member(node, record.reason)
                    if newly_notified:
                        handle._fire_notified(record.reason)
        for listener in self._listeners:
            listener(record, first)

    def add_note_listener(self, listener: NoteListener) -> None:
        """Low-level hook: ``listener(record, first)`` on every report,
        duplicates included (the deprecation shim for the old global
        ``observe_notifications`` observer rides on this)."""
        self._listeners.append(listener)

    def _classify(self, fuse_id: FuseId, raw: str) -> NotificationReason:
        reason = base_reason(raw)
        faults = self.faults
        if faults is not None and reason in _REFINABLE:
            members = self._members.get(fuse_id, ())
            if any(faults.is_crashed(m) for m in members):
                return NotificationReason.CRASH
            if any(faults.is_disconnected(m) for m in members):
                return NotificationReason.DISCONNECT
            if any(faults.is_gray_failed(m) for m in members):
                # The member answers pings but blackholes application
                # traffic: detections here come from rpc/repair timeouts,
                # never from the liveness plane.  Checked after crash and
                # disconnect (those dominate when combined) and before
                # the false-positive fallback — a gray member makes the
                # detection real, not a loss artifact.
                return NotificationReason.GRAY_FAIL
            if not faults.has_link_faults():
                return NotificationReason.FALSE_POSITIVE
        return reason

    # ------------------------------------------------------------------
    # Queries (the accounting surface)
    # ------------------------------------------------------------------
    def status_of(self, fuse_id: FuseId) -> GroupStatus:
        outcome = self._outcome.get(fuse_id)
        if outcome is not None and outcome[0] == "failed_create":
            return GroupStatus.FAILED_CREATE
        if fuse_id in self._notified_groups:
            return GroupStatus.NOTIFIED
        if outcome is not None:
            return GroupStatus.LIVE
        return GroupStatus.CREATING

    def create_failure_reason(self, fuse_id: FuseId) -> Optional[str]:
        outcome = self._outcome.get(fuse_id)
        if outcome is not None and outcome[0] == "failed_create":
            return outcome[2]
        return None

    def members_of(self, fuse_id: FuseId) -> Tuple[NodeId, ...]:
        """Full membership (root included) as recorded at creation."""
        return self._members.get(fuse_id, ())

    def notification_times(self, fuse_id: FuseId) -> Dict[NodeId, float]:
        """member -> first notification time (ms), insertion-ordered
        chronologically.  A live view that updates as notifications land
        (cheap to poll in a drive-until-notified loop) — treat as
        read-only."""
        return self._times.setdefault(fuse_id, {})

    def member_notes(self, fuse_id: FuseId) -> List[NoteRecord]:
        """First-cause member/root-role rows for one group, in time order."""
        return self._member_notes.get(fuse_id, [])

    def first_note(self, fuse_id: FuseId, node: NodeId) -> Optional[NoteRecord]:
        return self._first.get((fuse_id, node))

    def was_notified(self, fuse_id: FuseId, node: Optional[NodeId] = None) -> bool:
        """Did ``node`` (any role) — or, with ``node=None``, *any* node —
        record a notification for this group?"""
        if node is None:
            return any(key[0] == fuse_id for key in self._first)
        return (fuse_id, node) in self._first

    def notified_group_ids(self) -> Set[FuseId]:
        """Groups with at least one row at any node, delegates included."""
        return {key[0] for key in self._first}

    def reason_counts(self) -> Dict[str, int]:
        """Typed reason -> member/root-role row count (Fig 12 flavour)."""
        counts: Dict[str, int] = {}
        for rows in self._member_notes.values():
            for rec in rows:
                counts[rec.reason.value] = counts.get(rec.reason.value, 0) + 1
        return counts

    def __repr__(self) -> str:
        return (
            f"GroupLedger(creates={len(self.creates)}, notes={len(self.notes)}, "
            f"duplicates={len(self.duplicates)})"
        )


def ledger_completion(
    ledger: GroupLedger,
    fuse_id: FuseId,
    legacy_cb: Optional[Callable[[Optional[FuseId], str], None]],
) -> Callable[[Optional[FuseId], str], None]:
    """The single create-completion callback every FUSE implementation
    routes through: records the outcome on the ledger (which dispatches
    the handle), then invokes the deprecated legacy callback if one was
    supplied."""

    def done(fid: Optional[FuseId], status: str) -> None:
        if fid is not None and status == "ok":
            ledger.group_live(fuse_id)
        else:
            ledger.group_create_failed(fuse_id, status)
        if legacy_cb is not None:
            legacy_cb(fid, status)

    return done


DEPRECATED_CREATE_MSG = (
    "create_group(members, on_complete) is deprecated; call "
    "create_group(members) and subscribe on the returned FuseGroup "
    "handle (on_live / on_notified)"
)

"""FUSE group identifiers.

A FUSE ID is globally unique and deliberately *not* bound to a node or
process (§2): applications pass it around and associate arbitrary
distributed state with it.  We generate IDs from the creating node's name
plus a local counter plus a short hash, which is unique, deterministic
under a fixed simulation seed, and human-readable in traces.
"""

from __future__ import annotations

import hashlib
import itertools

FuseId = str

_counter = itertools.count(1)


def make_fuse_id(root_name: str, salt: int = 0) -> FuseId:
    """Create a fresh globally unique FUSE ID."""
    serial = next(_counter)
    digest = hashlib.sha1(f"{root_name}:{serial}:{salt}".encode()).hexdigest()[:8]
    return f"fuse-{root_name}-{serial}-{digest}"


def reset_fuse_id_counter() -> None:
    """Restart the ID serial counter (test isolation only)."""
    global _counter
    _counter = itertools.count(1)

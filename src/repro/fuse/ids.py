"""FUSE group identifiers.

A FUSE ID is deliberately *not* bound to a node or process (§2):
applications pass it around and associate arbitrary distributed state
with it.  An ID is built from the creating node's name plus a per-creator
serial plus a short hash — unique within a deployment (node names are
unique, and each creator numbers its own groups), deterministic under a
fixed simulation seed, and human-readable in traces.

Creators (``FuseService`` and the §5 alternative topologies) own their
serial counters, so IDs are a pure function of the world's seed — the
property the trial engine's serial-vs-parallel determinism guarantee
rests on.  Calling :func:`make_fuse_id` without a serial falls back to a
process-global counter (convenient for ad-hoc use and tests, but not
deterministic across processes).
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Optional

FuseId = str

_counter = itertools.count(1)


def make_fuse_id(root_name: str, serial: Optional[int] = None, salt: int = 0) -> FuseId:
    """Create a FUSE ID for ``root_name``'s next group.

    Args:
        root_name: name of the creating node; namespaces the serial.
        serial: the creator's own group number.  Defaults to a
            process-global counter when omitted.
        salt: extra disambiguator mixed into the hash.
    """
    if serial is None:
        serial = next(_counter)
    digest = hashlib.sha1(f"{root_name}:{serial}:{salt}".encode()).hexdigest()[:8]
    return f"fuse-{root_name}-{serial}-{digest}"


def reset_fuse_id_counter() -> None:
    """Restart the global fallback serial counter (test isolation only)."""
    global _counter
    _counter = itertools.count(1)

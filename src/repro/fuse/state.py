"""Per-node FUSE group state.

A node can simultaneously be the *root* of a group, a *member*, and a
*delegate* (a non-member on the liveness-checking tree).  All three roles
share the same record; role flags and role-specific fields distinguish
them.  Keeping one record per (node, group) makes teardown atomic: when a
group fails at a node, everything about it disappears together — which is
exactly the paper's "FUSE state is never orphaned" property.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.net.address import NodeId
from repro.fuse.ids import FuseId
from repro.sim.events import TimerHandle

FailureHandler = Callable[[FuseId], None]


class GroupState:
    """Everything one node knows about one live FUSE group."""

    __slots__ = (
        "fuse_id",
        "seq",
        "root_name",
        "root_id",
        "is_root",
        "is_member",
        "created_at",
        "links",
        "handler",
        "member_ids",
        "member_names",
        "pending_installs",
        "install_timer",
        "bootstrap_timer",
        "need_repair_timer",
        "repair_in_progress",
        "repair_backoff_ms",
        "repair_scheduled",
        "pending_create",
    )

    def __init__(
        self,
        fuse_id: FuseId,
        root_name: str,
        root_id: NodeId,
        created_at: float,
        is_root: bool = False,
        is_member: bool = False,
    ) -> None:
        self.fuse_id = fuse_id
        self.seq = 0
        self.root_name = root_name
        self.root_id = root_id
        self.is_root = is_root
        self.is_member = is_member
        self.created_at = created_at

        # Liveness-checking links: neighbor host -> silence timer.
        self.links: Dict[NodeId, TimerHandle] = {}

        # Application callback (members and root).
        self.handler: Optional[FailureHandler] = None

        # Root-only fields.
        self.member_ids: List[NodeId] = []
        self.member_names: List[str] = []
        self.pending_installs: Set[str] = set()
        self.install_timer: Optional[TimerHandle] = None
        self.repair_in_progress: bool = False
        self.repair_backoff_ms: float = 0.0
        self.repair_scheduled: Optional[TimerHandle] = None
        self.pending_create = None  # _PendingCreate during blocking create

        # Member-only fields.
        self.bootstrap_timer: Optional[TimerHandle] = None
        self.need_repair_timer: Optional[TimerHandle] = None

    @property
    def is_delegate_only(self) -> bool:
        return not self.is_root and not self.is_member

    def cancel_all_timers(self) -> None:
        for timer in self.links.values():
            timer.cancel()
        self.links.clear()
        for timer in (
            self.install_timer,
            self.bootstrap_timer,
            self.need_repair_timer,
            self.repair_scheduled,
        ):
            if timer is not None:
                timer.cancel()
        self.install_timer = None
        self.bootstrap_timer = None
        self.need_repair_timer = None
        self.repair_scheduled = None

    def __repr__(self) -> str:
        roles = []
        if self.is_root:
            roles.append("root")
        if self.is_member:
            roles.append("member")
        if not roles:
            roles.append("delegate")
        return (
            f"GroupState({self.fuse_id}, seq={self.seq}, roles={'/'.join(roles)}, "
            f"links={sorted(self.links)})"
        )

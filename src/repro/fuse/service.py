"""The FUSE service: one instance per node.

Protocol summary (paper §6):

* **Create** (§6.2): the root contacts every member directly and in
  parallel (GroupCreateRequest/Reply).  Each member concurrently routes an
  InstallChecking message toward the root through the overlay; every node
  on the path — member, delegates, root — installs per-(group, link)
  timers.  Creation succeeds only when every member replied within the
  creation timeout; otherwise every contacted member is sent a
  HardNotification so no state is orphaned.

* **Steady state** (§6.3): each overlay ping/ack carries a hash of the
  FUSE IDs the sender believes it monitors jointly with that neighbor.  A
  matching hash resets all the (group, neighbor) timers; a mismatch makes
  both sides exchange their id lists and drop — after a grace period —
  the checking trees they disagree on.

* **Notifications** (§6.4): liveness-tree breaks raise SoftNotifications,
  which spread through the tree, tear down delegate state, and trigger
  repair — they never reach the application.  Explicit signals, create or
  repair failures, and repair encountering a forgotten group raise
  HardNotifications, which invoke the application handler exactly once.

* **Repair** (§6.5): members ask the root to repair (NeedRepair) and give
  up after the member repair timeout; the root re-runs the create-style
  exchange (GroupRepairRequest/Reply) with an incremented sequence number
  and per-group exponential backoff capped at 40 s.  Any member that lost
  its group state fails the repair, converting it into a HardNotification
  for everyone.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Set, Union

from repro.fuse.api import (
    DEPRECATED_CREATE_MSG,
    FuseGroup,
    GroupLedger,
    ledger_completion,
)
from repro.fuse.config import FuseConfig
from repro.fuse.ids import FuseId, make_fuse_id
from repro.fuse.messages import (
    FuseLinkList,
    GroupCreateReply,
    GroupCreateRequest,
    GroupRepairReply,
    GroupRepairRequest,
    HardNotification,
    InstallChecking,
    NeedRepair,
    SoftNotification,
)
from repro.fuse.state import FailureHandler, GroupState
from repro.net.address import NodeId
from repro.net.message import Message
from repro.net.node import Host
from repro.overlay.skipnet.messages import RouteEnvelope
from repro.overlay.skipnet.node import OverlayNode

CreateCallback = Callable[[Optional[FuseId], str], None]
NotificationObserver = Callable[[FuseId, str], None]

_EMPTY_HASH = hashlib.sha1(b"").hexdigest()


class _PendingCreate:
    """Root-side bookkeeping for one CreateGroup call."""

    __slots__ = ("awaiting", "on_complete", "failed")

    def __init__(self, awaiting: Set[NodeId], on_complete: CreateCallback) -> None:
        self.awaiting = awaiting
        self.on_complete = on_complete
        self.failed = False


class FuseService:
    """FUSE API and protocol engine attached to one overlay node."""

    __slots__ = (
        "overlay",
        "host",
        "sim",
        "config",
        "ledger",
        "groups",
        "notifications",
        "_last_list_sent",
        "_liveness_timeout",
        "_fuse_id_serial",
        "_stable_store",
        "_links_gen",
        "_shared_cache",
    )

    def __init__(
        self,
        overlay_node: OverlayNode,
        config: Optional[FuseConfig] = None,
        ledger: Optional[GroupLedger] = None,
    ) -> None:
        self.overlay = overlay_node
        self.host: Host = overlay_node.host
        self.sim = self.host.network.sim
        self.config = config or FuseConfig()
        # The notification ledger — shared world-wide when constructed by
        # FuseWorld, private otherwise.  All group lifecycle accounting
        # (creates, per-member notifications, handle dispatch) goes
        # through it; see repro.fuse.api.
        self.ledger = ledger if ledger is not None else GroupLedger(
            self.sim, self.host.network.faults
        )
        self.groups: Dict[FuseId, GroupState] = {}
        self.notifications: Dict[FuseId, str] = {}
        self._last_list_sent: Dict[NodeId, float] = {}
        # _shared_ids scans every group for link membership — the hottest
        # FUSE call in steady state (twice per ping, plus evidence on
        # both ends).  Healthy pings only *reschedule* link timers, so
        # the scan result is stable between membership changes: every
        # site that adds/removes a group or changes a links key-set
        # bumps _links_gen, and the per-neighbor cache keys on it.
        self._links_gen = 0
        self._shared_cache: Dict[NodeId, list] = {}
        self._liveness_timeout = self.config.effective_liveness_timeout(
            overlay_node.config.liveness_silence_ms
        )
        # Per-creator serial: fuse ids are a pure function of the world's
        # seed (no process-global state), which the trial engine's
        # serial-vs-parallel determinism guarantee depends on.
        self._fuse_id_serial = itertools.count(1)

        # §3.6 stable storage: survives crashes (it models a disk file).
        # Maps fuse_id -> minimal recovery record.
        self._stable_store: Dict[FuseId, dict] = {}

        host = self.host
        host.on_crash(self._on_host_crash)
        host.on_recover(self._on_host_recover)
        host.register_handler(GroupCreateRequest, self._on_create_request)
        host.register_handler(InstallChecking, self._on_install_delivered)
        host.register_handler(SoftNotification, self._on_soft_notification)
        host.register_handler(HardNotification, self._on_hard_notification)
        host.register_handler(NeedRepair, self._on_need_repair)
        host.register_handler(GroupRepairRequest, self._on_repair_request)
        host.register_handler(FuseLinkList, self._on_link_list)

        overlay_node.register_payload_provider(self._payload_for)
        overlay_node.register_ping_listener(self._on_ping_evidence)
        overlay_node.register_failure_listener(self._on_neighbor_failure)
        overlay_node.register_upcall(self._on_route_upcall)

    def _on_host_crash(self) -> None:
        """Fail-stop crash: all volatile FUSE state vanishes (§3.6).  The
        surviving peers discover the loss via liveness timers and list
        reconciliation; repairs hitting this node after recovery find no
        state and harden into notifications."""
        self.groups.clear()
        self._last_list_sent.clear()
        self._links_gen += 1
        self._shared_cache.clear()

    def _on_host_recover(self) -> None:
        """§3.6 alternative: with stable storage enabled, a recovering
        node assumes its member/root groups are still alive and
        re-installs checking state.  The active comparison of live FUSE
        IDs (and repair hitting any group that actually failed meanwhile)
        reconciles it with the rest of the world."""
        if not self.config.stable_storage:
            return
        for fuse_id, record in sorted(self._stable_store.items()):
            if fuse_id in self.groups or fuse_id in self.notifications:
                continue
            state = GroupState(
                fuse_id,
                root_name=record["root_name"],
                root_id=record["root_id"],
                created_at=self.sim.now,
                is_root=record["is_root"],
                is_member=record["is_member"],
            )
            state.seq = record["seq"]
            state.member_ids = list(record["member_ids"])
            state.member_names = list(record["member_names"])
            self.groups[fuse_id] = state
            self._links_gen += 1
            if state.is_root:
                # Rebuild the whole checking tree via a repair round.
                state.pending_installs = set(state.member_names)
                self._attempt_repair(state, "stable-storage-recovery")
            else:
                self._arm_bootstrap_timer(state)
                self.sim.schedule_soon(lambda s=state: self._route_install_checking(s))

    def _persist(self, state: GroupState) -> None:
        """Write the group's recovery record to "disk" (no-op unless the
        §3.6 stable-storage option is on)."""
        if not self.config.stable_storage:
            return
        if not (state.is_member or state.is_root):
            return  # delegates never persist; they are rebuilt by repair
        self._stable_store[state.fuse_id] = {
            "root_name": state.root_name,
            "root_id": state.root_id,
            "is_root": state.is_root,
            "is_member": state.is_member,
            "seq": state.seq,
            "member_ids": list(state.member_ids),
            "member_names": list(state.member_names),
        }

    def _unpersist(self, fuse_id: FuseId) -> None:
        self._stable_store.pop(fuse_id, None)

    # ------------------------------------------------------------------
    # Public API (Fig 1 of the paper)
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.host.name

    def create_group(
        self,
        members: Sequence[NodeId],
        on_complete: Optional[CreateCallback] = None,
    ) -> Union[FuseGroup, FuseId]:
        """CreateGroup: build a group of this node (the root) plus ``members``.

        Returns a :class:`~repro.fuse.api.FuseGroup` handle carrying the
        assigned FUSE ID and lifecycle subscriptions: ``on_live`` fires
        once every member has been contacted (blocking-create semantics,
        §3.2); on failure the handle moves to ``failed_create``,
        ``on_notified`` fires, and all contacted members are notified so
        no state is orphaned (§6.2).  Every attempt and outcome is also
        recorded on :attr:`ledger`.

        Passing ``on_complete`` is the **deprecated** legacy form: the
        callback fires as ``on_complete(fuse_id, "ok")`` /
        ``on_complete(None, reason)`` exactly as before (still routed
        through the ledger) and the bare FUSE ID is returned.
        """
        if on_complete is not None:
            warnings.warn(DEPRECATED_CREATE_MSG, DeprecationWarning, stacklevel=2)
            return self._start_create(members, on_complete).fuse_id
        return self._start_create(members, None)

    def _start_create(
        self, members: Sequence[NodeId], legacy_cb: Optional[CreateCallback]
    ) -> FuseGroup:
        member_ids = [m for m in dict.fromkeys(members) if m != self.host.node_id]
        fuse_id = make_fuse_id(self.name, serial=next(self._fuse_id_serial))
        state = GroupState(
            fuse_id,
            root_name=self.name,
            root_id=self.host.node_id,
            created_at=self.sim.now,
            is_root=True,
            is_member=True,
        )
        state.member_ids = member_ids
        state.member_names = [self._name_of(m) for m in member_ids]
        state.pending_installs = set(state.member_names)
        self.groups[fuse_id] = state
        self._links_gen += 1
        self.sim.metrics.counter("fuse.create_attempts").increment()

        handle = FuseGroup(
            self, self.ledger, fuse_id, self.host.node_id, [self.host.node_id] + member_ids
        )
        self.ledger.record_create(fuse_id, self.host.node_id, handle.members)
        self.ledger.attach_handle(handle)
        done = ledger_completion(self.ledger, fuse_id, legacy_cb)

        if not member_ids:
            self.sim.schedule_soon(lambda: self._complete_create(state, done))
            return handle

        pending = _PendingCreate(set(member_ids), done)
        state.pending_create = pending
        request_names = [self.name] + state.member_names
        for member in member_ids:
            self._create_rpc(state, pending, member, request_names)

        if not self.config.blocking_create:
            # Ablation: hand the ID back immediately; liveness checking
            # must catch unreachable members after the fact.
            self.sim.schedule_soon(lambda: done(fuse_id, "ok"))
            pending.on_complete = lambda *_: None
        return handle


    def register_failure_handler(self, fuse_id: FuseId, handler: FailureHandler) -> None:
        """RegisterFailureHandler: invoke ``handler`` on group failure.

        If the group is unknown here — typically because it has already
        been signalled — the handler is invoked immediately (§3.2).
        """
        state = self.groups.get(fuse_id)
        if state is None:
            self.sim.schedule_soon(lambda: handler(fuse_id))
            return
        state.handler = handler

    def signal_failure(self, fuse_id: FuseId) -> None:
        """SignalFailure: the application declares the group failed."""
        state = self.groups.get(fuse_id)
        if state is None:
            return  # already failed; one notification per group, ever
        self.sim.metrics.counter("fuse.explicit_signals").increment()
        if state.is_root:
            self._root_hard_fail(state, "signaled", exclude=None)
        else:
            self._send_control(
                state.root_id,
                state.root_name,
                HardNotification(fuse_id, "signaled"),
            )
            self._soft_notify_links(state, exclude=None)
            self._fail_group(state, "signaled")

    def observe_notifications(self, observer: NotificationObserver) -> None:
        """**Deprecated** test/experiment hook fired on every hard failure
        at this node.  Routed through the ledger: read
        ``FuseWorld.ledger`` or subscribe ``FuseGroup.on_member_notified``
        instead."""
        warnings.warn(
            "observe_notifications is deprecated; read the world's "
            "GroupLedger or subscribe FuseGroup.on_member_notified",
            DeprecationWarning,
            stacklevel=2,
        )
        node_id = self.host.node_id
        self.ledger.add_note_listener(
            lambda record, _first: observer(record.fuse_id, record.raw)
            if record.node == node_id
            else None
        )

    def live_group_ids(self) -> List[FuseId]:
        return sorted(self.groups)

    # ------------------------------------------------------------------
    # Group creation
    # ------------------------------------------------------------------
    def _create_rpc(
        self,
        state: GroupState,
        pending: _PendingCreate,
        member: NodeId,
        request_names: List[str],
    ) -> None:
        request = GroupCreateRequest(state.fuse_id, self.name, request_names)

        def on_reply(reply) -> None:
            if pending.failed or state.fuse_id not in self.groups:
                return
            if not getattr(reply, "ok", False):
                self._create_failed(state, pending, f"member {member} refused")
                return
            pending.awaiting.discard(member)
            if not pending.awaiting:
                self._complete_create(state, pending.on_complete)

        def on_failure(why: str) -> None:
            if pending.failed or state.fuse_id not in self.groups:
                return
            self._create_failed(state, pending, f"member {member} unreachable ({why})")

        self.host.rpc(member, request, self.config.create_timeout_ms, on_reply, on_failure)

    def _complete_create(self, state: GroupState, on_complete: CreateCallback) -> None:
        if state.fuse_id not in self.groups:
            return
        state.pending_create = None
        self.sim.metrics.counter("fuse.groups_created").increment()
        self._persist(state)
        self._arm_install_timer(state)
        on_complete(state.fuse_id, "ok")

    def _create_failed(self, state: GroupState, pending: _PendingCreate, reason: str) -> None:
        pending.failed = True
        self.sim.metrics.counter("fuse.create_failures").increment()
        # Notify everyone who may have installed state; no orphans (§6.2).
        for member in state.member_ids:
            self.host.send(member, HardNotification(state.fuse_id, f"create-failed: {reason}"))
        self._soft_notify_links(state, exclude=None)
        self._remove_state(state)
        pending.on_complete(None, reason)

    def _on_create_request(self, message: Message) -> None:
        request = message
        root_id = request.sender
        existing = self.groups.get(request.fuse_id)
        if existing is not None:
            # Another member's InstallChecking can race ahead of our own
            # create request, leaving delegate-only state here.  Upgrade
            # it to member state — otherwise a later repair would find
            # "no membership" and wrongly harden (§6.5).
            if not existing.is_member:
                existing.is_member = True
                existing.root_name = request.root_name
                if root_id is not None:
                    existing.root_id = root_id
                self._persist(existing)
                self._arm_bootstrap_timer(existing)
                self._route_install_checking(existing)
            self.host.respond(request, GroupCreateReply(request.fuse_id, ok=True))
            return
        state = GroupState(
            request.fuse_id,
            root_name=request.root_name,
            root_id=root_id,
            created_at=self.sim.now,
            is_member=True,
        )
        self.groups[request.fuse_id] = state
        self._links_gen += 1
        self._persist(state)
        self._arm_bootstrap_timer(state)
        self.host.respond(request, GroupCreateReply(request.fuse_id, ok=True))
        self._route_install_checking(state)

    def _route_install_checking(self, state: GroupState) -> None:
        if not self.overlay.joined:
            return  # bootstrap timer will catch the dead overlay
        self.overlay.route(
            state.root_name,
            InstallChecking(state.fuse_id, state.seq, self.name, state.root_name),
        )

    def _arm_bootstrap_timer(self, state: GroupState) -> None:
        if state.bootstrap_timer is not None and state.bootstrap_timer.reschedule_after(
            self._liveness_timeout
        ):
            return
        state.bootstrap_timer = self.host.call_after(
            self._liveness_timeout,
            lambda: self._on_bootstrap_timeout(state.fuse_id),
            label=f"{self.name}:fuse-bootstrap",
        )

    def _on_bootstrap_timeout(self, fuse_id: FuseId) -> None:
        """No liveness links ever materialized for a member's group."""
        state = self.groups.get(fuse_id)
        if state is None or state.links:
            return
        self._local_tree_failure(state, "no-checking-installed")

    def _arm_install_timer(self, state: GroupState) -> None:
        if state.install_timer is not None:
            state.install_timer.cancel()
        if not state.pending_installs:
            state.install_timer = None
            return
        state.install_timer = self.host.call_after(
            self.config.install_timeout_ms,
            lambda: self._on_install_timeout(state.fuse_id),
            label=f"{self.name}:fuse-install",
        )

    def _on_install_timeout(self, fuse_id: FuseId) -> None:
        state = self.groups.get(fuse_id)
        if state is None or not state.is_root or not state.pending_installs:
            return
        self._attempt_repair(state, "install-timeout")

    # ------------------------------------------------------------------
    # InstallChecking handling (upcalls on every hop + root terminal)
    # ------------------------------------------------------------------
    def _on_route_upcall(
        self,
        envelope: RouteEnvelope,
        prev_hop: Optional[NodeId],
        next_hop: Optional[NodeId],
        delivered: bool,
    ) -> None:
        payload = envelope.payload
        if not isinstance(payload, InstallChecking):
            return
        state = self.groups.get(payload.fuse_id)
        if state is not None and payload.seq < state.seq:
            return  # stale install from before a repair
        if state is None:
            if delivered:
                return  # terminal node with no state: nothing to install
            root_id = self.overlay.overlay.resolve(payload.root_name)
            if root_id is None:
                return
            state = GroupState(
                payload.fuse_id,
                root_name=payload.root_name,
                root_id=root_id,
                created_at=self.sim.now,
            )
            self.groups[payload.fuse_id] = state
            self._links_gen += 1
        state.seq = payload.seq
        for hop in (prev_hop, next_hop):
            if hop is not None and hop != self.host.node_id:
                self._ensure_link(state, hop)
        if state.bootstrap_timer is not None and state.links:
            state.bootstrap_timer.cancel()
            state.bootstrap_timer = None

    def _on_install_delivered(self, message: Message) -> None:
        """Terminal delivery of an InstallChecking envelope."""
        install = message
        state = self.groups.get(install.fuse_id)
        if state is None or not state.is_root or install.root_name != self.name:
            # Delivered somewhere other than the intended root (the root
            # departed, or overlay routing is in flux).  The originating
            # member's timers will drive recovery; nothing to do here.
            return
        if install.seq < state.seq:
            return
        state.pending_installs.discard(install.member_name)
        if not state.pending_installs:
            if state.install_timer is not None:
                state.install_timer.cancel()
                state.install_timer = None
            state.repair_backoff_ms = 0.0  # tree fully healthy again

    # ------------------------------------------------------------------
    # Liveness links and piggybacked hashes
    # ------------------------------------------------------------------
    def _ensure_link(self, state: GroupState, neighbor: NodeId) -> None:
        # Resetting a live timer in place reuses its callback closure and
        # handle; this runs once per shared group per ping/ack, so it is
        # the hottest timer path in steady state.  Safe because group
        # state never survives a crash, so the closure's incarnation
        # guard always matches the current incarnation.
        existing = state.links.get(neighbor)
        if existing is not None and existing.reschedule_after(self._liveness_timeout):
            return
        state.links[neighbor] = self._make_link_timer(state.fuse_id, neighbor)
        self._links_gen += 1

    def _make_link_timer(self, fuse_id: FuseId, neighbor: NodeId):
        return self.host.call_after(
            self._liveness_timeout,
            lambda: self._on_link_timeout(fuse_id, neighbor),
            label=f"{self.name}:fuse-link",
        )

    def _shared_ids(self, neighbor: NodeId) -> List[FuseId]:
        if not self.groups:
            return []  # fast path: dominant during bootstrap at scale
        entry = self._shared_cache.get(neighbor)
        if entry is not None and entry[0] == self._links_gen:
            return entry[1]
        ids = [
            fuse_id for fuse_id, state in self.groups.items() if neighbor in state.links
        ]
        ids.sort()
        self._shared_cache[neighbor] = [self._links_gen, ids, None, None]
        return ids

    @staticmethod
    def _hash_ids(ids: Sequence[FuseId]) -> str:
        return hashlib.sha1("|".join(ids).encode()).hexdigest()

    def _shared_hash(self, neighbor: NodeId, ids: List[FuseId]) -> str:
        """sha1 of the shared-id list, memoized alongside the cached list
        (the ids of a healthy link hash identically every ping)."""
        entry = self._shared_cache.get(neighbor)
        if entry is not None and entry[0] == self._links_gen and entry[1] is ids:
            digest = entry[2]
            if digest is None:
                digest = entry[2] = self._hash_ids(ids)
            return digest
        return self._hash_ids(ids)

    def _payload_for(self, neighbor: NodeId) -> Optional[dict]:
        # The piggyback dict for a healthy link is the same every ping
        # (it only carries the shared-id hash), so it is memoized next to
        # the id list and invalidated by the same generation bump.
        if not self.groups:
            return None
        entry = self._shared_cache.get(neighbor)
        if entry is None or entry[0] != self._links_gen:
            self._shared_ids(neighbor)
            entry = self._shared_cache[neighbor]
        payload = entry[3]
        if payload is None:
            ids = entry[1]
            if not ids:
                return None
            digest = entry[2]
            if digest is None:
                digest = entry[2] = self._hash_ids(ids)
            payload = entry[3] = {"fuse": {"hash": digest}}
        return payload

    def _on_ping_evidence(self, neighbor: NodeId, payload: dict, _is_ack: bool) -> None:
        fuse_part = payload.get("fuse")
        theirs = _EMPTY_HASH if fuse_part is None else fuse_part.get("hash", _EMPTY_HASH)
        if fuse_part is None and not self.groups:
            # Empty on both sides — trivially in agreement.  The dominant
            # steady-state case for nodes outside every group.
            return
        mine_ids = self._shared_ids(neighbor)
        mine = self._shared_hash(neighbor, mine_ids) if mine_ids else _EMPTY_HASH
        if mine == theirs:
            # Agreement: this link is alive for every shared group.
            for fuse_id in mine_ids:
                state = self.groups[fuse_id]
                self._ensure_link(state, neighbor)
            return
        # Disagreement: reconcile by exchanging id lists (§6.3), at most
        # once per link per half ping period to bound chatter.
        last = self._last_list_sent.get(neighbor, -1e18)
        if self.sim.now - last < self.overlay.config.ping_period_ms / 2.0:
            return
        self._last_list_sent[neighbor] = self.sim.now
        listing = {
            fuse_id: self.groups[fuse_id].seq for fuse_id in mine_ids
        }
        self.host.send(neighbor, FuseLinkList(listing))

    def _on_link_list(self, message: Message) -> None:
        peer = message.sender
        if peer is None:
            return
        peer_groups: Dict[FuseId, int] = message.groups
        mine_ids = self._shared_ids(peer)
        for fuse_id in mine_ids:
            state = self.groups[fuse_id]
            if fuse_id in peer_groups:
                state.seq = max(state.seq, peer_groups[fuse_id])
                self._ensure_link(state, peer)
            else:
                # The neighbor disclaims this group on our shared link.
                if self.sim.now - state.created_at <= self.config.grace_period_ms:
                    continue  # install/ping race (§6.3): give it time
                timer = state.links.pop(peer, None)
                if timer is not None:
                    timer.cancel()
                    self._links_gen += 1
                self._local_tree_failure(state, "reconcile-disagreement")
        # Groups the peer has but we do not: the peer's own reconciliation
        # (triggered by our hash) removes them on its side; replying with
        # our list here would only double the chatter.

    def _on_link_timeout(self, fuse_id: FuseId, neighbor: NodeId) -> None:
        state = self.groups.get(fuse_id)
        if state is None:
            return
        timer = state.links.pop(neighbor, None)
        if timer is not None:
            timer.cancel()
            self._links_gen += 1
        self.sim.metrics.counter("fuse.link_timeouts").increment()
        self._local_tree_failure(state, "link-timeout")

    def _on_neighbor_failure(self, neighbor: NodeId, reason: str) -> None:
        """Overlay declared a neighbor unresponsive: every group sharing a
        checking link with it just lost that link."""
        affected = [
            state for state in list(self.groups.values()) if neighbor in state.links
        ]
        for state in affected:
            timer = state.links.pop(neighbor, None)
            if timer is not None:
                timer.cancel()
                self._links_gen += 1
            self._local_tree_failure(state, f"overlay-{reason}")

    # ------------------------------------------------------------------
    # Soft notifications and local tree teardown
    # ------------------------------------------------------------------
    def _soft_notify_links(self, state: GroupState, exclude: Optional[NodeId]) -> None:
        for neighbor in sorted(state.links):
            if neighbor == exclude:
                continue
            self.sim.metrics.counter("fuse.soft_notifications").increment()
            self.host.send(neighbor, SoftNotification(state.fuse_id, state.seq))

    def _clear_links(self, state: GroupState) -> None:
        for timer in state.links.values():
            timer.cancel()
        state.links.clear()
        self._links_gen += 1

    def _local_tree_failure(self, state: GroupState, reason: str, exclude: Optional[NodeId] = None) -> None:
        """This node's view of the group's checking tree is broken (§6.3):
        spread SoftNotifications, drop delegate state, and — if we are a
        member or the root — start repair."""
        if state.fuse_id not in self.groups:
            return
        if not self.config.repair_enabled and (state.is_member or state.is_root):
            # Ablation: no repair; convert any tree break into group failure.
            if state.is_root:
                self._root_hard_fail(state, f"no-repair:{reason}", exclude=None)
            else:
                self._send_control(
                    state.root_id,
                    state.root_name,
                    HardNotification(state.fuse_id, f"no-repair:{reason}"),
                )
                self._soft_notify_links(state, exclude)
                self._fail_group(state, f"no-repair:{reason}")
            return
        self._soft_notify_links(state, exclude)
        self._clear_links(state)
        if state.is_root:
            self._attempt_repair(state, reason)
        elif state.is_member:
            self._member_request_repair(state)
        else:
            self._remove_state(state)

    def _on_soft_notification(self, message: Message) -> None:
        soft = message
        state = self.groups.get(soft.fuse_id)
        if state is None:
            return
        if soft.seq < state.seq:
            return  # stale notification from a pre-repair tree (§6.4)
        state.seq = max(state.seq, soft.seq)
        self._local_tree_failure(state, "soft-notification", exclude=soft.sender)

    # ------------------------------------------------------------------
    # Repair (§6.5)
    # ------------------------------------------------------------------
    def _member_request_repair(self, state: GroupState) -> None:
        if state.need_repair_timer is not None and state.need_repair_timer.active:
            return  # repair request already outstanding
        self._send_control(
            state.root_id, state.root_name, NeedRepair(state.fuse_id, state.seq)
        )
        state.need_repair_timer = self.host.call_after(
            self.config.member_repair_timeout_ms,
            lambda: self._on_member_repair_timeout(state.fuse_id),
            label=f"{self.name}:fuse-needrepair",
        )

    def _on_member_repair_timeout(self, fuse_id: FuseId) -> None:
        state = self.groups.get(fuse_id)
        if state is None:
            return
        # Never heard back from the root: give up and notify (§6.5).
        self._send_control(
            state.root_id,
            state.root_name,
            HardNotification(fuse_id, "member-repair-timeout"),
        )
        self._soft_notify_links(state, exclude=None)
        self._fail_group(state, "member-repair-timeout")

    def _on_need_repair(self, message: Message) -> None:
        need = message
        state = self.groups.get(need.fuse_id)
        if state is None or not state.is_root:
            # The group no longer exists here: whoever asked must hear a
            # hard failure, or their state would dangle until timeout.
            if need.sender is not None:
                self.host.send(need.sender, HardNotification(need.fuse_id, "group-gone"))
            return
        if state.pending_create is not None:
            return  # creation still in flight; its own machinery decides
        self._attempt_repair(state, "need-repair")

    def _attempt_repair(self, state: GroupState, reason: str) -> None:
        if not state.is_root or state.fuse_id not in self.groups:
            return
        if not self.config.repair_enabled:
            self._root_hard_fail(state, f"no-repair:{reason}", exclude=None)
            return
        if state.repair_in_progress:
            return
        if state.repair_scheduled is not None and state.repair_scheduled.active:
            return
        delay = state.repair_backoff_ms
        state.repair_backoff_ms = min(
            self.config.repair_backoff_cap_ms,
            max(self.config.repair_backoff_initial_ms, state.repair_backoff_ms * 2.0),
        )
        state.repair_scheduled = self.host.call_after(
            delay,
            lambda: self._do_repair(state.fuse_id),
            label=f"{self.name}:fuse-repair",
        )

    def _do_repair(self, fuse_id: FuseId) -> None:
        state = self.groups.get(fuse_id)
        if state is None or not state.is_root:
            return
        state.repair_scheduled = None
        state.repair_in_progress = True
        state.seq += 1
        state.pending_installs = set(state.member_names)
        self._persist(state)
        self.sim.metrics.counter("fuse.repairs_started").increment()
        if not state.member_ids:
            state.repair_in_progress = False
            return
        outcome = {"failed": False, "awaiting": set(state.member_ids)}
        for member in state.member_ids:
            self._repair_rpc(state, member, outcome)
        # Root's own stake in the new tree: wait for installs again.
        self._arm_install_timer(state)

    def _repair_rpc(self, state: GroupState, member: NodeId, outcome: dict) -> None:
        request = GroupRepairRequest(state.fuse_id, state.seq, self.name)

        def on_reply(reply) -> None:
            if outcome["failed"] or state.fuse_id not in self.groups:
                return
            if not getattr(reply, "known", False):
                outcome["failed"] = True
                self._root_hard_fail(state, f"repair-unknown-at-{member}", exclude=None)
                return
            outcome["awaiting"].discard(member)
            if not outcome["awaiting"]:
                state.repair_in_progress = False
                self.sim.metrics.counter("fuse.repairs_succeeded").increment()

        def on_failure(why: str) -> None:
            if outcome["failed"] or state.fuse_id not in self.groups:
                return
            outcome["failed"] = True
            self._root_hard_fail(state, f"repair-{why}-at-{member}", exclude=None)

        self.host.rpc(member, request, self.config.root_repair_timeout_ms, on_reply, on_failure)

    def _on_repair_request(self, message: Message) -> None:
        request = message
        state = self.groups.get(request.fuse_id)
        if state is None or not state.is_member:
            self.host.respond(request, GroupRepairReply(request.fuse_id, known=False))
            return
        state.seq = max(state.seq, request.seq)
        if state.need_repair_timer is not None:
            state.need_repair_timer.cancel()
            state.need_repair_timer = None
        # Fresh tree: drop the old links (their delegates reconcile away)
        # and install checking along the current overlay route.
        self._clear_links(state)
        self._persist(state)
        self.host.respond(request, GroupRepairReply(request.fuse_id, known=True))
        self._arm_bootstrap_timer(state)
        self._route_install_checking(state)

    # ------------------------------------------------------------------
    # Hard notifications and group teardown
    # ------------------------------------------------------------------
    def _on_hard_notification(self, message: Message) -> None:
        hard = message
        state = self.groups.get(hard.fuse_id)
        if state is None:
            return  # already failed here; exactly-once is preserved
        if state.is_root:
            self._root_hard_fail(state, hard.reason, exclude=hard.sender)
        else:
            self._soft_notify_links(state, exclude=None)
            self._fail_group(state, hard.reason)

    def _root_hard_fail(self, state: GroupState, reason: str, exclude: Optional[NodeId]) -> None:
        """Root-side group failure: fan the HardNotification out to every
        other member, clean the checking tree, fail locally (§6.4)."""
        for member in state.member_ids:
            if member == exclude:
                continue
            self._send_control(
                member, self._name_of(member), HardNotification(state.fuse_id, reason)
            )
        self._soft_notify_links(state, exclude=None)
        self._fail_group(state, reason)

    def _fail_group(self, state: GroupState, reason: str) -> None:
        """Invoke the handler exactly once and drop every trace of the
        group.  Absence of state is what makes later notifications no-ops
        and RegisterFailureHandler fire immediately."""
        if self.groups.pop(state.fuse_id, None) is None:
            return
        self._links_gen += 1
        state.cancel_all_timers()
        self._unpersist(state.fuse_id)
        self.notifications[state.fuse_id] = reason
        if state.is_member or state.is_root:
            self.sim.metrics.counter("fuse.hard_notifications").increment()
        handler = state.handler
        if handler is not None:
            handler(state.fuse_id)
        role = "root" if state.is_root else ("member" if state.is_member else "delegate")
        self.ledger.notified(state.fuse_id, self.host.node_id, role, reason)

    def _remove_state(self, state: GroupState) -> None:
        """Silent teardown for delegate-only or never-completed state."""
        if self.groups.pop(state.fuse_id, None) is None:
            return
        self._links_gen += 1
        state.cancel_all_timers()
        self._unpersist(state.fuse_id)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _send_control(self, dst_id: NodeId, dst_name: str, msg: Message, on_fail=None) -> None:
        """Root<->member control traffic: direct (paper default) or routed
        through the overlay (paper §5 ablation; see FuseConfig.direct_root_member)."""
        if dst_id == self.host.node_id:
            self.sim.schedule_soon(lambda: self.host.deliver(self._stamp_self(msg)))
            return
        if self.config.direct_root_member:
            self.host.send(dst_id, msg, on_fail=on_fail)
        else:
            self.overlay.route(dst_name, msg)

    def _stamp_self(self, msg: Message):
        stamped = copy.copy(msg)
        stamped.sender = self.host.node_id
        return stamped

    def _name_of(self, node_id: NodeId) -> str:
        name = self.overlay.overlay.name_of(node_id)
        if name is not None:
            return name
        return self.host.network.host(node_id).name

    def __repr__(self) -> str:
        return f"FuseService({self.name}, groups={len(self.groups)})"

"""FUSE configuration.

Defaults mirror the paper's implementation constants where it states
them: a 5 second grace period for the install/ping race (§6.3), per-group
exponential repair backoff capped at 40 seconds (§6.5), a 1 minute member
repair timeout and 2 minute root repair timeout (§7.4).

The ablation switches at the bottom correspond to the design choices the
paper argues for; flipping them reproduces the alternatives it rejects
(paper §5/§5.1; exercised by benchmarks/bench_ablation_*.py).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class FuseConfig:
    create_timeout_ms: float = 10_000.0
    """Group-creation attempt timeout: every member must reply within this
    window or creation fails (§6.2)."""

    install_timeout_ms: float = 30_000.0
    """Root's timer for receiving InstallChecking from every member; on
    expiry the root attempts a repair (§6.2)."""

    liveness_timeout_ms: Optional[float] = None
    """Per-(group, link) silence tolerance before the link is declared
    failed.  None derives ping period + ping timeout from the overlay
    (the paper's 20-80 s detection window)."""

    member_repair_timeout_ms: float = 60_000.0
    """How long a member waits to hear from the root after requesting a
    repair before it signals failure itself (§7.4: 1 minute)."""

    root_repair_timeout_ms: float = 120_000.0
    """How long the root waits for all repair replies before declaring the
    repair failed (§7.4: 2 minutes)."""

    repair_backoff_initial_ms: float = 2_500.0
    repair_backoff_cap_ms: float = 40_000.0
    """Per-group exponential backoff between repair attempts, capped at 40
    seconds (§6.5)."""

    grace_period_ms: float = 5_000.0
    """A node only removes checking state its neighbor disclaims if that
    state is older than this, resolving the InstallChecking/ping race
    (§6.3: 5 seconds)."""

    notification_size_bytes: int = 128

    # ------------------------------------------------------------------
    # Ablation switches (the paper's §5 design choices)
    # ------------------------------------------------------------------
    repair_enabled: bool = True
    """Paper choice: attempt repair on delegate/path failures instead of
    immediately signalling group failure (§6 intro).  False = signal a
    hard failure on any liveness-tree break."""

    blocking_create: bool = True
    """Paper choice: CreateGroup blocks until every member acknowledged
    (§3.2).  False = return the ID immediately and let liveness checking
    catch unreachable members."""

    direct_root_member: bool = True
    """Paper choice: create/repair/notification messages travel directly
    between root and members rather than through overlay routes (§6
    intro).  False routes them through the overlay."""

    stable_storage: bool = False
    """§3.6 alternative implementation: persist group membership to
    stable storage so a node recovering from a brief crash can assume its
    groups are still alive and re-install checking state, instead of
    forgetting them (which forces those groups to fail).  Nodes with and
    without stable storage co-exist without any semantic change — the
    active comparison of live FUSE IDs reconciles either way."""

    def __post_init__(self) -> None:
        if self.repair_backoff_initial_ms <= 0:
            raise ValueError("repair backoff must be positive")
        if self.repair_backoff_cap_ms < self.repair_backoff_initial_ms:
            raise ValueError("repair backoff cap below initial value")
        if self.grace_period_ms < 0:
            raise ValueError("grace period must be non-negative")

    def effective_liveness_timeout(self, overlay_silence_ms: float) -> float:
        if self.liveness_timeout_ms is not None:
            return self.liveness_timeout_ms
        return overlay_silence_ms
